#!/usr/bin/env sh
# LoC budget guard: the solver-clone duplication that PR 4 deleted must
# not silently grow back.
#
# PR 3 carried four hand-cloned path-tracking solvers in
# crates/core/src/tracked.rs (745 lines). PR 4 collapsed them into the
# generic path-algebra engine (crates/core/src/engine.rs), so tracked.rs
# must stay deleted — or, if it is ever legitimately reintroduced, stay
# under a budget far below the old clone stack.
#
# Run from anywhere inside the repo: scripts/loc_budget.sh

set -eu

cd "$(dirname "$0")/.."

status=0

check_budget() {
    file="$1"
    budget="$2"
    reason="$3"
    if [ -f "$file" ]; then
        lines=$(wc -l < "$file")
        if [ "$lines" -gt "$budget" ]; then
            echo "LOC BUDGET VIOLATION: $file has $lines lines (budget: $budget)"
            echo "  $reason"
            status=1
        else
            echo "ok: $file exists with $lines lines (budget: $budget)"
        fi
    else
        echo "ok: $file stays deleted"
    fi
}

# The tracked solver clones: deleted in PR 4. Anything reappearing here
# beyond a trivial shim means the per-algebra solver duplication is
# coming back — extend the generic engine instead.
check_budget crates/core/src/tracked.rs 100 \
    "tracked solvers are the TrackedTropical instantiation of crates/core/src/engine.rs; do not re-clone them"

exit "$status"
