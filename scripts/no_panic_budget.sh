#!/usr/bin/env sh
# No-panic budget guard for the solver core.
#
# PR 7 made every error path reachable from `Problem::solve` return a
# typed `ApspError` instead of panicking: executor tasks fail with
# `SparkError` and retry, exhausted budgets surface as `TaskFailed`
# context, checkpoint corruption is `ApspError::Checkpoint`. This guard
# pins the number of panic-capable call sites in `crates/core/src`
# *non-test, non-doc-comment* code at zero so none quietly return.
#
# Counted: `.unwrap()`, `.expect(`, `panic!(`, `unreachable!(`,
# `todo!(`, `unimplemented!(`.
# Excluded: doc comments (`///`, `//!` — examples may unwrap) and
# everything at or below a `#[cfg(test)]` line (test modules sit at the
# bottom of each file in this repo).
#
# Run from anywhere inside the repo: scripts/no_panic_budget.sh

set -eu

cd "$(dirname "$0")/.."

BUDGET=0

total=0
for f in crates/core/src/*.rs; do
    count=$(awk '/^#\[cfg\(test\)\]/{exit} {print}' "$f" \
        | grep -vE '^[[:space:]]*(///|//!|//)' \
        | grep -cE '\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\(' \
        || true)
    if [ "$count" -gt 0 ]; then
        echo "$f: $count panic-capable site(s)"
    fi
    total=$((total + count))
done

echo "panic-capable sites in crates/core/src (non-test): $total (budget: $BUDGET)"
if [ "$total" -gt "$BUDGET" ]; then
    echo "NO-PANIC BUDGET VIOLATION: convert the sites above to typed ApspError/SparkError paths"
    exit 1
fi
echo "ok: solver core stays panic-free"
