//! Offline stand-in for `parking_lot`: the `Mutex` API the workspace uses
//! (poison-free `lock()`), backed by `std::sync::Mutex`.

#![warn(missing_docs)]

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` never returns a poison error (parking_lot
/// semantics): a poisoned std mutex is simply recovered.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
