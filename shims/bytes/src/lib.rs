//! Offline stand-in for the `bytes` crate: `Bytes`/`BytesMut` backed by
//! `Vec<u8>`, plus the little-endian `Buf`/`BufMut` accessors the
//! workspace's wire format uses. No zero-copy slicing — blocks here are
//! serialized whole and consumed whole.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, advancing the
/// slice as values are consumed.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(
            self.len() >= n,
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Write sink for primitive values. Implemented for [`BytesMut`].
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&(v as u64).to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(24);
        buf.put_u64_le(7);
        buf.put_f64_le(2.5);
        buf.put_f64_le(f64::INFINITY);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 24);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u64_le(), 7);
        assert_eq!(cursor.get_f64_le(), 2.5);
        assert_eq!(cursor.get_f64_le(), f64::INFINITY);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2, 3];
        let _ = cursor.get_u64_le();
    }
}
