//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON (`to_string` / `to_string_pretty`) and parses JSON text
//! back into a [`Value`] tree ([`from_str`]). Serialization is infallible
//! here, but the `Result` signatures (and the `From<Error> for io::Error`
//! conversion) match the real crate so call sites are source-compatible.

#![warn(missing_docs)]

use serde::{Serialize, Value};

/// JSON error: never produced when serializing (the signatures keep `?`
/// propagation compiling unchanged), carries a position and message when
/// parsing fails.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable as floats, like
                // serde_json ("1.0", not "1").
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), ind, d| {
                write_json_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(brackets.1);
}

/// Parses JSON text into a [`Value`] tree. Strict grammar (RFC 8259):
/// no comments, no trailing commas, no `NaN`/`Infinity` literals;
/// trailing whitespace after the document is allowed, anything else is
/// an error. Numbers parse to `UInt`/`Int` when they are plain integers
/// that fit, `Float` otherwise.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Recursion guard for nested arrays/objects: far deeper than any
/// request body the service accepts, far shallower than stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            entries.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8; find the char span).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    // SAFETY-free: re-slice through str validation.
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(chunk) => out.push_str(chunk),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else if matches!(self.peek(), Some(b'1'..=b'9')) {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        } else {
            return Err(self.err("invalid number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number: missing fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number: missing exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        n: usize,
        t: f64,
        name: String,
        opt: Option<f64>,
    }

    impl Serialize for Row {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("n".to_string(), self.n.to_value()),
                ("t".to_string(), self.t.to_value()),
                ("name".to_string(), self.name.to_value()),
                ("opt".to_string(), self.opt.to_value()),
            ])
        }
    }

    #[test]
    fn compact_object() {
        let row = Row {
            n: 3,
            t: 1.5,
            name: "a\"b".into(),
            opt: None,
        };
        assert_eq!(
            to_string(&row).unwrap(),
            r#"{"n":3,"t":1.5,"name":"a\"b","opt":null}"#
        );
    }

    #[test]
    fn pretty_array_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips_a_document() {
        let text = r#"{"n": 64, "p": 0.25, "seed": -3, "name": "er\u00e9", "paths": true, "rows": [0, 1, 2], "resume": null}"#;
        let v = from_str(text).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(64));
        assert_eq!(v.get("p").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("seed"), Some(&Value::Int(-3)));
        assert_eq!(v.get("name").unwrap().as_str(), Some("eré"));
        assert_eq!(v.get("paths").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("rows").unwrap().as_array(),
            Some(&[Value::UInt(0), Value::UInt(1), Value::UInt(2)][..])
        );
        assert!(v.get("resume").unwrap().is_null());
        // serialize → parse is the identity on the Value tree
        let reparsed = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn parse_handles_escapes_and_surrogates() {
        let v = from_str(r#""a\"b\\c\n\t\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tA😀"));
    }

    #[test]
    fn parse_numbers_pick_the_right_variant() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("1.5e3").unwrap(), Value::Float(1500.0));
        assert_eq!(from_str("2.0").unwrap(), Value::Float(2.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "\"\\q\"",
            "\"\\ud800\"",
            "{} trailing",
            "NaN",
            "Infinity",
            "'single'",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed JSON: {bad:?}");
        }
        // depth bomb: deeply nested arrays must error, not overflow
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn parse_allows_surrounding_whitespace() {
        assert_eq!(from_str(" \r\n\t[ ]\n").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{ }").unwrap(), Value::Object(vec![]));
    }

    /// Regression: the derive's type-skipper must not treat the `>` of a
    /// `->` return arrow as closing an angle bracket, which silently
    /// dropped every field declared after one with an arrow in its type.
    #[test]
    fn derive_keeps_fields_after_an_arrow_type() {
        #[derive(serde::Serialize)]
        struct WithArrow {
            marker: std::marker::PhantomData<fn(u32) -> u32>,
            after: u64,
        }
        let s = to_string(&WithArrow {
            marker: std::marker::PhantomData,
            after: 7,
        })
        .unwrap();
        assert_eq!(s, r#"{"marker":null,"after":7}"#);
    }
}
