//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as JSON (`to_string` / `to_string_pretty`). Serialization is
//! infallible here, but the `Result` signatures (and the
//! `From<Error> for io::Error` conversion) match the real crate so call
//! sites are source-compatible.

#![warn(missing_docs)]

use serde::{Serialize, Value};

/// Serialization error. Never produced by this shim, but kept so `?`
/// propagation at call sites compiles unchanged.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable as floats, like
                // serde_json ("1.0", not "1").
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), write_value),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, val), ind, d| {
                write_json_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        n: usize,
        t: f64,
        name: String,
        opt: Option<f64>,
    }

    impl Serialize for Row {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("n".to_string(), self.n.to_value()),
                ("t".to_string(), self.t.to_value()),
                ("name".to_string(), self.name.to_value()),
                ("opt".to_string(), self.opt.to_value()),
            ])
        }
    }

    #[test]
    fn compact_object() {
        let row = Row {
            n: 3,
            t: 1.5,
            name: "a\"b".into(),
            opt: None,
        };
        assert_eq!(
            to_string(&row).unwrap(),
            r#"{"n":3,"t":1.5,"name":"a\"b","opt":null}"#
        );
    }

    #[test]
    fn pretty_array_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    /// Regression: the derive's type-skipper must not treat the `>` of a
    /// `->` return arrow as closing an angle bracket, which silently
    /// dropped every field declared after one with an arrow in its type.
    #[test]
    fn derive_keeps_fields_after_an_arrow_type() {
        #[derive(serde::Serialize)]
        struct WithArrow {
            marker: std::marker::PhantomData<fn(u32) -> u32>,
            after: u64,
        }
        let s = to_string(&WithArrow {
            marker: std::marker::PhantomData,
            after: 7,
        })
        .unwrap();
        assert_eq!(s, r#"{"marker":null,"after":7}"#);
    }
}
