//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the shapes the workspace uses — plain
//! named-field structs and unit enums, no generics, no `#[serde]`
//! attributes. Implemented directly on `proc_macro` (no syn/quote, since
//! the build environment has no registry access).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(field_names)` for brace variants.
    fields: Option<Vec<String>>,
}

/// Derives `serde::Serialize` (the shim's `to_value` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        // Unit variant → bare string (serde's external tagging).
                        None => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        // Brace variant → {"Variant": {fields...}}.
                        Some(fields) => {
                            let bindings = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Object(vec![(\
                                     \"{vname}\".to_string(), ::serde::Value::Object(vec![{pushes}])\
                                 )]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives the shim's marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Outer attributes and visibility before the item keyword.
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(kw)) => kw.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim does not support generic items ({name})")
            }
            Some(_) => continue,
            None => panic!(
                "serde_derive shim: {name} has no braced body (tuple/unit items unsupported)"
            ),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body.stream()),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("serde_derive shim cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis<I: Iterator<Item = TokenTree>>(tokens: &mut std::iter::Peekable<I>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde_derive shim expects named fields, found {tree:?}");
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        // Consume the type up to the next top-level comma; `<`/`>` nesting
        // is the only bracket kind not already grouped by the tokenizer.
        // The `>` of an `->` return arrow (fn-pointer fields) is not a
        // closing angle bracket.
        let mut angle_depth = 0i32;
        let mut prev_was_dash = false;
        for tree in tokens.by_ref() {
            let mut is_dash = false;
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && !prev_was_dash => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == '-' => is_dash = true,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            prev_was_dash = is_dash;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = tree else {
            panic!("serde_derive shim expects variant names, found {tree:?}");
        };
        let name = variant.to_string();
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                Some(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim does not support tuple enum variants (`{name}`)")
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!(
                "serde_derive shim: unexpected token after variant `{}`: {other:?}",
                variants.last().unwrap().name
            ),
        }
    }
    variants
}
