//! Offline stand-in for `proptest`: the `proptest!` macro, range/tuple
//! strategies, `any::<T>()`, `prop_map`, and `prop_assert*`.
//!
//! Unlike the real crate there is no shrinking — a failing case panics with
//! the assertion message (case values are printed by the assertions
//! themselves where tests include them). Case generation is deterministic:
//! case `i` of every test derives its RNG from `i` via SplitMix64, so CI
//! failures reproduce locally.

#![warn(missing_docs)]

/// Everything tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case`.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x51ED2701_u64.wrapping_mul(case as u64 + 1) ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // `span + 1` only overflows u64 for the full u64 domain,
                // which the early return covers; `hi + 1` would overflow
                // whenever hi == MAX, so it is avoided entirely.
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                lo + offset as $t
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Asserts a property inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instances.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in 0.25f64..0.75, s in any::<u64>()) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
            let _ = s;
        }

        #[test]
        fn tuple_and_map_compose((a, b) in (1usize..=5, 10u64..20).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(a % 2 == 0 && a <= 10);
            prop_assert!((10..20).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Regression: inclusive ranges ending at T::MAX must not overflow.
        #[test]
        fn inclusive_range_to_max(v in 1u64..=u64::MAX, b in 250u8..=u8::MAX) {
            prop_assert!(v >= 1);
            prop_assert!(b >= 250);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(5);
        let mut b = crate::TestRng::for_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
