//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! exact subset of rayon's API the workspace uses — `ThreadPool` +
//! `install`, `into_par_iter().map().collect()`, `par_chunks_mut`, and
//! `current_num_threads` — backed by `std::thread::scope` with a shared
//! work queue (so uneven tasks still load-balance). Swapping the real
//! rayon back in is a one-line change in the workspace manifest.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// The rayon prelude: parallel-iterator traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSliceMut};
}

std::thread_local! {
    static CURRENT_THREADS: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

/// Number of threads the current scope's pool would use.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// A thread pool; in this shim, a thread-count budget that scoped worker
/// threads are spawned against per operation.
pub struct ThreadPool {
    num_threads: usize,
}

/// Restores the previous thread budget on scope exit, including unwinds.
struct BudgetGuard {
    prev: Option<usize>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.prev));
    }
}

fn set_budget(budget: usize) -> BudgetGuard {
    BudgetGuard {
        prev: CURRENT_THREADS.with(|c| c.replace(Some(budget))),
    }
}

impl ThreadPool {
    /// Runs `f` with this pool installed as the current one.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = set_budget(self.num_threads);
        f()
    }

    /// The pool's thread budget.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Error from [`ThreadPoolBuilder::build`]; never produced by this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Accepted for API compatibility; this shim spawns anonymous scoped
    /// threads, so the name function is not used.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_threads).max(1),
        })
    }
}

/// Applies `f` to every item on up to `current_num_threads()` scoped
/// threads, preserving input order in the output.
fn par_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let budget = current_num_threads();
    let threads = budget.clamp(1, len.max(1));
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    slots.resize_with(len, || None);
    let results: Mutex<&mut Vec<Option<R>>> = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Workers inherit the pool budget so nested parallel calls
                // (e.g. a parallel kernel inside an engine task) respect the
                // installed pool size rather than the machine default.
                let _guard = set_budget(budget);
                loop {
                    let next = queue.lock().unwrap().pop_front();
                    let Some((idx, item)) = next else { break };
                    let out = f(item);
                    results.lock().unwrap()[idx] = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker completed"))
        .collect()
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// A parallel iterator: a finite item source evaluated across threads.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Materializes all items (applying any mapped stages in parallel).
    fn run(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<R, F>(self, f: F) -> MapIter<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        MapIter { base: self, f }
    }

    /// Collects the results, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_items(self.run())
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Result of [`ParallelIterator::map`].
pub struct MapIter<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for MapIter<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        par_apply(self.base.run(), &self.f)
    }
}

/// Types constructible from the ordered output of a parallel iterator.
pub trait FromParallelIterator<T>: Sized {
    /// Builds the collection from items in iterator order.
    fn from_ordered_items(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_items(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `size` processed in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumeratedChunks<'a, T> {
        EnumeratedChunks {
            chunks: self.chunks,
        }
    }

    /// Runs `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        par_apply(self.chunks, &|chunk| f(chunk));
    }
}

/// Result of [`ParChunksMut::enumerate`].
pub struct EnumeratedChunks<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> EnumeratedChunks<'_, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        par_apply(self.chunks.into_iter().enumerate().collect(), &|(
            i,
            chunk,
        )| {
            f((i, chunk))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..100).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_to_first_error() {
        let out: Result<Vec<usize>, String> = (0..10)
            .into_par_iter()
            .map(|x| {
                if x == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(out, Err("seven".to_string()));
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut data = vec![0u64; 37];
        data.par_chunks_mut(5).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[36], 7);
    }

    #[test]
    fn install_scopes_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn workers_inherit_the_pool_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let budgets: Vec<usize> = pool.install(|| {
            (0..8)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(
            budgets.iter().all(|&b| b == 2),
            "nested calls on workers must see the installed budget: {budgets:?}"
        );
    }

    #[test]
    fn budget_is_restored_after_a_panicking_install() {
        let baseline = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(result.is_err());
        assert_eq!(current_num_threads(), baseline, "budget leaked past unwind");
    }
}
