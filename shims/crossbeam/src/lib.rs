//! Offline stand-in for `crossbeam`: the unbounded MPSC channel API the
//! workspace uses, backed by `std::sync::mpsc`.

#![warn(missing_docs)]

/// Multi-producer channels.
pub mod channel {
    /// Error returned when the receiving side has hung up.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when all senders have hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7u64).unwrap())
                .join()
                .unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
