//! Offline stand-in for `rand`: `StdRng` (xoshiro256++ seeded through
//! SplitMix64), the `Rng`/`SeedableRng` traits, uniform `gen` and
//! `gen_range`. Deterministic per seed, like the real `StdRng` contract
//! the workspace relies on (generators promise reproducibility per seed,
//! not any particular stream).

#![warn(missing_docs)]

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods; blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Sample
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> Rng for G {}

/// Standard-distribution sampling (the `rand::distributions::Standard`
/// analogue).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self;
}

impl Standard for f64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<G: RngCore>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Sample;
    /// Draws one value uniformly from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> Self::Sample;
}

impl SampleRange for std::ops::Range<f64> {
    type Sample = f64;
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Sample = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2⁻⁶⁴·span,
                // irrelevant at the workspace's scales.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Sample = $t;
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                // `span + 1` only overflows u64 for the full u64 domain,
                // which the early return covers; `hi + 1` would overflow
                // whenever hi == MAX, so it is avoided entirely.
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                lo + offset as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
            let f = rng.gen_range(1.0..10.0);
            assert!((1.0..10.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn inclusive_ranges_reach_type_max_without_overflow() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(250u8..=u8::MAX);
            assert!(v >= 250);
            let w = rng.gen_range(1u64..=u64::MAX);
            assert!(w >= 1);
            let full = rng.gen_range(u8::MIN..=u8::MAX);
            let _ = full;
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..20_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
