//! Offline stand-in for `criterion`: benchmark groups, `bench_function` /
//! `bench_with_input`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple best-of-N wall-clock
//! measurement printed to stdout — enough to compare kernels locally; no
//! statistics, HTML reports, or baselines.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the harness runs in smoke-test mode (`cargo bench ... -- --test`
/// in real criterion): every benchmark executes once, untimed-in-spirit,
/// so CI can verify the benches run without paying measurement cost.
static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Reads CLI flags; called by [`criterion_main!`]. Recognizes `--test`.
pub fn init_from_args() {
    if std::env::args().skip(1).any(|a| a == "--test") {
        TEST_MODE.store(true, Ordering::Relaxed);
    }
}

/// Whether `--test` smoke mode is active. Benchmarks may consult this to
/// skip their most expensive parameter points.
pub fn is_test_mode() -> bool {
    TEST_MODE.load(Ordering::Relaxed)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, None, f);
    }
}

/// Work-per-iteration annotation, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    best: Option<Duration>,
    samples: usize,
}

impl Bencher {
    /// Times `f`, keeping the best of the configured sample count. The
    /// return value is passed through [`black_box`] so the computation is
    /// not optimized away.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // One warmup, then timed samples (skipped in --test smoke mode).
        if !is_test_mode() {
            black_box(f());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            if self.best.is_none_or(|b| elapsed < b) {
                self.best = Some(elapsed);
            }
        }
    }
}

fn run_benchmark<F>(name: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let samples = if is_test_mode() { 1 } else { samples };
    let mut bencher = Bencher {
        best: None,
        samples,
    };
    f(&mut bencher);
    match bencher.best {
        Some(best) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!("  ({:.1} Melem/s)", n as f64 / best.as_secs_f64() / 1e6)
                }
                Throughput::Bytes(n) => {
                    format!(
                        "  ({:.1} MiB/s)",
                        n as f64 / best.as_secs_f64() / (1024.0 * 1024.0)
                    )
                }
            });
            println!("{name:<50} {best:>12.3?}{}", rate.unwrap_or_default());
        }
        None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
