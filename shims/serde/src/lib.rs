//! Offline stand-in for `serde`: a self-describing [`Value`] data model, a
//! [`Serialize`] trait producing it, and derive macros re-exported from the
//! companion `serde_derive` shim. `serde_json` renders [`Value`] to JSON.
//!
//! Only the surface the workspace uses is provided: `#[derive(Serialize,
//! Deserialize)]` on plain named-field structs and unit enums, and
//! `Serialize` bounds on generic functions.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the serde data model, collapsed to what JSON
/// can express).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite values serialize as `null`, as
    /// serde_json does).
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (field declaration order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an [`Value::Object`]; `None` for other variants
    /// or missing keys. First match wins (objects preserve insertion
    /// order and well-formed JSON has unique keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as an `f64` (any numeric variant). `null` is *not* a
    /// number: callers that treat `null` as +∞ (unreachable distances)
    /// must do so explicitly via [`Value::is_null`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the data-model tree.
    fn to_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`. The workspace only
/// ever writes JSON, so no deserialization machinery is provided.
pub trait Deserialize {}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

ser_uint!(usize, u64, u32, u16, u8);
ser_int!(isize, i64, i32, i16, i8);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ?Sized> Serialize for std::marker::PhantomData<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_string().to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u64>::None.to_value(), Value::Null);
        assert_eq!(
            vec![1u64, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
