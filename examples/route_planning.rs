//! Route planning: shortest *paths* (not just lengths), reconstructed
//! from a planned distributed solve, plus distributed distance queries.
//!
//! The paper computes only path lengths (§3); this example shows the
//! library extensions downstream users reach for first:
//!
//! 1. witness paths through the front door — `Problem::new(&g)
//!    .with_paths().solve(&ctx)` plans the solver, the blocked engine
//!    tracks the argmin of each winning relaxation, and
//!    `Solution::path` expands the actual route,
//! 2. the sequential successor-matrix Floyd-Warshall
//!    (`apspark::graph::paths`) as the cross-checking oracle, and
//! 3. querying a *distributed* result without collecting the full `n²`
//!    matrix to the driver (`solve_distributed`, expert layer), which is
//!    what makes paper-scale results usable at all (550 GB at
//!    `n = 262144`).
//!
//! ```sh
//! cargo run --release --example route_planning
//! ```

use apspark::graph::paths;
use apspark::prelude::*;

fn main() {
    // A weighted road-ish network: a grid with a few fast "highways".
    let (rows, cols) = (8usize, 8usize);
    let n = rows * cols;
    let mut g = apspark::graph::Graph::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), 3.0); // local street
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), 3.0);
            }
        }
    }
    // Diagonal highway with cheap hops.
    for k in 0..7 {
        g.add_edge(id(k, k), id(k + 1, k + 1), 1.0);
    }
    let adj = g.to_dense();
    let from = id(0, 0) as usize;
    let to = id(7, 7) as usize;

    // 1. Planned solve with path tracking: the planner picks the solver
    //    and block size, the engine records per-cell vias.
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let problem = Problem::new(&g).with_paths();
    let plan = problem.plan(&ctx).expect("planning failed");
    print!("{}", plan.explain());
    let sol = problem.execute(&ctx, plan).expect("solve failed");
    let route = sol.path(from, to).expect("connected");
    println!(
        "route {from} -> {to}: distance {}, via {} hops:",
        sol.dist(from, to).expect("connected"),
        route.len() - 1
    );
    let pretty: Vec<String> = route
        .iter()
        .map(|&v| format!("({},{})", v as usize / cols, v as usize % cols))
        .collect();
    println!("  {}", pretty.join(" -> "));
    let on_highway = route
        .windows(2)
        .filter(|w| {
            let (a, b) = (w[0] as usize, w[1] as usize);
            let (ra, ca) = (a / cols, a % cols);
            let (rb, cb) = (b / cols, b % cols);
            ra != rb && ca != cb // diagonal move = highway hop
        })
        .count();
    println!(
        "route uses the highway for {on_highway}/{} hops",
        route.len() - 1
    );
    assert_eq!(on_highway, 7, "the cheap diagonal must be taken end-to-end");

    // 2. Cross-check against the sequential successor-matrix oracle.
    let pm = paths::apsp_paths(&g);
    assert!((sol.dist(from, to).unwrap() - pm.distance(from, to)).abs() < 1e-9);
    let oracle_route = pm.path(from, to).expect("connected");
    assert_eq!(route.len(), oracle_route.len(), "same optimal hop count");
    println!("sequential successor-matrix oracle agrees on the hop count");

    // 3. Expert layer: distributed solve + point queries (no full
    //    collection to the driver).
    let dd = BlockedCollectBroadcast
        .solve_distributed(&ctx, &adj, &SolverConfig::new(16))
        .expect("solve failed");
    let d = dd.distance(from, to).expect("query failed");
    assert!((d - sol.dist(from, to).unwrap()).abs() < 1e-9);
    println!("distributed point query agrees: d({from},{to}) = {d}");
    let row = dd.row(from).expect("row query failed");
    let furthest = row
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "furthest intersection from {from}: vertex {} at distance {}",
        furthest.0, furthest.1
    );
}
