//! Manifold learning: geodesic distances for Isomap (the paper's §1
//! motivating workload).
//!
//! Isomap and other spectral dimensionality-reduction methods approximate
//! geodesic distances on a manifold by shortest paths over a k-nearest-
//! neighbour graph of the sampled points — "shortest paths in a
//! neighborhood graph over high-dimensional points are known to be very
//! robust approximation of geodesic distances on the underlying manifold"
//! (paper §1, citing Tenenbaum et al.). APSP is the expensive kernel of
//! that pipeline; this example runs it distributed.
//!
//! ```sh
//! cargo run --release --example isomap_geodesics
//! ```

use apspark::prelude::*;

fn main() {
    // Sample a noisy swiss-roll curve in 3D and connect k nearest
    // neighbours with Euclidean edge weights.
    let (graph, points) = apspark::graph::generators::knn_swiss_roll(300, 6, 7);
    println!(
        "kNN graph over {} points: |E| = {}, components = {}",
        points.len(),
        graph.num_edges(),
        graph.connected_components()
    );

    // Distributed APSP over the neighbourhood graph = geodesic estimates,
    // planned by the front door (the planner picks solver + block size).
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let sol = Problem::new(&graph).solve(&ctx).expect("solve failed");
    println!("{}", sol.plan.explain());
    let geo = sol.distances().expect("shortest-paths solution");

    // Compare geodesic vs ambient (straight-line) distance for a few
    // pairs: on a curled manifold geodesics are systematically longer.
    let euclid = |a: usize, b: usize| -> f64 {
        (0..3)
            .map(|c| (points[a][c] - points[b][c]).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let mut stretched = 0usize;
    let mut finite = 0usize;
    let mut max_ratio: (f64, usize, usize) = (0.0, 0, 0);
    for a in (0..300).step_by(17) {
        for b in (a + 1..300).step_by(23) {
            let g = geo.get(a, b);
            if !g.is_finite() {
                continue;
            }
            finite += 1;
            let e = euclid(a, b);
            if g > e + 1e-9 {
                stretched += 1;
            }
            if e > 1e-9 && g / e > max_ratio.0 {
                max_ratio = (g / e, a, b);
            }
        }
    }
    println!(
        "{stretched}/{finite} sampled pairs have geodesic > straight-line distance \
         (manifold curvature made visible)"
    );
    println!(
        "largest stretch: {:.2}× between points {} and {}",
        max_ratio.0, max_ratio.1, max_ratio.2
    );

    // The Isomap pipeline would now double-center geo² and take the top
    // eigenvectors; the APSP above is the part this library accelerates.
    let mean_geo: f64 = {
        let vals: Vec<f64> = (0..300)
            .flat_map(|i| (0..300).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .map(|(i, j)| geo.get(i, j))
            .filter(|v| v.is_finite())
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    println!("mean finite geodesic distance: {mean_geo:.2}");
}
