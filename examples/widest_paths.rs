//! Widest (bottleneck) paths through the front door: the same blocked
//! Spark solvers, swapped onto the *(max, min)* path algebra by the
//! planner.
//!
//! The paper frames APSP as matrix algebra over *(min, +)* (§2). The
//! solver stack is generic over that algebra, so the all-pairs
//! **bottleneck** problem — "what is the fattest pipe between every pair
//! of hosts?" (Shinn & Takaoka's APBP) — is just
//! `Problem::new(&g).workload(Workload::Widest)`:
//!
//! * `⊕ = max` picks the better of two routes,
//! * `⊗ = min` is the capacity of a concatenation,
//! * `0̄ = 0.0` (no pipe), `1̄ = +∞` (staying put).
//!
//! Cross-checked against the modified-Dijkstra oracle
//! (`apspark::graph::bottleneck`).
//!
//! ```sh
//! cargo run --release --example widest_paths
//! ```

use apspark::graph::bottleneck;
use apspark::prelude::*;

fn main() {
    // A small data-center-ish fabric: two racks of four hosts with fat
    // intra-rack links, one fat uplink pair, and a thin maintenance link.
    let n = 8usize;
    let mut g = apspark::graph::Graph::new(n);
    // Rack A: 0-3, rack B: 4-7, 10 Gb/s within a rack.
    for r in [0u32, 4] {
        for i in r..r + 4 {
            for j in (i + 1)..r + 4 {
                g.add_edge(i, j, 10.0);
            }
        }
    }
    g.add_edge(0, 4, 4.0); // uplink: 4 Gb/s
    g.add_edge(3, 7, 0.1); // maintenance link: 100 Mb/s

    let ctx = SparkContext::new(SparkConfig::with_cores(4));

    // The front door: widest-paths workload, with witness routes.
    let sol = Problem::new(&g)
        .workload(Workload::Widest)
        .with_paths()
        .solve(&ctx)
        .expect("solve failed");
    println!("all-pairs bottleneck capacities (planned solve over (max, min)):");
    let wide = sol.widths().expect("widest solution");
    for i in 0..n {
        let row: Vec<String> = (0..n).map(|j| format!("{:5.1}", wide.get(i, j))).collect();
        println!("  host {i}: [{}]", row.join(", "));
    }

    // Cross-rack traffic is limited by the fat uplink, not the thin
    // maintenance link.
    assert_eq!(
        sol.width(1, 6),
        Some(4.0),
        "cross-rack bottleneck is the uplink"
    );
    assert_eq!(
        sol.width(0, 3),
        Some(10.0),
        "intra-rack stays at rack speed"
    );
    let route = sol.path(1, 6).expect("paths were tracked");
    println!(
        "host 1 -> host 6 bottleneck: {} Gb/s via {:?} (through the uplink)",
        sol.width(1, 6).unwrap(),
        route
    );
    assert!(
        route
            .windows(2)
            .any(|w| { (w[0] == 0 && w[1] == 4) || (w[0] == 4 && w[1] == 0) }),
        "the widest route must cross the 0-4 uplink"
    );

    // Every blocked solver computes the same algebra; spot-check another
    // through the expert layer.
    let cfg = SolverConfig::new(4);
    let im = widest_paths(&ctx, &g, &BlockedInMemory, &cfg).expect("solve failed");
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                im.get(i, j),
                wide.get(i, j),
                "solver divergence at ({i},{j})"
            );
        }
    }

    // And the sequential modified-Dijkstra oracle agrees everywhere.
    let oracle = bottleneck::widest_paths(&g);
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                wide.get(i, j),
                oracle.get(i, j),
                "oracle divergence at ({i},{j})"
            );
        }
    }
    println!("Blocked-IM and the modified-Dijkstra oracle agree on all {n}x{n} pairs");
}
