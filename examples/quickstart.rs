//! Quickstart: solve APSP on a random graph with the paper's best solver.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use apspark::prelude::*;

fn main() {
    // A graph from the paper's benchmark family: Erdős–Rényi with edge
    // probability (1 + ε)·ln(n)/n, ε = 0.1, uniform weights in [1, 10).
    let n = 256;
    let graph = apspark::graph::generators::erdos_renyi_paper(n, 0.1, 42);
    println!(
        "graph: n = {}, |E| = {}, components = {}",
        graph.order(),
        graph.num_edges(),
        graph.connected_components()
    );

    // An engine with 4 executor cores (the "cluster").
    let ctx = SparkContext::new(SparkConfig::with_cores(4));

    // Blocked Collect/Broadcast (the paper's Algorithm 4) with 64-vertex
    // blocks — the q = 4 decomposition runs 4 iterations.
    let cfg = SolverConfig::new(64);
    let solver = BlockedCollectBroadcast;
    let result = solver
        .solve(&ctx, &graph.to_dense(), &cfg)
        .expect("solve failed");

    let d = result.distances();
    println!(
        "solved in {:.3}s over {} iterations",
        result.elapsed.as_secs_f64(),
        result.iterations
    );
    println!(
        "d(0, 1) = {:.3}, d(0, {}) = {:.3}",
        d.get(0, 1),
        n - 1,
        d.get(0, n - 1)
    );

    // Engine observability: what did the solve cost the "cluster"?
    let m = &result.metrics;
    println!(
        "jobs = {}, shuffles = {}, shuffle = {:.2} MB, side channel = {:.2} MB",
        m.jobs,
        m.shuffles,
        m.shuffle_bytes as f64 / 1e6,
        (m.side_channel_bytes_written + m.side_channel_bytes_read) as f64 / 1e6
    );

    // Cross-check against the sequential oracle.
    let oracle = apspark::graph::floyd_warshall(&graph);
    result
        .distances()
        .approx_eq(&oracle, 1e-9)
        .expect("distributed result diverged from sequential Floyd-Warshall");
    println!("verified against sequential Floyd-Warshall ✓");
}
