//! Quickstart: solve APSP through the library's front door — the
//! `Problem → Plan → Solution` pipeline picks the solver and block size
//! for you and explains why.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use apspark::prelude::*;

fn main() {
    // A graph from the paper's benchmark family: Erdős–Rényi with edge
    // probability (1 + ε)·ln(n)/n, ε = 0.1, uniform weights in [1, 10).
    let n = 256;
    let graph = apspark::graph::generators::erdos_renyi_paper(n, 0.1, 42);
    println!(
        "graph: n = {}, |E| = {}, components = {}",
        graph.order(),
        graph.num_edges(),
        graph.connected_components()
    );

    // An engine with 4 executor cores (the "cluster").
    let ctx = SparkContext::new(SparkConfig::with_cores(4));

    // One front door: describe the problem, let the planner choose the
    // solver, block size, kernel tier, and partitioner (the paper's §5
    // tuning lessons, mechanized), and execute.
    let problem = Problem::new(&graph).with_paths();
    let plan = problem.plan(&ctx).expect("planning failed");
    print!("{}", plan.explain());
    let sol = problem.execute(&ctx, plan).expect("solve failed");
    println!(
        "solved in {:.3}s over {} iterations",
        sol.elapsed.as_secs_f64(),
        sol.iterations
    );

    // Point queries against the unified Solution.
    println!(
        "d(0, 1) = {:?}, d(0, {}) = {:?}",
        sol.dist(0, 1),
        n - 1,
        sol.dist(0, n - 1)
    );
    if let Some(route) = sol.path(0, n - 1) {
        println!(
            "one shortest route 0 -> {}: {} hops",
            n - 1,
            route.len() - 1
        );
    }
    let near = sol.k_nearest(0, 3);
    println!("3 nearest to vertex 0: {near:?}");

    // Engine observability: what did the solve cost the "cluster"?
    let m = &sol.metrics;
    println!(
        "jobs = {}, shuffles = {}, shuffle = {:.2} MB, side channel = {:.2} MB",
        m.jobs,
        m.shuffles,
        m.shuffle_bytes as f64 / 1e6,
        (m.side_channel_bytes_written + m.side_channel_bytes_read) as f64 / 1e6
    );

    // Cross-check against the sequential oracle.
    let oracle = apspark::graph::floyd_warshall(&graph);
    sol.distances()
        .expect("shortest-paths solution")
        .approx_eq(&oracle, 1e-9)
        .expect("planned result diverged from sequential Floyd-Warshall");
    println!("verified against sequential Floyd-Warshall ✓");
}
