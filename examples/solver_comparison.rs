//! Compare all six solvers on the same instance: correctness, wall time,
//! and what each one costs the engine (the paper's Tables 2/3 ordering at
//! miniature scale).
//!
//! ```sh
//! cargo run --release --example solver_comparison
//! ```

use apspark::core::{MpiDcApsp, MpiFw2d};
use apspark::prelude::*;
use std::time::Instant;

fn main() {
    let n = 192;
    let b = 48;
    let graph = apspark::graph::generators::erdos_renyi_paper(n, 0.1, 1234);
    let adj = graph.to_dense();
    let oracle = apspark::graph::floyd_warshall(&graph);
    println!("instance: n = {n}, b = {b} (q = {})\n", n.div_ceil(b));

    let solvers: Vec<Box<dyn ApspSolver>> = vec![
        Box::new(RepeatedSquaring),
        Box::new(FloydWarshall2D),
        Box::new(BlockedInMemory),
        Box::new(BlockedCollectBroadcast),
    ];
    println!(
        "{:<20} {:>8} {:>7} {:>6} {:>12} {:>12}",
        "solver", "time", "iters", "pure", "shuffle MB", "side-ch MB"
    );
    for solver in solvers {
        let ctx = SparkContext::new(SparkConfig::with_cores(4));
        let res = solver
            .solve(&ctx, &adj, &SolverConfig::new(b))
            .expect("solve failed");
        res.distances()
            .approx_eq(&oracle, 1e-9)
            .expect("diverged from oracle");
        println!(
            "{:<20} {:>7.2}s {:>7} {:>6} {:>12.2} {:>12.2}",
            solver.name(),
            res.elapsed.as_secs_f64(),
            res.iterations,
            solver.is_pure(),
            res.metrics.shuffle_bytes as f64 / 1e6,
            (res.metrics.side_channel_bytes_written + res.metrics.side_channel_bytes_read) as f64
                / 1e6,
        );
    }

    // MPI baselines on the same instance.
    let t0 = Instant::now();
    let fw = MpiFw2d::new(2).solve_matrix(&adj).expect("FW-2D failed");
    fw.distances
        .approx_eq(&oracle, 1e-9)
        .expect("FW-2D diverged");
    println!(
        "{:<20} {:>7.2}s {:>7} {:>6} {:>12} {:>12}",
        "FW-2D-MPI (2x2)",
        t0.elapsed().as_secs_f64(),
        n,
        "—",
        "—",
        "—"
    );
    let t1 = Instant::now();
    let dc = MpiDcApsp::new(4).solve_matrix(&adj).expect("DC failed");
    dc.distances.approx_eq(&oracle, 1e-9).expect("DC diverged");
    println!(
        "{:<20} {:>7.2}s {:>7} {:>6} {:>12} {:>12}",
        "DC-MPI (4 ranks)",
        t1.elapsed().as_secs_f64(),
        1,
        "—",
        "—",
        "—"
    );
    println!(
        "\nFW-2D-MPI simulated comm critical path: {:.3}s across {} messages",
        fw.simulated_comm_s,
        fw.stats.iter().map(|s| s.messages_sent).sum::<u64>()
    );
    println!("all six agree with the sequential oracle ✓");
}
