//! Directed APSP: a street network with one-way segments (the paper's §4
//! extension: "by disregarding symmetricity of A, our algorithms can be
//! directly adopted for cases where G is a directed graph").
//!
//! The front door accepts a `DiGraph` directly: the planner routes
//! asymmetric inputs to the directed solvers (`Directed Blocked-CB`, or
//! `Directed 2D Floyd-Warshall` when witness paths are requested —
//! `Plan::explain()` names the rule that fires).
//!
//! ```sh
//! cargo run --release --example one_way_network
//! ```

use apspark::graph::DiGraph;
use apspark::prelude::*;

fn main() {
    // A 6×6 grid "city": two-way streets, except every horizontal street
    // in an even row is one-way eastbound and in an odd row one-way
    // westbound (a classic alternating one-way layout).
    let (rows, cols) = (6usize, 6usize);
    let n = rows * cols;
    let mut g = DiGraph::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                if r % 2 == 0 {
                    g.add_arc(id(r, c), id(r, c + 1), 1.0); // eastbound only
                } else {
                    g.add_arc(id(r, c + 1), id(r, c), 1.0); // westbound only
                }
            }
            if r + 1 < rows {
                g.add_arc(id(r, c), id(r + 1, c), 1.0); // avenues two-way
                g.add_arc(id(r + 1, c), id(r, c), 1.0);
            }
        }
    }
    println!(
        "one-way city: {} intersections, {} street segments",
        n,
        g.num_arcs()
    );

    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let problem = Problem::from_digraph(&g);
    let plan = problem.plan(&ctx).expect("planning failed");
    print!("{}", plan.explain());
    let sol = problem.execute(&ctx, plan).expect("directed solve failed");

    // Going "against" a one-way street forces a detour.
    let a = id(0, 1) as usize; // row 0 is eastbound
    let b = id(0, 0) as usize;
    println!(
        "eastbound block: {} -> {} takes {:?}, but {} -> {} takes {:?} (detour!)",
        b,
        a,
        sol.dist(b, a),
        a,
        b,
        sol.dist(a, b)
    );
    assert_eq!(sol.dist(b, a), Some(1.0));
    assert!(sol.dist(a, b).unwrap() > 1.0, "one-way violation");

    // Verify against the directed Dijkstra oracle.
    let oracle = apspark::graph::apsp_dijkstra_directed(&g);
    sol.distances()
        .expect("shortest-paths solution")
        .approx_eq(&oracle, 1e-9)
        .expect("directed distributed solve diverged from Dijkstra");
    println!("verified against directed Dijkstra ✓");

    // With witness paths the planner swaps solvers (Directed Blocked-CB
    // rejects tracking) and says so.
    let tracked = Problem::from_digraph(&g).with_paths();
    let plan = tracked.plan(&ctx).expect("planning failed");
    assert!(plan.explain().contains("paths-fallback"));
    print!("{}", plan.explain());
    let sol_p = tracked.execute(&ctx, plan).expect("tracked solve failed");
    let detour = sol_p.path(a, b).expect("connected");
    println!(
        "the forced detour {} -> {}: {:?} ({} hops)",
        a,
        b,
        detour,
        detour.len() - 1
    );

    // Average detour asymmetry across all pairs.
    let d = sol.distances().unwrap();
    let mut asym = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            pairs += 1;
            if (d.get(i, j) - d.get(j, i)).abs() > 1e-9 {
                asym += 1;
            }
        }
    }
    println!("{asym}/{pairs} pairs have direction-dependent distances");
}
