//! Closure store: solve once, persist the closure, and answer point
//! queries from disk in a later process — through an LRU block cache
//! whose budget can be far smaller than the closure itself.
//!
//! ```sh
//! cargo run --release --example closure_store
//! ```
//!
//! Also the measurement harness behind the cold-open vs warm-cache table
//! in `EXPERIMENTS.md`.

use apspark::prelude::*;
use std::time::Instant;

fn percentile(mut us: Vec<u128>, p: f64) -> u128 {
    us.sort_unstable();
    us[((us.len() - 1) as f64 * p) as usize]
}

fn main() {
    let n = 2048;
    let b = 128;
    let graph = apspark::graph::generators::erdos_renyi_paper(n, 0.1, 42);
    let ctx = SparkContext::new(SparkConfig::with_cores(4));

    // Solve once, tracked, and persist the closure next to the process.
    let dir = std::env::temp_dir().join("apspark-closure-store-example");
    let _ = std::fs::remove_dir_all(&dir);
    let t = Instant::now();
    let sol = Problem::new(&graph)
        .with_paths()
        .block_size(b)
        .solve(&ctx)
        .expect("solve failed");
    let solve_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    sol.save(&dir).expect("save failed");
    let save_s = t.elapsed().as_secs_f64();
    let store_bytes: u64 = std::fs::read_dir(&dir)
        .expect("store dir")
        .map(|e| e.expect("entry").metadata().expect("meta").len())
        .sum();
    println!(
        "solved n = {n} in {solve_s:.3}s; saved {} blocks ({:.1} MB) in {save_s:.3}s",
        (n / b) * (n / b),
        store_bytes as f64 / 1e6
    );
    drop(sol); // from here on, the closure lives only on disk

    // Reopen under a cache budget of ~16 blocks — 6% of the closure —
    // as a fresh process would, and compare first-touch (disk + decode)
    // against cached point queries.
    let per_block = (b * b * 12) as u64; // f64 values + u32 vias
    let t = Instant::now();
    let disk = Solution::open_with_cache_budget(&dir, 16 * per_block).expect("open failed");
    println!(
        "reopened in {:.1} us under a {:.1} MB budget ({:.1} MB closure)",
        t.elapsed().as_micros(),
        (16 * per_block) as f64 / 1e6,
        store_bytes as f64 / 1e6
    );

    // Cold: one query per block row/column stride, every touch a miss.
    let mut cold = Vec::new();
    for i in (0..n).step_by(b) {
        for j in (0..n).step_by(b) {
            let t = Instant::now();
            let _ = disk.dist(i, j);
            cold.push(t.elapsed().as_micros());
        }
    }
    // Warm: re-ask within the most recent blocks — pure cache hits.
    let mut warm = Vec::new();
    for _ in 0..cold.len() {
        let t = Instant::now();
        let _ = disk.dist(n - 1, n - 1);
        warm.push(t.elapsed().as_nanos());
    }
    println!(
        "cold point query  p50 = {} us, p99 = {} us (disk read + checksum + decode)",
        percentile(cold.clone(), 0.5),
        percentile(cold, 0.99)
    );
    println!(
        "warm point query  p50 = {} ns, p99 = {} ns (cache hit)",
        percentile(warm.clone(), 0.5),
        percentile(warm, 0.99)
    );

    // Routes reconstruct from the stored via planes, fetching only the
    // blocks the path crosses.
    let t = Instant::now();
    let route = disk.path(0, n - 1);
    println!(
        "path(0, {}) from disk in {} us: {} hops",
        n - 1,
        t.elapsed().as_micros(),
        route.map_or(0, |r| r.len() - 1)
    );

    let m = disk.store().expect("store-backed").metrics();
    println!(
        "cache: {} hits, {} misses, {} evictions; {} blocks ({:.1} MB) read",
        m.store_cache_hits,
        m.store_cache_misses,
        m.store_cache_evictions,
        m.store_blocks_read,
        m.store_bytes_read as f64 / 1e6
    );
    let _ = std::fs::remove_dir_all(&dir);
}
