//! Network analysis: closeness centrality from an APSP solve.
//!
//! The paper's intro cites network classification and information
//! retrieval among the APSP-hungry applications; closeness centrality
//! (the inverse of a vertex's mean distance to everyone else) is the
//! classic one-matrix-read example. We build a two-community graph with a
//! few bridge vertices and confirm the bridges rank highest.
//!
//! ```sh
//! cargo run --release --example closeness_centrality
//! ```

use apspark::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Two dense communities of 60, connected only through vertices 0 and 60.
    let n = 120;
    let mut g = apspark::graph::Graph::new(n);
    let mut rng = StdRng::seed_from_u64(99);
    let add_community = |g: &mut apspark::graph::Graph, lo: u32, hi: u32, rng: &mut StdRng| {
        for u in lo..hi {
            for v in (u + 1)..hi {
                if rng.gen::<f64>() < 0.25 {
                    g.add_edge(u, v, rng.gen_range(1.0..4.0));
                }
            }
        }
    };
    add_community(&mut g, 0, 60, &mut rng);
    add_community(&mut g, 60, 120, &mut rng);
    g.add_edge(0, 60, 1.0); // the bridge

    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    // The front door, with an expert preference: Blocked-IM is fine at
    // this scale and the planner honors the request (it would fall back
    // to Blocked-CB if the cluster model said otherwise).
    let sol = Problem::new(&g)
        .prefer(SolverId::BlockedInMemory)
        .block_size(30)
        .solve(&ctx)
        .expect("solve failed");
    let d = sol.distances().expect("shortest-paths solution");

    // Closeness: (n-1) / Σ_j d(i, j), counting only reachable pairs.
    let closeness: Vec<f64> = (0..n)
        .map(|i| {
            let (sum, reach) = (0..n)
                .filter(|&j| j != i)
                .map(|j| d.get(i, j))
                .filter(|v| v.is_finite())
                .fold((0.0, 0usize), |(s, c), v| (s + v, c + 1));
            if reach == 0 {
                0.0
            } else {
                // Wasserman-Faust normalization for disconnected graphs.
                (reach as f64 / (n - 1) as f64) * (reach as f64 / sum)
            }
        })
        .collect();

    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by(|&a, &b| closeness[b].partial_cmp(&closeness[a]).unwrap());

    println!("top-5 closeness centrality:");
    for &v in ranked.iter().take(5) {
        println!("  vertex {v:3}: {:.4}", closeness[v]);
    }
    let bridge_rank_0 = ranked.iter().position(|&v| v == 0).unwrap();
    let bridge_rank_60 = ranked.iter().position(|&v| v == 60).unwrap();
    println!("bridge vertices rank #{bridge_rank_0} and #{bridge_rank_60} of {n}");
    assert!(
        bridge_rank_0 < 10 && bridge_rank_60 < 10,
        "bridges should dominate closeness in a two-community graph"
    );
    println!("bridges dominate, as expected ✓");
}
