//! The paper's pure/impure distinction, demonstrated live.
//!
//! Pure solvers (Blocked In-Memory) depend only on lineage: an injected
//! task failure is recovered by recomputation. Impure solvers (Blocked
//! Collect/Broadcast) stage data in shared storage outside the lineage:
//! "failed tasks depending on data in a shared file system are not
//! guaranteed to be able to access that data when rescheduled" (paper §3).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use apspark::prelude::*;
use apspark::sparklet::SparkError;

fn main() {
    let graph = apspark::graph::generators::erdos_renyi_paper(64, 0.1, 5);
    let adj = graph.to_dense();
    let oracle = apspark::graph::floyd_warshall(&graph);

    // 1. Pure solver + injected failures → recovered via lineage.
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    // Fail a handful of future tasks: RDD ids are allocated sequentially,
    // so ids 5..15 hit tasks across the first iterations of the solve.
    for rdd in 5..15 {
        ctx.inject_task_failure(rdd, 0);
    }
    let res = BlockedInMemory
        .solve(&ctx, &adj, &SolverConfig::new(16))
        .expect("pure solver must survive task failures");
    res.distances()
        .approx_eq(&oracle, 1e-9)
        .expect("recovered result diverged");
    println!(
        "Blocked-IM survived {} task retries and still matches the oracle ✓",
        res.metrics.task_retries
    );
    assert!(res.metrics.task_retries > 0, "expected at least one retry");

    // 2. Impure solver + lost side-channel data → unrecoverable error.
    //    We simulate the storage loss by making the shared store
    //    unavailable mid-solve from a sabotage thread.
    let ctx2 = SparkContext::new(SparkConfig::with_cores(4));
    let saboteur = {
        let ctx2 = ctx2.clone();
        std::thread::spawn(move || {
            // Let the solve start staging, then take the storage down.
            std::thread::sleep(std::time::Duration::from_millis(30));
            ctx2.side_channel().set_available(false);
        })
    };
    let outcome = BlockedCollectBroadcast.solve(&ctx2, &adj, &SolverConfig::new(8));
    saboteur.join().unwrap();
    match outcome {
        Err(apspark::core::ApspError::Engine(e))
            if matches!(e.root(), SparkError::SideChannelMiss { .. }) =>
        {
            // Exhausted retries arrive wrapped in task context (which rdd,
            // which partition, how many attempts); `root()` digs out the
            // original storage miss.
            let SparkError::SideChannelMiss { key, backend, .. } = e.root() else {
                unreachable!("guard matched SideChannelMiss");
            };
            println!(
                "Blocked-CB failed unrecoverably once storage vanished \
                 (blob '{key}' on {backend}) ✓\n  full context: {e}"
            );
        }
        Ok(_) => {
            // Timing-dependent: the solve may have finished before the
            // sabotage landed. Demonstrate deterministically instead.
            println!("solve finished before storage loss; demonstrating deterministically:");
            let ctx3 = SparkContext::new(SparkConfig::with_cores(2));
            ctx3.side_channel().set_available(false);
            let err = BlockedCollectBroadcast
                .solve(&ctx3, &adj, &SolverConfig::new(8))
                .expect_err("CB cannot run without its side channel");
            println!("Blocked-CB: {err} ✓");
        }
        Err(other) => panic!("unexpected failure mode: {other}"),
    }

    println!("\npure = recoverable by lineage; impure = hostage to external storage.");
}
