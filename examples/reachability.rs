//! Boolean transitive closure / reachability: the blocked Spark solvers
//! swapped onto the *(∨, ∧)* path algebra.
//!
//! The `Semiring` layer cites Katz et al. [10] for transitive closure
//! over the boolean semiring; this example runs exactly that through the
//! distributed blocked solvers — the same dataflow that solves APSP,
//! instantiated with `⊕ = ∨`, `⊗ = ∧` — and cross-checks against BFS.
//!
//! Reachability on an undirected graph is connected components: the
//! closure's rows are component indicator vectors.
//!
//! ```sh
//! cargo run --release --example reachability
//! ```

use apspark::graph::bottleneck;
use apspark::prelude::*;

fn main() {
    // Three islands: a ring, a chain, and an isolated pair.
    let n = 14usize;
    let mut g = apspark::graph::Graph::new(n);
    for i in 0..6u32 {
        g.add_edge(i, (i + 1) % 6, 1.0); // ring 0..5
    }
    for i in 6..11u32 {
        g.add_edge(i, i + 1, 1.0); // chain 6..11
    }
    g.add_edge(12, 13, 1.0); // pair

    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let cfg = SolverConfig::new(4);

    // Blocked boolean closure on the distributed engine.
    let reach = transitive_closure(&ctx, &g, &BlockedCollectBroadcast, &cfg).expect("solve failed");
    println!("reachability matrix (Blocked-CB over the boolean semiring):");
    for i in 0..n {
        let row: String = (0..n)
            .map(|j| if reach.get(i, j) { '#' } else { '.' })
            .collect();
        println!("  {i:2}: {row}");
    }

    assert!(reach.get(0, 5), "ring is connected");
    assert!(reach.get(6, 11), "chain is connected");
    assert!(!reach.get(0, 6), "islands stay separate");
    assert!(!reach.get(11, 12));

    // Component count from the closure's distinct rows.
    let mut rows: Vec<Vec<bool>> = (0..n)
        .map(|i| (0..n).map(|j| reach.get(i, j)).collect())
        .collect();
    rows.sort();
    rows.dedup();
    println!(
        "distinct closure rows = {} connected components",
        rows.len()
    );
    assert_eq!(rows.len(), 3);

    // BFS oracle agrees on every pair; so does a second blocked solver.
    let oracle = bottleneck::reachability_bfs(&g);
    let rs = transitive_closure(&ctx, &g, &RepeatedSquaring, &cfg).expect("solve failed");
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                reach.get(i, j),
                oracle[i * n + j],
                "BFS divergence at ({i},{j})"
            );
            assert_eq!(
                reach.get(i, j),
                rs.get(i, j),
                "solver divergence at ({i},{j})"
            );
        }
    }
    println!("BFS oracle and Repeated Squaring agree on all {n}x{n} pairs");
}
