//! Boolean transitive closure / reachability through the front door:
//! the blocked Spark solvers swapped onto the *(∨, ∧)* path algebra by
//! `Problem::new(&g).workload(Workload::Reachability)`.
//!
//! The `Semiring` layer cites Katz et al. [10] for transitive closure
//! over the boolean semiring; this example runs exactly that through the
//! distributed blocked solvers — the same dataflow that solves APSP,
//! instantiated with `⊕ = ∨`, `⊗ = ∧` — and cross-checks against BFS.
//!
//! Reachability on an undirected graph is connected components: the
//! closure's rows are component indicator vectors.
//!
//! ```sh
//! cargo run --release --example reachability
//! ```

use apspark::graph::bottleneck;
use apspark::prelude::*;

fn main() {
    // Three islands: a ring, a chain, and an isolated pair.
    let n = 14usize;
    let mut g = apspark::graph::Graph::new(n);
    for i in 0..6u32 {
        g.add_edge(i, (i + 1) % 6, 1.0); // ring 0..5
    }
    for i in 6..11u32 {
        g.add_edge(i, i + 1, 1.0); // chain 6..11
    }
    g.add_edge(12, 13, 1.0); // pair

    let ctx = SparkContext::new(SparkConfig::with_cores(4));

    // The front door: boolean closure on the distributed engine, with
    // witness walks tracked.
    let sol = Problem::new(&g)
        .workload(Workload::Reachability)
        .with_paths()
        .solve(&ctx)
        .expect("solve failed");
    let reach = sol.reachability().expect("reachability solution");
    println!("reachability matrix (planned solve over the boolean semiring):");
    for i in 0..n {
        let row: String = (0..n)
            .map(|j| if reach.get(i, j) { '#' } else { '.' })
            .collect();
        println!("  {i:2}: {row}");
    }

    assert!(sol.reachable(0, 5), "ring is connected");
    assert!(sol.reachable(6, 11), "chain is connected");
    assert!(!sol.reachable(0, 6), "islands stay separate");
    assert!(!sol.reachable(11, 12));

    // A witness walk across the ring, reconstructed from the closure.
    let walk = sol.path(0, 3).expect("ring pair is connected");
    println!("one 0 -> 3 walk across the ring: {walk:?}");
    assert_eq!(walk.first(), Some(&0));
    assert_eq!(walk.last(), Some(&3));
    assert_eq!(sol.path(0, 12), None, "no walk between islands");

    // Component count from the closure's distinct rows.
    let mut rows: Vec<Vec<bool>> = (0..n)
        .map(|i| (0..n).map(|j| reach.get(i, j)).collect())
        .collect();
    rows.sort();
    rows.dedup();
    println!(
        "distinct closure rows = {} connected components",
        rows.len()
    );
    assert_eq!(rows.len(), 3);

    // BFS oracle agrees on every pair; so does a second blocked solver
    // through the expert layer.
    let oracle = bottleneck::reachability_bfs(&g);
    let cfg = SolverConfig::new(4);
    let rs = transitive_closure(&ctx, &g, &RepeatedSquaring, &cfg).expect("solve failed");
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                reach.get(i, j),
                oracle[i * n + j],
                "BFS divergence at ({i},{j})"
            );
            assert_eq!(
                reach.get(i, j),
                rs.get(i, j),
                "solver divergence at ({i},{j})"
            );
        }
    }
    println!("BFS oracle and Repeated Squaring agree on all {n}x{n} pairs");
}
