//! `apspark` — command-line front end.
//!
//! ```text
//! apspark generate --n 256 [--directed] [--seed S] --output graph.txt
//! apspark solve    --input graph.txt [--directed] [--solver cb|im|fw2d|rs|cartesian|johnson|mpi-fw2d|mpi-dc|hierarchical]
//!                  [--auto] [--path SRC DST] [--store DIR] [--block-size B] [--cores C] [--output dists.txt]
//! apspark query    --store DIR [--dist U V | --path U V | --k-nearest U K | --submatrix R0 R1 C0 C1]
//!                  [--cache-mb M] [--stats]
//! apspark serve    [--store DIR] [--port P] [--workers W] [--queue-depth Q]
//!                  [--cache-mb M] [--cores C] [--work-dir DIR] [--stats]
//! apspark finalize --checkpoint-dir DIR --store DIR
//! apspark project  --n 262144 [--cores 1024] [--solver cb] [--block-size B]
//! ```
//!
//! `solve --auto` routes through the query planner (`core::plan`): the
//! solver and block size are chosen by the capability rules and the
//! cluster model, and the `Plan::explain()` report is printed. `solve
//! --path SRC DST` additionally tracks witness paths and prints the
//! reconstructed route. `solve --store DIR` persists the solved closure
//! as a committed on-disk store that `query` answers from a fresh
//! process — blocks load lazily through an LRU cache, so point queries
//! never materialize the full matrix. `finalize` converts a *finished*
//! checkpoint directory into a store without re-solving.
//!
//! `serve` keeps a store (and any solutions solved in-process) warm
//! behind an HTTP endpoint: point queries (`GET /dist`, `/path`,
//! `/k-nearest`, `/submatrix`, `/reachable`) answer synchronously
//! through the *same* handler layer `query` uses, and full solves run
//! as jobs on a bounded queue (`POST /solve`, `GET /jobs/<id>`,
//! `DELETE /jobs/<id>`) that answers `429` when full. The server drains
//! gracefully on `quit` (or stdin EOF): running jobs checkpoint at the
//! next round barrier and are reported as resumable.

use apspark::cluster::{project, ClusterSpec, KernelRates, SolverKind, SparkOverheads, Workload};
use apspark::core::serve::{answer_query, render_text, QueryRequest, ServeConfig, Server};
use apspark::core::{directed::DirectedBlockedCB, tuner, DistributedJohnson, MpiDcApsp, MpiFw2d};
use apspark::graph::{generators, io};
use apspark::prelude::*;
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: apspark <generate|solve|project> [flags]; --help for details");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "solve" => cmd_solve(&flags),
        "query" => cmd_query(&flags),
        "serve" => cmd_serve(&flags),
        "finalize" => cmd_finalize(&flags),
        "project" => cmd_project(&flags),
        "--help" | "-h" | "help" => {
            println!(
                "apspark — distributed APSP (ICPP'19 reproduction)\n\n\
                 generate --n N [--directed] [--seed S] --output FILE\n\
                 solve    --input FILE [--directed] [--solver NAME] [--block-size B]\n          \
                 [--auto] [--path SRC DST] [--store DIR] [--cores C] [--output FILE]\n\
                 query    --store DIR [--dist U V | --path U V | --k-nearest U K |\n          \
                 --submatrix R0 R1 C0 C1] [--cache-mb M] [--stats]\n\
                 serve    [--store DIR] [--port P] [--workers W] [--queue-depth Q]\n          \
                 [--cache-mb M] [--cores C] [--work-dir DIR] [--stats]\n\
                 finalize --checkpoint-dir DIR --store DIR\n\
                 project  --n N [--cores P] [--solver NAME] [--block-size B]\n\n\
                 solvers: cb (default), im, fw2d, rs, cartesian, johnson, mpi-fw2d, mpi-dc,\n          \
                 hierarchical (alias: sparse; planner-only, for sparse road-like graphs)\n\n\
                 --auto        let the query planner pick the solver and block size\n               \
                 (prints the Plan::explain() report; --solver becomes a preference)\n\
                 --path SRC DST  track witness paths and print the reconstructed\n               \
                 SRC -> DST route (implies the planner)\n\
                 --store DIR   persist the solved closure into DIR as a committed\n               \
                 on-disk store (implies the planner); query it later with\n               \
                 'apspark query --store DIR' — no re-solve\n\
                 --stats       print the engine counters after the solve (tasks,\n               \
                 retries, shuffles, side channel, checkpoints, resumed rounds);\n               \
                 on 'query', print the store cache counters instead\n\
                 --cache-mb M  bound the query block cache at M MiB (default 64)\n\
                 --checkpoint-dir DIR   snapshot the solve round-by-round into DIR\n\
                 --checkpoint-every K   snapshot every K rounds (default 1)\n\
                 --resume      restore the latest committed round from\n               \
                 --checkpoint-dir and continue from there"
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{a}'"));
        };
        match key {
            "directed" | "auto" | "stats" | "resume" => {
                out.insert(key.into(), "true".into());
            }
            "path" => {
                let src = it.next().ok_or("--path needs SRC and DST")?;
                let dst = it.next().ok_or("--path needs SRC and DST")?;
                out.insert("path-src".into(), src.clone());
                out.insert("path-dst".into(), dst.clone());
            }
            "dist" => {
                let src = it.next().ok_or("--dist needs U and V")?;
                let dst = it.next().ok_or("--dist needs U and V")?;
                out.insert("dist-src".into(), src.clone());
                out.insert("dist-dst".into(), dst.clone());
            }
            "k-nearest" => {
                let src = it.next().ok_or("--k-nearest needs U and K")?;
                let k = it.next().ok_or("--k-nearest needs U and K")?;
                out.insert("knear-src".into(), src.clone());
                out.insert("knear-k".into(), k.clone());
            }
            "submatrix" => {
                for slot in ["sub-r0", "sub-r1", "sub-c0", "sub-c1"] {
                    let v = it.next().ok_or("--submatrix needs R0 R1 C0 C1")?;
                    out.insert(slot.into(), v.clone());
                }
            }
            _ => {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                out.insert(key.into(), v.clone());
            }
        }
    }
    Ok(out)
}

fn get_usize(flags: &HashMap<String, String>, key: &str) -> Result<Option<usize>, String> {
    flags
        .get(key)
        .map(|v| v.parse::<usize>().map_err(|e| format!("--{key}: {e}")))
        .transpose()
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let n = get_usize(flags, "n")?.ok_or("--n is required")?;
    let seed = get_usize(flags, "seed")?.unwrap_or(42) as u64;
    let output = flags.get("output").ok_or("--output is required")?;
    if flags.contains_key("directed") {
        let p = generators::paper_edge_probability(n, 0.1);
        let g = generators::erdos_renyi_directed(n, p, seed);
        io::save_digraph(&g, output).map_err(|e| e.to_string())?;
        println!(
            "wrote directed G({n}, {p:.5}) with {} arcs to {output}",
            g.num_arcs()
        );
    } else {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        io::save_graph(&g, output).map_err(|e| e.to_string())?;
        println!("wrote G({n}) with {} edges to {output}", g.num_edges());
    }
    Ok(())
}

fn write_distances(m: &apspark::blockmat::Matrix, output: Option<&String>) -> Result<(), String> {
    let Some(path) = output else {
        let n = m.order();
        println!("distance matrix {n}×{n}; d(0, n-1) = {}", m.get(0, n - 1));
        return Ok(());
    };
    let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut w = std::io::BufWriter::new(f);
    let n = m.order();
    for i in 0..n {
        let row: Vec<String> = (0..n)
            .map(|j| {
                let v = m.get(i, j);
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "inf".into()
                }
            })
            .collect();
        writeln!(w, "{}", row.join(" ")).map_err(|e| e.to_string())?;
    }
    println!("wrote {n}×{n} distance matrix to {path}");
    Ok(())
}

/// `--checkpoint-dir` / `--checkpoint-every` / `--resume` → a
/// [`CheckpointSpec`], or an error when the flags are inconsistent.
fn checkpoint_spec(flags: &HashMap<String, String>) -> Result<Option<CheckpointSpec>, String> {
    let every = get_usize(flags, "checkpoint-every")?;
    let resume = flags.contains_key("resume");
    let Some(dir) = flags.get("checkpoint-dir") else {
        if every.is_some() || resume {
            return Err("--checkpoint-every/--resume require --checkpoint-dir".into());
        }
        return Ok(None);
    };
    let mut spec = CheckpointSpec::every(dir, every.unwrap_or(1).max(1));
    if resume {
        spec = spec.and_resume();
    }
    Ok(Some(spec))
}

/// `--stats`: the engine counters attributable to the solve, including
/// the resilience counters (retries, checkpoints, resumed rounds).
fn print_stats(m: &apspark::sparklet::MetricsSnapshot) {
    println!(
        "stats: {} tasks ({} retried), {} shuffles ({:.1} MB), \
         side channel {} writes / {} reads ({:.1} / {:.1} MB)",
        m.tasks,
        m.task_retries,
        m.shuffles,
        m.shuffle_bytes as f64 / 1e6,
        m.side_channel_writes,
        m.side_channel_reads,
        m.side_channel_bytes_written as f64 / 1e6,
        m.side_channel_bytes_read as f64 / 1e6,
    );
    println!(
        "       {} checkpoints written ({:.1} MB), {} rounds resumed",
        m.checkpoints_written,
        m.checkpoint_bytes as f64 / 1e6,
        m.rounds_resumed,
    );
    // The service counters only exist once a server has run; keep the
    // solve/query output unchanged when they are all zero.
    if m.requests_served + m.jobs_queued + m.jobs_rejected + m.jobs_cancelled > 0 {
        println!(
            "       service: {} requests served; jobs: {} queued (peak depth {}), \
             {} rejected, {} cancelled",
            m.requests_served, m.jobs_queued, m.queue_depth_peak, m.jobs_rejected, m.jobs_cancelled,
        );
    }
}

fn solver_id(name: &str) -> Result<SolverId, String> {
    // The same name table the service's POST /solve body uses, so the
    // CLI and HTTP spellings cannot drift.
    apspark::core::solver_by_name(name).ok_or_else(|| format!("unknown solver '{name}'"))
}

/// The planner-backed solve route (`--auto` and/or `--path SRC DST`).
fn cmd_solve_planned(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("--input is required")?;
    let cores = get_usize(flags, "cores")?
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));
    let directed = flags.contains_key("directed");
    let path_query = match (get_usize(flags, "path-src")?, get_usize(flags, "path-dst")?) {
        (Some(s), Some(d)) => Some((s, d)),
        _ => None,
    };

    let (graph, digraph);
    let mut problem = if directed {
        digraph = io::load_digraph(input).map_err(|e| e.to_string())?;
        Problem::from_digraph(&digraph)
    } else {
        graph = io::load_graph(input).map_err(|e| e.to_string())?;
        Problem::new(&graph)
    };
    problem = problem.cores(cores);
    if let Some(name) = flags.get("solver") {
        problem = problem.prefer(solver_id(name)?);
    }
    if let Some(b) = get_usize(flags, "block-size")? {
        problem = problem.block_size(b);
    }
    if let Some((src, dst)) = path_query {
        let n = problem.order();
        if src >= n || dst >= n {
            return Err(format!("--path endpoints must be < n = {n}"));
        }
        problem = problem.with_paths();
    }
    if let Some(spec) = checkpoint_spec(flags)? {
        problem = problem.checkpoint(spec);
    }
    if let Some(dir) = flags.get("store") {
        problem = problem.store(dir);
    }

    let ctx = SparkContext::new(SparkConfig::with_cores(cores));
    let plan = problem.plan(&ctx).map_err(|e| e.to_string())?;
    print!("{}", plan.explain());
    let start = std::time::Instant::now();
    let sol = problem.execute(&ctx, plan).map_err(|e| e.to_string())?;
    println!("solved in {:.3}s", start.elapsed().as_secs_f64());
    if flags.contains_key("stats") {
        print_stats(&sol.metrics);
    }
    if let Some(dir) = flags.get("store") {
        println!("saved closure store to {dir} (open with 'apspark query --store {dir}')");
    }

    if let Some((src, dst)) = path_query {
        match sol.path(src, dst) {
            Some(route) => {
                let hops: Vec<String> = route.iter().map(|v| v.to_string()).collect();
                println!(
                    "route {src} -> {dst}: distance {}, {} hops: {}",
                    sol.dist(src, dst).expect("reachable pair has a distance"),
                    route.len() - 1,
                    hops.join(" -> ")
                );
            }
            None => println!("no route from {src} to {dst}"),
        }
    }
    if flags.contains_key("output") {
        let distances = sol.distances().expect("shortest-paths solution");
        write_distances(distances, flags.get("output"))?;
    }
    Ok(())
}

fn cmd_solve(flags: &HashMap<String, String>) -> Result<(), String> {
    let solver_name = flags.get("solver").map(String::as_str).unwrap_or("cb");
    // The hierarchical solver partitions the edge list and serves point
    // queries lazily — it only runs through the planner.
    if flags.contains_key("auto")
        || flags.contains_key("path-src")
        || flags.contains_key("store")
        || matches!(solver_name, "hierarchical" | "sparse")
    {
        return cmd_solve_planned(flags);
    }
    let input = flags.get("input").ok_or("--input is required")?;
    let cores = get_usize(flags, "cores")?
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));
    let directed = flags.contains_key("directed");

    let adj = if directed {
        io::load_digraph(input)
            .map_err(|e| e.to_string())?
            .to_dense()
    } else {
        io::load_graph(input).map_err(|e| e.to_string())?.to_dense()
    };
    let n = adj.order();
    let b = get_usize(flags, "block-size")?
        .unwrap_or_else(|| tuner::suggest_block_size(n, cores, 2).min(n));
    let ckpt = checkpoint_spec(flags)?;
    if ckpt.is_some() && (directed || !matches!(solver_name, "cb" | "im" | "fw2d" | "rs")) {
        return Err(format!(
            "--checkpoint-dir supports the engine-backed undirected solvers \
             (cb, im, fw2d, rs), not '{solver_name}'{}",
            if directed { " with --directed" } else { "" }
        ));
    }
    println!("solving n = {n} with {solver_name}, b = {b}, {cores} cores");

    let start = std::time::Instant::now();
    let distances = match (solver_name, directed) {
        ("mpi-fw2d", _) => {
            let grid = (cores as f64).sqrt().floor().max(1.0) as usize;
            MpiFw2d::new(grid)
                .solve_matrix(&adj)
                .map_err(|e| e.to_string())?
                .distances
        }
        ("mpi-dc", _) => {
            MpiDcApsp::new(cores)
                .solve_matrix(&adj)
                .map_err(|e| e.to_string())?
                .distances
        }
        (_, true) => {
            if solver_name != "cb" {
                return Err(format!(
                    "--directed currently supports the cb solver (got '{solver_name}')"
                ));
            }
            let ctx = SparkContext::new(SparkConfig::with_cores(cores));
            DirectedBlockedCB
                .solve(&ctx, &adj, &SolverConfig::new(b))
                .map_err(|e| e.to_string())?
                .into_distances()
        }
        (name, false) => {
            let solver: Box<dyn ApspSolver> = match name {
                "cb" => Box::new(BlockedCollectBroadcast),
                "im" => Box::new(BlockedInMemory),
                "fw2d" => Box::new(FloydWarshall2D),
                "rs" => Box::new(RepeatedSquaring),
                "cartesian" => Box::new(apspark::core::CartesianSquaring),
                "johnson" => Box::new(DistributedJohnson),
                other => return Err(format!("unknown solver '{other}'")),
            };
            let ctx = SparkContext::new(SparkConfig::with_cores(cores));
            let mut cfg = SolverConfig::new(b);
            if let Some(spec) = ckpt {
                cfg = cfg.with_checkpoints(spec);
            }
            let res = solver.solve(&ctx, &adj, &cfg).map_err(|e| e.to_string())?;
            if flags.contains_key("stats") {
                print_stats(&res.metrics);
            }
            println!(
                "iterations = {}, shuffles = {}, shuffle MB = {:.1}, side-channel MB = {:.1}",
                res.iterations,
                res.metrics.shuffles,
                res.metrics.shuffle_bytes as f64 / 1e6,
                (res.metrics.side_channel_bytes_written + res.metrics.side_channel_bytes_read)
                    as f64
                    / 1e6
            );
            res.into_distances()
        }
    };
    println!("solved in {:.3}s", start.elapsed().as_secs_f64());
    write_distances(&distances, flags.get("output"))
}

/// `apspark query`: point queries against a committed closure store,
/// from a fresh process — no solve, no full-matrix load.
fn cmd_query(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = flags.get("store").ok_or("--store is required")?;
    let budget = match get_usize(flags, "cache-mb")? {
        Some(mb) => (mb.max(1) as u64) << 20,
        None => DEFAULT_STORE_CACHE_BUDGET,
    };
    let sol = Solution::open_with_cache_budget(dir, budget).map_err(|e| e.to_string())?;
    println!(
        "opened {} store at {dir}: n = {}, b = {}, solver {}, paths {}",
        sol.workload().label(),
        sol.order(),
        sol.plan.block_size,
        sol.plan.solver.name(),
        if sol.plan.paths { "tracked" } else { "off" },
    );

    // Build the requested queries and answer them through the same
    // handler layer the HTTP server routes through (`serve::answer_query`
    // + `serve::render_text`), so CLI and service semantics cannot drift.
    let mut queries = Vec::new();
    if let (Some(src), Some(dst)) = (get_usize(flags, "dist-src")?, get_usize(flags, "dist-dst")?) {
        queries.push(QueryRequest::Dist { src, dst });
    }
    if let (Some(src), Some(dst)) = (get_usize(flags, "path-src")?, get_usize(flags, "path-dst")?) {
        queries.push(QueryRequest::Path { src, dst });
    }
    if let (Some(src), Some(k)) = (get_usize(flags, "knear-src")?, get_usize(flags, "knear-k")?) {
        queries.push(QueryRequest::KNearest { src, k });
    }
    if let (Some(r0), Some(r1), Some(c0), Some(c1)) = (
        get_usize(flags, "sub-r0")?,
        get_usize(flags, "sub-r1")?,
        get_usize(flags, "sub-c0")?,
        get_usize(flags, "sub-c1")?,
    ) {
        queries.push(QueryRequest::Submatrix { r0, r1, c0, c1 });
    }
    for req in &queries {
        let ans = answer_query(&sol, req).map_err(|e| e.to_string())?;
        println!("{}", render_text(req, &ans));
    }
    if flags.contains_key("stats") {
        if let Some(store) = sol.store() {
            let m = store.metrics();
            println!(
                "store cache: {} hits, {} misses, {} evictions; {} blocks read \
                 ({:.1} MB) under a {:.1} MB budget",
                m.store_cache_hits,
                m.store_cache_misses,
                m.store_cache_evictions,
                m.store_blocks_read,
                m.store_bytes_read as f64 / 1e6,
                store.cache_budget_bytes() as f64 / 1e6,
            );
        }
    }
    Ok(())
}

/// `apspark serve`: the HTTP query server. Runs until stdin says `quit`
/// (or closes), then drains gracefully: running solve jobs checkpoint at
/// the next round barrier and are reported as resumable.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut config = ServeConfig {
        port: get_usize(flags, "port")?
            .map(|p| u16::try_from(p).map_err(|_| format!("--port {p} does not fit a TCP port")))
            .transpose()?
            .unwrap_or(0),
        ..ServeConfig::default()
    };
    if let Some(w) = get_usize(flags, "workers")? {
        config.workers = w.max(1);
    }
    if let Some(q) = get_usize(flags, "queue-depth")? {
        config.queue_depth = q.max(1);
    }
    if let Some(c) = get_usize(flags, "cores")? {
        config.cores = c.max(1);
    }
    if let Some(mb) = get_usize(flags, "cache-mb")? {
        config.cache_budget_bytes = (mb.max(1) as u64) << 20;
    }
    config.store = flags.get("store").map(Into::into);
    config.work_dir = flags.get("work-dir").map(Into::into);

    let handle = Server::start(config.clone()).map_err(|e| e.to_string())?;
    if let Some(dir) = &config.store {
        if let Some(sol) = handle.default_solution() {
            println!(
                "mounted {} store at {}: n = {}",
                sol.workload().label(),
                dir.display(),
                sol.order()
            );
        }
    }
    println!(
        "serving on http://{} ({} workers, queue depth {}); \
         GET /health /metrics /dist /path /k-nearest /submatrix /reachable, \
         POST /solve, GET|DELETE /jobs/<id>",
        handle.addr(),
        config.workers,
        config.queue_depth,
    );
    println!("type 'quit' (or close stdin) to drain and shut down");

    // Block on stdin: any of quit/stop/shutdown — or EOF, so piped and
    // supervised deployments can end the server by closing the pipe.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => match line.trim() {
                "quit" | "stop" | "shutdown" | "exit" => break,
                "" => {}
                other => println!("unknown command '{other}' (try 'quit')"),
            },
        }
    }

    println!("draining: new requests get 503; running jobs checkpoint, then cancel");
    let report = handle.shutdown();
    println!("served {} requests", report.requests_served);
    for job in &report.interrupted {
        println!(
            "job {} checkpointed to {} — resume with POST /solve {{\"resume_from\": \"{}\"}}",
            job.id,
            job.checkpoint_dir.display(),
            job.checkpoint_dir.display(),
        );
    }
    if flags.contains_key("stats") {
        print_stats(&report.metrics);
    }
    Ok(())
}

/// `apspark finalize`: converts a finished checkpoint directory into a
/// committed closure store without re-solving.
fn cmd_finalize(flags: &HashMap<String, String>) -> Result<(), String> {
    let ckpt = flags
        .get("checkpoint-dir")
        .ok_or("--checkpoint-dir is required")?;
    let store = flags.get("store").ok_or("--store is required")?;
    finalize_checkpoint(ckpt, store).map_err(|e| e.to_string())?;
    println!(
        "finalized checkpoint {ckpt} into store {store} \
         (open with 'apspark query --store {store}')"
    );
    Ok(())
}

fn cmd_project(flags: &HashMap<String, String>) -> Result<(), String> {
    let n = get_usize(flags, "n")?.ok_or("--n is required")?;
    let cores = get_usize(flags, "cores")?.unwrap_or(1024);
    let solver = match flags.get("solver").map(String::as_str).unwrap_or("cb") {
        "cb" => SolverKind::BlockedCollectBroadcast,
        "im" => SolverKind::BlockedInMemory,
        "fw2d" => SolverKind::FloydWarshall2D,
        "rs" => SolverKind::RepeatedSquaring,
        "mpi-fw2d" => SolverKind::MpiFw2d,
        "mpi-dc" => SolverKind::MpiDc,
        other => return Err(format!("unknown solver '{other}'")),
    };
    let spec = ClusterSpec::paper_cluster_with_cores(cores);
    let rates = KernelRates::paper();
    let ov = SparkOverheads::default();
    let b = match get_usize(flags, "block-size")? {
        Some(b) => b,
        None => tuner::tune_with_model(solver, n, &spec, &rates, &ov, &tuner::paper_candidates())
            .map(|(b, _)| b)
            .unwrap_or(1024),
    };
    let w = Workload::paper_default(n, b);
    let p = project(solver, &w, &spec, &rates, &ov);
    println!(
        "{} on n = {n}, p = {cores}, b = {b}: {} iterations × {:.1}s = {:.1}h ({:?})",
        solver.label(),
        p.iterations,
        p.single_iteration_s,
        p.total_s / 3600.0,
        p.feasibility
    );
    println!(
        "per-iteration: compute {:.1}s, driver {:.1}s, shuffle {:.1}s, storage {:.1}s, overhead {:.1}s",
        p.breakdown.compute_s,
        p.breakdown.driver_s,
        p.breakdown.shuffle_s,
        p.breakdown.storage_s,
        p.breakdown.overhead_s
    );
    Ok(())
}
