//! # apspark — All-Pairs Shortest-Paths in the Spark dataflow model, in Rust
//!
//! Facade crate re-exporting the whole workspace. See `README.md` for a
//! tour, `DESIGN.md` for the architecture, and `EXPERIMENTS.md` for the
//! paper-reproduction results.
//!
//! The workspace reproduces *Schoeneman & Zola, "Solving All-Pairs
//! Shortest-Paths Problem in Large Graphs Using Apache Spark"* (ICPP 2019):
//!
//! * [`blockmat`] — dense block kernels over pluggable path algebras,
//! * [`graph`] — inputs and sequential oracles,
//! * [`sparklet`] — the miniature Spark engine the solvers run on,
//! * [`mpilite`] — the MPI-like substrate for the baselines,
//! * [`cluster`] — the paper-testbed cost model and projections,
//! * [`core`] — the solvers **and the query planner front door**.
//!
//! ## Quickstart: one front door
//!
//! The headline API is the `Problem → Plan → Solution` pipeline
//! ([`core::plan`]): describe *what* you want solved and the planner
//! picks the solver, block size, kernel tier, and partitioner for you —
//! the paper's §5 tuning lessons, mechanized.
//!
//! ```
//! use apspark::prelude::*;
//!
//! // A small random graph in the paper's benchmark family.
//! let g = apspark::graph::generators::erdos_renyi_paper(256, 0.1, 42);
//! let ctx = SparkContext::new(SparkConfig::with_cores(4));
//!
//! // Plan + solve in one call; ask for witness paths too.
//! let sol = Problem::new(&g).with_paths().solve(&ctx).unwrap();
//! println!("{}", sol.plan.explain()); // why this solver and block size
//!
//! // Point queries against the unified Solution.
//! let d = sol.dist(0, 255);
//! assert_eq!(d.is_some(), sol.reachable(0, 255));
//! if let Some(route) = sol.path(0, 255) {
//!     assert_eq!(route.first(), Some(&0));
//! }
//!
//! // The same front door runs the (max, min) and boolean workloads:
//! let widest = Problem::new(&g).workload(Workload::Widest).solve(&ctx).unwrap();
//! let reach = Problem::new(&g).workload(Workload::Reachability).solve(&ctx).unwrap();
//! assert_eq!(widest.width(0, 255).is_some(), reach.reachable(0, 255));
//! ```
//!
//! ## Expert layer
//!
//! The planner compiles down to the explicit solver surface, which stays
//! public for ablations and benchmarks — a plan-executed solve is
//! bit-exact with the explicitly-configured solver it selected:
//!
//! ```
//! use apspark::prelude::*;
//!
//! let g = apspark::graph::generators::erdos_renyi_paper(96, 0.1, 7);
//! let ctx = SparkContext::new(SparkConfig::with_cores(4));
//! let cfg = SolverConfig::new(32).with_partitions(8);
//! let result = BlockedCollectBroadcast::default()
//!     .solve(&ctx, &g.to_dense(), &cfg)
//!     .unwrap();
//! let oracle = apspark::graph::floyd_warshall(&g);
//! assert!(result.distances().approx_eq(&oracle, 1e-9).is_ok());
//! ```

pub use apsp_blockmat as blockmat;
pub use apsp_cluster as cluster;
pub use apsp_core as core;
pub use apsp_graph as graph;
pub use mpilite;
pub use sparklet;

/// Convenience prelude with the most common entry points: the
/// `Problem → Plan → Solution` front door first, the expert solver layer
/// beneath it.
pub mod prelude {
    pub use apsp_blockmat::{Block, Matrix, PathAlgebra, INF};
    pub use apsp_core::algebra::{transitive_closure, widest_paths, AlgebraSolver};
    pub use apsp_core::plan::{
        Plan, PlanNote, Problem, ResourceHints, Solution, SolverCaps, SolverId, Workload,
    };
    pub use apsp_core::{
        finalize_checkpoint, ApspResult, ApspSolver, BlockedCollectBroadcast, BlockedInMemory,
        CheckpointPolicy, CheckpointSignal, CheckpointSpec, ClosureStore, DistancesAndParents,
        FloydWarshall2D, ParentMatrix, RepeatedSquaring, SolverConfig, DEFAULT_STORE_CACHE_BUDGET,
    };
    pub use apsp_graph::Graph;
    pub use sparklet::{SparkConfig, SparkContext};
}
