//! # apspark — All-Pairs Shortest-Paths in the Spark dataflow model, in Rust
//!
//! Facade crate re-exporting the whole workspace. See `README.md` for a
//! tour, `DESIGN.md` for the architecture, and `EXPERIMENTS.md` for the
//! paper-reproduction results.
//!
//! The workspace reproduces *Schoeneman & Zola, "Solving All-Pairs
//! Shortest-Paths Problem in Large Graphs Using Apache Spark"* (ICPP 2019):
//!
//! * [`blockmat`] — dense (min,+) block kernels,
//! * [`graph`] — inputs and sequential oracles,
//! * [`sparklet`] — the miniature Spark engine the solvers run on,
//! * [`mpilite`] — the MPI-like substrate for the baselines,
//! * [`cluster`] — the paper-testbed cost model and projections,
//! * [`core`] — the four Spark APSP solvers and two MPI baselines.
//!
//! ## Quickstart
//!
//! ```
//! use apspark::prelude::*;
//!
//! // A small random graph in the paper's benchmark family.
//! let g = apspark::graph::generators::erdos_renyi_paper(256, 0.1, 42);
//!
//! // Solve with the best solver (Blocked Collect/Broadcast) on 4 cores.
//! let ctx = SparkContext::new(SparkConfig::with_cores(4));
//! let cfg = SolverConfig::new(64).with_partitions(8);
//! let result = BlockedCollectBroadcast::default()
//!     .solve(&ctx, &g.to_dense(), &cfg)
//!     .unwrap();
//!
//! // Cross-check against the sequential oracle.
//! let oracle = apspark::graph::floyd_warshall(&g);
//! assert!(result.distances().approx_eq(&oracle, 1e-9).is_ok());
//! ```

pub use apsp_blockmat as blockmat;
pub use apsp_cluster as cluster;
pub use apsp_core as core;
pub use apsp_graph as graph;
pub use mpilite;
pub use sparklet;

/// Convenience prelude with the most common entry points.
pub mod prelude {
    pub use apsp_blockmat::{Block, Matrix, PathAlgebra, INF};
    pub use apsp_core::algebra::{transitive_closure, widest_paths, AlgebraSolver};
    pub use apsp_core::{
        ApspResult, ApspSolver, BlockedCollectBroadcast, BlockedInMemory, DistancesAndParents,
        FloydWarshall2D, ParentMatrix, RepeatedSquaring, SolverConfig,
    };
    pub use apsp_graph::Graph;
    pub use sparklet::{SparkConfig, SparkContext};
}
