//! Fault-tolerance semantics across crates: the paper's pure/impure
//! distinction (§3) as executable behaviour.

use apspark::graph::generators;
use apspark::prelude::*;
use apspark::sparklet::SparkError;

fn instance() -> (apspark::blockmat::Matrix, apspark::blockmat::Matrix) {
    let g = generators::erdos_renyi_paper(48, 0.1, 0xFA11);
    (g.to_dense(), apspark::graph::floyd_warshall(&g))
}

#[test]
fn pure_im_recovers_from_injected_failures() {
    let (adj, oracle) = instance();
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    // Spread injections across iterations: failures on the same narrow
    // chain count against one task's retry budget (as in Spark), so keep
    // fewer consecutive ids than `max_task_attempts`.
    for rdd in [2usize, 15, 40] {
        ctx.inject_task_failure(rdd, 0);
        ctx.inject_task_failure(rdd, 1);
    }
    let res = BlockedInMemory
        .solve(&ctx, &adj, &SolverConfig::new(12))
        .expect("pure solver must recover");
    assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
    assert!(res.metrics.task_retries > 0);
}

#[test]
fn pure_fw2d_recovers_from_injected_failures() {
    let (adj, oracle) = instance();
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    for rdd in [3usize, 20, 37, 55] {
        ctx.inject_task_failure(rdd, 0);
    }
    let res = FloydWarshall2D
        .solve(&ctx, &adj, &SolverConfig::new(12))
        .expect("pure solver must recover");
    assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
    assert!(res.metrics.task_retries > 0);
}

#[test]
fn impure_cb_fails_when_storage_lost() {
    let (adj, _) = instance();
    let ctx = SparkContext::new(SparkConfig::with_cores(2));
    ctx.side_channel().set_available(false);
    let err = BlockedCollectBroadcast
        .solve(&ctx, &adj, &SolverConfig::new(12))
        .expect_err("CB cannot run without shared storage");
    // Exhausted retries wrap the cause in task context; the root cause
    // stays reachable through `SparkError::root`.
    assert!(
        matches!(
            &err,
            apspark::core::ApspError::Engine(e)
                if matches!(e.root(), SparkError::SideChannelMiss { .. })
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn impure_rs_fails_when_storage_lost() {
    let (adj, _) = instance();
    let ctx = SparkContext::new(SparkConfig::with_cores(2));
    ctx.side_channel().set_available(false);
    let err = RepeatedSquaring
        .solve(&ctx, &adj, &SolverConfig::new(12))
        .expect_err("RS cannot run without shared storage");
    assert!(matches!(
        &err,
        apspark::core::ApspError::Engine(e)
            if matches!(e.root(), SparkError::SideChannelMiss { .. })
    ));
}

#[test]
fn impure_solvers_succeed_with_storage_restored() {
    // Sanity for the two tests above: the same configs succeed once the
    // storage is back — the *only* difference was availability.
    let (adj, oracle) = instance();
    let ctx = SparkContext::new(SparkConfig::with_cores(2));
    ctx.side_channel().set_available(false);
    ctx.side_channel().set_available(true);
    for solver in [
        Box::new(BlockedCollectBroadcast) as Box<dyn ApspSolver>,
        Box::new(RepeatedSquaring),
    ] {
        let res = solver.solve(&ctx, &adj, &SolverConfig::new(12)).unwrap();
        assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
    }
}

#[test]
fn retry_budget_is_respected() {
    // A task that fails more times than the budget fails the job.
    let (adj, _) = instance();
    let ctx = SparkContext::new(SparkConfig::with_cores(2).max_task_attempts(2));
    // Saturate one early task with more failures than attempts.
    for _ in 0..5 {
        ctx.inject_task_failure(0, 0);
    }
    let out = BlockedInMemory.solve(&ctx, &adj, &SolverConfig::new(12));
    assert!(
        matches!(
            &out,
            Err(apspark::core::ApspError::Engine(e))
                if matches!(e.root(), SparkError::InjectedFailure { .. })
                    && matches!(e, SparkError::TaskFailed { .. })
        ),
        "expected exhausted retries wrapped in task context, got {out:?}"
    );
}
