//! Solver-level chaos harness: every engine-backed solver × every
//! workload, driven through deterministic seeded failure schedules
//! (task failures, transient side-channel reads, lost keys, corrupted
//! blocks), must either recover **bit-exactly** or fail with a clean
//! typed [`ApspError`] — never a panic, never a wrong answer.
//!
//! The schedule is deterministic in `(seed, fault site, occurrence)`
//! (see `sparklet::chaos`), so CI replays exact schedules by seed:
//! `CHAOS_SEED=7 cargo test --test chaos`.

use apspark::core::ApspError;
use apspark::graph::generators;
use apspark::prelude::*;
use apspark::sparklet::ChaosConfig;

const SOLVERS: [SolverId; 4] = [
    SolverId::BlockedCollectBroadcast,
    SolverId::BlockedInMemory,
    SolverId::FloydWarshall2D,
    SolverId::RepeatedSquaring,
];

const WORKLOADS: [Workload; 3] = [
    Workload::ShortestPaths,
    Workload::Widest,
    Workload::Reachability,
];

/// Seeds driven by the harness. `CHAOS_SEED` pins a single seed (the CI
/// chaos job fans out over several); the default set keeps local runs
/// fast while still crossing schedules.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        return vec![s.parse().expect("CHAOS_SEED must be a u64")];
    }
    vec![0xC0FFEE, 7]
}

fn ctx(cores: usize) -> SparkContext {
    // No backoff sleeps: chaos runs retry a lot by design.
    SparkContext::new(SparkConfig::with_cores(cores).retry_backoff_ms(0))
}

fn solve(
    g: &Graph,
    solver: SolverId,
    w: Workload,
    context: &SparkContext,
) -> Result<Solution, ApspError> {
    Problem::new(g)
        .workload(w)
        .prefer(solver)
        .block_size(12)
        .solve(context)
}

/// Bit-exact equality across every value kind a [`Solution`] can carry.
fn assert_bit_exact(got: &Solution, want: &Solution, label: &str) {
    assert!(
        got.distances() == want.distances(),
        "{label}: distances diverged after recovery"
    );
    assert!(
        got.widths() == want.widths(),
        "{label}: widths diverged after recovery"
    );
    assert!(
        got.reachability() == want.reachability(),
        "{label}: reachability diverged after recovery"
    );
    assert!(
        got.parents() == want.parents(),
        "{label}: parents diverged after recovery"
    );
}

/// Every solver × workload under a schedule of task failures and
/// transient side-channel faults: recovery must be bit-exact, failure
/// must be a typed error.
#[test]
fn chaos_task_and_transient_faults_recover_bit_exact_or_fail_typed() {
    let g = generators::erdos_renyi_paper(48, 0.1, 0xCA05);
    for w in WORKLOADS {
        for solver in SOLVERS {
            // Bit-exactness only holds within one solver (each has its
            // own floating-point reduction order), so the clean
            // reference is per solver × workload.
            let clean = solve(&g, solver, w, &ctx(4)).expect("clean reference solve");
            for seed in seeds() {
                let context = ctx(4);
                context.install_chaos(
                    ChaosConfig::new(seed ^ solver as u64)
                        .task_failures(0.03)
                        .transient_reads(0.05),
                );
                let label = format!("{solver:?}/{w:?}/seed {seed}");
                match solve(&g, solver, w, &context) {
                    Ok(sol) => assert_bit_exact(&sol, &clean, &label),
                    // Exhausted budgets are legal; panics are not. The
                    // error must render (Display exercises the context
                    // chain) and carry a reachable root cause.
                    Err(ApspError::Engine(e)) => {
                        let _ = format!("{e} / root: {}", e.root());
                    }
                    Err(other) => panic!("{label}: unexpected error class: {other}"),
                }
            }
        }
    }
}

/// The impure solvers under the full side-channel fault palette: lost
/// keys (really deleted) and corrupted blocks (caught by checksum or
/// poison marker) can only end in bit-exact recovery or a typed error.
#[test]
fn chaos_side_channel_faults_never_corrupt_results() {
    let g = generators::erdos_renyi_paper(48, 0.1, 0xCA06);
    for w in WORKLOADS {
        for solver in [
            SolverId::BlockedCollectBroadcast,
            SolverId::RepeatedSquaring,
        ] {
            let clean = solve(&g, solver, w, &ctx(4)).expect("clean reference solve");
            for seed in seeds() {
                let context = ctx(4);
                context.install_chaos(
                    ChaosConfig::new(seed.wrapping_mul(31).wrapping_add(solver as u64))
                        .transient_reads(0.04)
                        .missing_keys(0.02)
                        .corrupt_blocks(0.02),
                );
                let label = format!("{solver:?}/{w:?}/seed {seed}");
                match solve(&g, solver, w, &context) {
                    Ok(sol) => assert_bit_exact(&sol, &clean, &label),
                    Err(ApspError::Engine(e)) => {
                        let _ = format!("{e} / root: {}", e.root());
                    }
                    Err(other) => panic!("{label}: unexpected error class: {other}"),
                }
            }
        }
    }
}

/// Same seed → same decisions: the schedule is a pure function of
/// `(seed, site, occurrence)`, so two runs of one configuration agree on
/// success/failure, and successes agree bit-for-bit.
#[test]
fn chaos_schedules_are_deterministic_per_seed() {
    let g = generators::erdos_renyi_paper(40, 0.1, 0xCA07);
    for seed in seeds() {
        let run = || {
            let context = ctx(3);
            context.install_chaos(
                ChaosConfig::new(seed)
                    .task_failures(0.05)
                    .transient_reads(0.05),
            );
            solve(
                &g,
                SolverId::BlockedCollectBroadcast,
                Workload::ShortestPaths,
                &context,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.is_ok(),
            b.is_ok(),
            "seed {seed}: outcome class diverged between identical runs"
        );
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_bit_exact(&a, &b, &format!("determinism/seed {seed}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/resume under chaos — the acceptance bar: a checkpointed
// Blocked-CB solve at side 512 with paths, killed mid-flight by an armed
// failure schedule, resumes to bit-identical distances AND parents, in
// all three workloads.
// ---------------------------------------------------------------------------

fn expect_err(res: Result<Solution, ApspError>, what: &str) -> ApspError {
    match res {
        Err(e) => e,
        Ok(_) => panic!("{what}: solve unexpectedly succeeded"),
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("apsp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Kills a checkpointed tracked Blocked-CB solve at n = 512 mid-flight
/// (first 20 side-channel reads stay clean — past round 0's barrier —
/// then every read reports the key missing), then resumes from the last
/// committed round and demands bit-identical distances and parents.
fn checkpoint_resume_512(w: Workload, tag: &str) {
    let g = generators::erdos_renyi_paper(512, 0.1, 0x512);
    let build = |dir: Option<&std::path::Path>, resume: bool| {
        let mut p = Problem::new(&g)
            .workload(w)
            .prefer(SolverId::BlockedCollectBroadcast)
            .block_size(128)
            .with_paths();
        if let Some(d) = dir {
            p = p.checkpoint_every(d, 1);
            if resume {
                p = p.resume(d);
            }
        }
        p
    };

    let clean = build(None, false)
        .solve(&ctx(4))
        .expect("uninterrupted reference solve");

    let dir = temp_dir(tag);
    let context = ctx(4);
    context.install_chaos(
        ChaosConfig::new(0xDEAD)
            .missing_keys(1.0)
            .arm_after_reads(20),
    );
    let err = expect_err(
        build(Some(&dir), false).solve(&context),
        "armed schedule must kill the solve mid-flight",
    );
    match &err {
        ApspError::Engine(e) => {
            let _ = format!("{e}");
        }
        other => panic!("interrupted solve must fail in the engine, got {other}"),
    }

    // The dying run must have committed at least one round.
    let resumed_ctx = ctx(4);
    let before = resumed_ctx.metrics();
    let resumed = build(Some(&dir), true)
        .solve(&resumed_ctx)
        .expect("resume from the last committed round");
    let delta = resumed_ctx.metrics().delta(&before);
    assert!(
        delta.rounds_resumed > 0,
        "resume must restore at least one committed round"
    );
    assert!(
        clean.metrics.checkpoints_written == 0,
        "reference solve runs without checkpoints"
    );

    assert_bit_exact(&resumed, &clean, &format!("resume/{w:?}"));
    assert!(
        resumed.parents().is_some(),
        "with_paths survives checkpoint/resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointed_cb_512_resumes_bit_exact_shortest_paths() {
    checkpoint_resume_512(Workload::ShortestPaths, "sp");
}

#[test]
fn checkpointed_cb_512_resumes_bit_exact_widest() {
    checkpoint_resume_512(Workload::Widest, "widest");
}

#[test]
fn checkpointed_cb_512_resumes_bit_exact_reachability() {
    checkpoint_resume_512(Workload::Reachability, "reach");
}

/// Checkpointing accounts its writes in the resilience counters, and a
/// full solve prunes to exactly one committed round.
#[test]
fn checkpoint_metrics_and_pruning() {
    let g = generators::erdos_renyi_paper(64, 0.1, 0xC12);
    let dir = temp_dir("metrics");
    let context = ctx(3);
    let sol = Problem::new(&g)
        .block_size(16) // q = 4 rounds
        .prefer(SolverId::BlockedCollectBroadcast)
        .checkpoint_every(&dir, 1)
        .solve(&context)
        .expect("checkpointed solve");
    assert_eq!(sol.metrics.checkpoints_written, 4, "one snapshot per round");
    assert!(sol.metrics.checkpoint_bytes > 0);
    assert_eq!(sol.metrics.rounds_resumed, 0);

    // Only the final round's manifest survives pruning.
    let manifests: Vec<String> = std::fs::read_dir(&dir)
        .expect("checkpoint dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("ckpt-meta-"))
        .collect();
    assert_eq!(manifests, vec!["ckpt-meta-3".to_string()]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming into a *different* solve (wrong solver, wrong geometry) is a
/// typed checkpoint error, not a wrong answer.
#[test]
fn resume_refuses_mismatched_geometry() {
    let g = generators::erdos_renyi_paper(64, 0.1, 0xC13);
    let dir = temp_dir("geom");
    Problem::new(&g)
        .block_size(16)
        .prefer(SolverId::BlockedCollectBroadcast)
        .checkpoint_every(&dir, 1)
        .solve(&ctx(3))
        .expect("checkpointed solve");

    // Same directory, different block size → geometry mismatch.
    let err = expect_err(
        Problem::new(&g)
            .block_size(32)
            .prefer(SolverId::BlockedCollectBroadcast)
            .resume(&dir)
            .solve(&ctx(3)),
        "mismatched geometry must be rejected",
    );
    assert!(
        matches!(&err, ApspError::Checkpoint(msg) if msg.contains("does not match")),
        "unexpected error: {err}"
    );

    // Different solver → also rejected.
    let err = expect_err(
        Problem::new(&g)
            .block_size(16)
            .prefer(SolverId::RepeatedSquaring)
            .resume(&dir)
            .solve(&ctx(3)),
        "wrong solver must be rejected",
    );
    assert!(matches!(err, ApspError::Checkpoint(_)), "got {err}");

    // An empty directory has nothing to resume.
    let empty = temp_dir("geom-empty");
    let err = expect_err(
        Problem::new(&g)
            .block_size(16)
            .prefer(SolverId::BlockedCollectBroadcast)
            .resume(&empty)
            .solve(&ctx(3)),
        "nothing committed to resume from",
    );
    assert!(
        matches!(&err, ApspError::Checkpoint(msg) if msg.contains("no committed checkpoint")),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

/// The signal-driven policy snapshots exactly when asked, and the resumed
/// solve completes bit-exactly — the cooperative "drain before eviction"
/// path.
#[test]
fn on_signal_checkpoint_resumes_bit_exact() {
    let g = generators::erdos_renyi_paper(96, 0.1, 0xC14);
    let clean = Problem::new(&g)
        .block_size(24)
        .prefer(SolverId::BlockedInMemory)
        .solve(&ctx(3))
        .expect("clean solve");

    let dir = temp_dir("signal");
    let signal = CheckpointSignal::new();
    signal.request(); // snapshot at the first round barrier
    let sol = Problem::new(&g)
        .block_size(24)
        .prefer(SolverId::BlockedInMemory)
        .checkpoint(CheckpointSpec::on_signal(&dir, signal.clone()))
        .solve(&ctx(3))
        .expect("signal-checkpointed solve");
    assert_eq!(sol.metrics.checkpoints_written, 1);
    assert!(!signal.is_requested(), "barrier consumes the request");

    let resumed = Problem::new(&g)
        .block_size(24)
        .prefer(SolverId::BlockedInMemory)
        .resume(&dir)
        .solve(&ctx(3))
        .expect("resume from the signalled snapshot");
    assert_bit_exact(&resumed, &clean, "on-signal resume");
    let _ = std::fs::remove_dir_all(&dir);
}
