//! Closure-store round-trip properties: solve → save → open must answer
//! every point query **bit-exactly** like the in-memory solution it was
//! saved from, across all three workloads, tracked and untracked, at
//! block-boundary sizes — under a cache budget small enough to force
//! eviction mid-test, so re-fetched blocks are exercised too.

use apspark::core::ApspError;
use apspark::graph::generators;
use apspark::prelude::*;

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(2))
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("apsp-store-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic LCG so "random" queries are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

/// A cache budget of ~2.5 decoded blocks: multi-block stores must evict.
/// Reachability stores decode to 1-byte cells, the f64 workloads to 8.
fn tight_budget(n: usize, workload: Workload, tracked: bool) -> u64 {
    let b = n.min(64) as u64;
    let value = if workload == Workload::Reachability {
        1
    } else {
        8
    };
    let per_block = b * b * (value + if tracked { 4 } else { 0 });
    (per_block * 5 / 2).max(1)
}

fn assert_roundtrip(n: usize, workload: Workload, tracked: bool, seed: u64) {
    let g = generators::erdos_renyi_paper(n, 0.2, seed);
    let sc = ctx();
    let mut problem = Problem::new(&g).workload(workload).block_size(64);
    if tracked {
        problem = problem.with_paths();
    }
    let mem = problem.solve(&sc).expect("solve");
    let dir = scratch(&format!("{n}-{}-{tracked}", workload.label()));
    mem.save(&dir).expect("save");

    let disk =
        Solution::open_with_cache_budget(&dir, tight_budget(n, workload, tracked)).expect("open");
    assert_eq!(disk.order(), n);
    assert_eq!(disk.workload(), workload);
    assert_eq!(disk.plan.solver, mem.plan.solver);
    assert_eq!(disk.plan.paths, tracked);

    let mut rng = Lcg(seed ^ (n as u64) << 8);
    for _ in 0..48 {
        let (u, v) = (rng.next(n), rng.next(n));
        assert_eq!(mem.dist(u, v), disk.dist(u, v), "dist({u}, {v}) at n = {n}");
        assert_eq!(mem.width(u, v), disk.width(u, v), "width({u}, {v})");
        assert_eq!(
            mem.reachable(u, v),
            disk.reachable(u, v),
            "reachable({u}, {v})"
        );
        assert_eq!(mem.path(u, v), disk.path(u, v), "path({u}, {v}) at n = {n}");
    }
    for _ in 0..3 {
        let u = rng.next(n);
        assert_eq!(mem.k_nearest(u, n), disk.k_nearest(u, n), "k_nearest({u})");
        assert_eq!(mem.k_nearest(u, 3), disk.k_nearest(u, 3));
    }
    let r0 = rng.next(n);
    let c0 = rng.next(n);
    let rows: Vec<usize> = (r0..(r0 + 4).min(n)).collect();
    let cols: Vec<usize> = (c0..(c0 + 4).min(n)).collect();
    assert_eq!(mem.submatrix(&rows, &cols), disk.submatrix(&rows, &cols));

    // Multi-block stores under the tight budget must have churned the
    // cache; the counters prove queries really stream from disk.
    let store = disk.store().expect("store-backed solution");
    let m = store.metrics();
    let q = n.div_ceil(64);
    if q > 1 {
        assert!(
            m.store_cache_evictions > 0,
            "q = {q} store under a 2.5-block budget must evict (metrics: {m:?})"
        );
        assert!(m.store_cache_hits > 0, "block reuse must hit the cache");
    }
    assert!(m.store_blocks_read > 0 && m.store_bytes_read > 0);
    assert_eq!(
        m.store_cache_misses, m.store_blocks_read,
        "every miss is one block fetch"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn assert_roundtrip_all_workloads(n: usize, seed: u64) {
    for workload in [
        Workload::ShortestPaths,
        Workload::Widest,
        Workload::Reachability,
    ] {
        for tracked in [false, true] {
            assert_roundtrip(n, workload, tracked, seed);
        }
    }
}

#[test]
fn roundtrip_single_vertex() {
    assert_roundtrip_all_workloads(1, 11);
}

#[test]
fn roundtrip_just_below_block_boundary() {
    assert_roundtrip_all_workloads(127, 12);
}

#[test]
fn roundtrip_at_block_boundary() {
    assert_roundtrip_all_workloads(128, 13);
}

#[test]
fn roundtrip_just_above_block_boundary() {
    assert_roundtrip_all_workloads(129, 14);
}

#[test]
fn finalized_checkpoint_matches_fresh_solve() {
    let g = generators::erdos_renyi_paper(24, 0.2, 21);
    let sc = ctx();
    let ckpt = scratch("fin-ckpt");
    let store = scratch("fin-store");

    // A finished solve with round-granular checkpoints leaves the final
    // round committed; finalize turns it into a store without re-solving.
    let mem = Problem::new(&g)
        .with_paths()
        .block_size(8)
        .checkpoint_every(&ckpt, 1)
        .solve(&sc)
        .expect("checkpointed solve");
    apspark::core::finalize_checkpoint(&ckpt, &store).expect("finalize");

    let disk = Solution::open(&store).expect("open finalized store");
    assert_eq!(disk.order(), 24);
    for u in 0..24 {
        for v in 0..24 {
            assert_eq!(mem.dist(u, v), disk.dist(u, v), "dist({u}, {v})");
        }
    }
    let mut rng = Lcg(77);
    for _ in 0..24 {
        let (u, v) = (rng.next(24), rng.next(24));
        assert_eq!(mem.path(u, v), disk.path(u, v), "path({u}, {v})");
    }
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn finalized_untracked_reachability_checkpoint() {
    let g = generators::erdos_renyi_paper(20, 0.15, 22);
    let sc = ctx();
    let ckpt = scratch("fin-reach-ckpt");
    let store = scratch("fin-reach-store");
    let mem = Problem::new(&g)
        .workload(Workload::Reachability)
        .block_size(8)
        .checkpoint_every(&ckpt, 1)
        .solve(&sc)
        .expect("checkpointed reachability solve");
    apspark::core::finalize_checkpoint(&ckpt, &store).expect("finalize");
    let disk = Solution::open(&store).expect("open");
    assert_eq!(disk.workload(), Workload::Reachability);
    for u in 0..20 {
        for v in 0..20 {
            assert_eq!(mem.reachable(u, v), disk.reachable(u, v));
        }
    }
    assert_eq!(
        disk.path(0, 1),
        None,
        "untracked store has no witness paths"
    );
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn finalize_refuses_mid_solve_checkpoints() {
    let err = apspark::core::finalize_checkpoint(
        std::env::temp_dir().join("apsp-no-such-ckpt-dir"),
        scratch("fin-missing"),
    )
    .expect_err("missing checkpoint dir must not finalize");
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("checkpoint")),
        "expected a typed store error naming the checkpoint, got: {err}"
    );
}

// --- negative paths: typed errors, never panics ---------------------------

#[test]
fn out_of_range_queries_are_typed_for_memory_and_store() {
    let g = generators::erdos_renyi_paper(10, 0.3, 31);
    let sc = ctx();
    let mem = Problem::new(&g).with_paths().solve(&sc).expect("solve");
    let dir = scratch("oob");
    mem.save(&dir).expect("save");
    let disk = Solution::open(&dir).expect("open");

    for sol in [&mem, &disk] {
        assert!(matches!(
            sol.try_dist(10, 0),
            Err(ApspError::InvalidInput(_))
        ));
        assert!(matches!(
            sol.try_dist(0, 99),
            Err(ApspError::InvalidInput(_))
        ));
        assert!(matches!(
            sol.try_reachable(10, 0),
            Err(ApspError::InvalidInput(_))
        ));
        assert!(matches!(
            sol.try_path(0, 10),
            Err(ApspError::InvalidInput(_))
        ));
        assert!(matches!(
            sol.try_k_nearest(10, 3),
            Err(ApspError::InvalidInput(_))
        ));
        assert!(matches!(
            sol.try_submatrix(&[0, 10], &[1]),
            Err(ApspError::InvalidInput(_))
        ));
        // The panic-free facade degrades gracefully instead.
        assert_eq!(sol.dist(10, 0), None);
        assert!(!sol.reachable(10, 0));
        assert_eq!(sol.path(0, 10), None);
        assert!(sol.k_nearest(10, 3).is_empty());
        assert!(sol.submatrix(&[0, 10], &[1]).is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_submatrix_window_is_typed() {
    let g = generators::erdos_renyi_paper(6, 0.4, 32);
    let sol = Problem::new(&g).solve(&ctx()).expect("solve");
    assert!(matches!(
        sol.try_submatrix(&[], &[0]),
        Err(ApspError::InvalidInput(_))
    ));
    assert!(matches!(
        sol.try_submatrix(&[0], &[]),
        Err(ApspError::InvalidInput(_))
    ));
    assert!(sol.submatrix(&[], &[0]).is_empty());
}

#[test]
fn saving_a_store_backed_solution_is_refused() {
    let g = generators::erdos_renyi_paper(8, 0.3, 33);
    let sol = Problem::new(&g).solve(&ctx()).expect("solve");
    let dir = scratch("resave");
    sol.save(&dir).expect("save");
    let disk = Solution::open(&dir).expect("open");
    assert!(matches!(
        disk.save(scratch("resave-2")),
        Err(ApspError::Store(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn problem_store_builder_saves_during_execute() {
    let g = generators::erdos_renyi_paper(12, 0.25, 34);
    let dir = scratch("builder");
    let sc = ctx();
    let mem = Problem::new(&g)
        .with_paths()
        .store(&dir)
        .solve(&sc)
        .expect("solve with store");
    let disk = Solution::open(&dir).expect("the solve must have committed a store");
    for u in 0..12 {
        for v in 0..12 {
            assert_eq!(mem.dist(u, v), disk.dist(u, v));
            assert_eq!(mem.path(u, v), disk.path(u, v));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
