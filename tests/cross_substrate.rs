//! Cross-substrate validation: the *simulated* runtime of the real
//! `mpilite` FW-2D implementation (α–β clock + modeled compute) must track
//! the *analytic* `apsp-cluster` projection of the same solver on the same
//! geometry. Two independently-built models agreeing is the strongest
//! check we have that neither is nonsense.

use apspark::cluster::{project, ClusterSpec, KernelRates, SolverKind, SparkOverheads, Workload};
use apspark::core::MpiFw2d;
use apspark::mpilite::CommCost;

#[test]
fn simulated_mpi_clock_tracks_analytic_model() {
    // Run the real FW-2D on a 4-rank grid over a small graph, with the
    // α–β clock *and* per-op compute advancement. Compare against the
    // analytic projection for a 4-core, GbE, same-n workload.
    let n = 96;
    let grid = 2;
    let rates = KernelRates::paper();
    let g = apspark::graph::generators::erdos_renyi_paper(n, 0.1, 0xC0DE);
    let run = MpiFw2d {
        grid,
        cost: CommCost::gbe(),
        update_sec_per_op: Some(rates.update_sec_per_op),
    }
    .solve_matrix(&g.to_dense())
    .expect("solve failed");

    // Analytic model with a matching synthetic cluster: 4 single-core
    // "nodes" on GbE (so per-rank NIC semantics match the rank mesh).
    let spec = ClusterSpec {
        nodes: 4,
        cores_per_node: 1,
        ..ClusterSpec::paper_cluster()
    };
    let w = Workload::paper_default(n, n / grid);
    let analytic = project(
        SolverKind::MpiFw2d,
        &w,
        &spec,
        &rates,
        &SparkOverheads::default(),
    );

    let simulated = run.simulated_comm_s;
    let ratio = simulated / analytic.total_s;
    assert!(
        (0.4..2.5).contains(&ratio),
        "simulated {simulated:.4}s vs analytic {:.4}s (ratio {ratio:.2}) — \
         the two independent models disagree",
        analytic.total_s
    );
}

#[test]
fn latency_bound_at_small_n_compute_bound_at_large_n() {
    // The paper's FW-2D-MPI pathology, visible in the simulated clock:
    // per-iteration α latency dominates small problems (runtime ~linear
    // in n), while the O((n/√p)²) update takes over as n grows (runtime
    // →cubic). Measure the doubling ratio at both ends.
    let rates = KernelRates::paper();
    let time_for = |n: usize| {
        let g = apspark::graph::generators::erdos_renyi_paper(n, 0.1, 1);
        MpiFw2d {
            grid: 2,
            cost: CommCost::gbe(),
            update_sec_per_op: Some(rates.update_sec_per_op),
        }
        .solve_matrix(&g.to_dense())
        .unwrap()
        .simulated_comm_s
    };
    let small_ratio = time_for(128) / time_for(64);
    assert!(
        (1.7..3.5).contains(&small_ratio),
        "small-n doubling ratio {small_ratio:.2}: expected near-linear (latency-bound)"
    );
    let large_ratio = time_for(1024) / time_for(512);
    assert!(
        large_ratio > small_ratio + 0.5,
        "large-n doubling ratio {large_ratio:.2} should exceed small-n {small_ratio:.2} \
         (compute term taking over)"
    );
    assert!(
        large_ratio > 3.5,
        "large-n doubling ratio {large_ratio:.2}: compute term should push toward cubic"
    );
}

#[test]
fn compute_term_measurable_at_moderate_n() {
    // By n = 512 on a 2×2 grid the modeled O((n/√p)²) update is of the
    // same order as the α–β communication; enabling it must move the
    // simulated clock noticeably.
    let n = 512;
    let g = apspark::graph::generators::erdos_renyi_paper(n, 0.1, 3);
    let adj = g.to_dense();
    let comm_only = MpiFw2d::new(2).solve_matrix(&adj).unwrap().simulated_comm_s;
    let with_compute = MpiFw2d::new(2)
        .with_compute_rate(KernelRates::paper().update_sec_per_op)
        .solve_matrix(&adj)
        .unwrap()
        .simulated_comm_s;
    assert!(
        with_compute > 1.3 * comm_only,
        "compute-enabled {with_compute:.4}s vs comm-only {comm_only:.4}s"
    );
}
