//! End-to-end suite for the service layer (`core::serve`): a real
//! `Server` on an ephemeral port, driven by plain `TcpStream` HTTP/1.1
//! clients.
//!
//! The load-bearing property is *bit-exactness*: every value a client
//! reads over HTTP is compared `==` against the same query answered
//! in-process through the `Solution` twins — same numbers, same routes,
//! same unreachable cells. JSON f64 round-trips exactly (the writer
//! emits the shortest representation that parses back to the same
//! bits), so exact comparison is sound, not flaky.

use apspark::core::serve::{ServeConfig, Server, ServerHandle};
use apspark::graph::generators;
use apspark::prelude::*;
use serde::Value;
use std::io::{Read, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// A minimal HTTP/1.1 client
// ---------------------------------------------------------------------------

fn http_raw(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to the test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// Sends one request, returns `(status, parsed JSON body)`.
fn http(addr: SocketAddr, method: &str, target: &str, body: Option<&str>) -> (u16, Value) {
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let response = http_raw(addr, &request);
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in: {response}"));
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status code in: {head}"));
    let json = serde_json::from_str(payload)
        .unwrap_or_else(|e| panic!("unparsable body ({e}): {payload}"));
    (status, json)
}

fn get(addr: SocketAddr, target: &str) -> (u16, Value) {
    http(addr, "GET", target, None)
}

fn error_kind(body: &Value) -> &str {
    body.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no error.kind in: {body:?}"))
}

fn job_state(addr: SocketAddr, id: &str) -> String {
    let (status, body) = get(addr, &format!("/jobs/{id}"));
    assert_eq!(status, 200, "{body:?}");
    body.get("state")
        .and_then(Value::as_str)
        .expect("state field")
        .to_string()
}

fn wait_for_state(addr: SocketAddr, id: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let state = job_state(addr, id);
        if state == want {
            return;
        }
        assert!(
            !matches!(state.as_str(), "failed"),
            "job {id} failed while waiting for '{want}'"
        );
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in '{state}' waiting for '{want}'"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Solves a small paper-family graph with paths into a committed store
/// and returns `(tempdir, store_dir)`.
fn build_store(n: usize, seed: u64) -> (tempfile::TempDir, std::path::PathBuf) {
    let tmp = tempfile::tempdir();
    let store = tmp.path().join("store");
    let g = generators::erdos_renyi_paper(n, 0.1, seed);
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    Problem::new(&g)
        .with_paths()
        .store(&store)
        .solve(&ctx)
        .expect("store solve");
    (tmp, store)
}

fn start_server(config: ServeConfig) -> ServerHandle {
    Server::start(config).expect("server start")
}

mod tempfile {
    //! The tiny tempdir helper the other integration suites use.
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEQ: AtomicU64 = AtomicU64::new(0);

    pub struct TempDir {
        path: PathBuf,
    }

    impl TempDir {
        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    pub fn tempdir() -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "apspark-serve-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create tempdir");
        TempDir { path }
    }
}

// ---------------------------------------------------------------------------
// Concurrent bit-exactness against a warm store
// ---------------------------------------------------------------------------

/// ≥32 concurrent clients firing mixed dist/path/k-nearest/reachable/
/// submatrix queries against a store-backed server; every response is
/// compared bit-for-bit against the in-process `Solution` answer.
#[test]
fn concurrent_clients_bit_match_direct_solution_queries() {
    let n = 48;
    let (_tmp, store) = build_store(n, 42);
    let handle = start_server(ServeConfig {
        store: Some(store.clone()),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let oracle = Arc::new(Solution::open_with_cache_budget(&store, 1 << 20).expect("open store"));

    let threads: Vec<_> = (0..32)
        .map(|t| {
            let oracle = oracle.clone();
            std::thread::spawn(move || {
                for i in 0..6 {
                    let u = (t * 7 + i * 13) % n;
                    let v = (t * 11 + i * 5) % n;
                    match (t + i) % 4 {
                        0 => {
                            let (status, body) = get(addr, &format!("/dist?src={u}&dst={v}"));
                            assert_eq!(status, 200, "{body:?}");
                            let got = body.get("value").expect("value field");
                            let want = oracle.try_dist(u, v).unwrap();
                            match want {
                                Some(d) => assert_eq!(got.as_f64(), Some(d), "dist({u},{v})"),
                                None => assert!(got.is_null(), "dist({u},{v}) not null: {got:?}"),
                            }
                        }
                        1 => {
                            let (status, body) = get(addr, &format!("/path?src={u}&dst={v}"));
                            assert_eq!(status, 200, "{body:?}");
                            let want = oracle.try_path(u, v).unwrap();
                            let got = body.get("route").expect("route field");
                            match want {
                                Some(route) => {
                                    let got: Vec<u64> = got
                                        .as_array()
                                        .expect("route array")
                                        .iter()
                                        .map(|x| x.as_u64().expect("vertex id"))
                                        .collect();
                                    let want: Vec<u64> =
                                        route.iter().map(|&x| u64::from(x)).collect();
                                    assert_eq!(got, want, "path({u},{v})");
                                }
                                None => assert!(got.is_null(), "path({u},{v}) not null"),
                            }
                        }
                        2 => {
                            let k = 1 + (i % 5);
                            let (status, body) = get(addr, &format!("/k-nearest?src={u}&k={k}"));
                            assert_eq!(status, 200, "{body:?}");
                            let want = oracle.try_k_nearest(u, k).unwrap();
                            let items = body.get("items").and_then(Value::as_array).expect("items");
                            assert_eq!(items.len(), want.len());
                            for (item, (wv, ws)) in items.iter().zip(&want) {
                                assert_eq!(
                                    item.get("v").and_then(Value::as_u64),
                                    Some(u64::from(*wv))
                                );
                                assert_eq!(
                                    item.get("score").and_then(Value::as_f64),
                                    Some(*ws),
                                    "k-nearest({u},{k}) score"
                                );
                            }
                        }
                        _ => {
                            let (status, body) = get(addr, &format!("/reachable?src={u}&dst={v}"));
                            assert_eq!(status, 200, "{body:?}");
                            assert_eq!(
                                body.get("reachable").and_then(Value::as_bool),
                                Some(oracle.try_reachable(u, v).unwrap()),
                                "reachable({u},{v})"
                            );
                        }
                    }
                }
                // One submatrix window per thread.
                let r0 = t % (n - 3);
                let (status, body) =
                    get(addr, &format!("/submatrix?r0={r0}&r1={}&c0=0&c1=2", r0 + 2));
                assert_eq!(status, 200, "{body:?}");
                let rows: Vec<usize> = (r0..=r0 + 2).collect();
                let want = oracle.try_submatrix(&rows, &[0, 1, 2]).unwrap();
                let cells = body.get("cells").and_then(Value::as_array).expect("cells");
                for (got_row, want_row) in cells.iter().zip(&want) {
                    let got_row = got_row.as_array().expect("row array");
                    for (got, want) in got_row.iter().zip(want_row) {
                        if want.is_finite() {
                            assert_eq!(got.as_f64(), Some(*want));
                        } else {
                            assert!(got.is_null(), "infinite cell must be null");
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    // Every request was counted.
    let metrics = handle.metrics();
    assert!(
        metrics.requests_served >= 32 * 7,
        "requests_served = {}",
        metrics.requests_served
    );
    let report = handle.shutdown();
    assert!(report.interrupted.is_empty());
}

// ---------------------------------------------------------------------------
// The e2e demo: POST /solve → poll → query → metrics → shutdown
// ---------------------------------------------------------------------------

#[test]
fn solve_job_end_to_end_with_backpressure_and_cancellation() {
    let handle = start_server(ServeConfig {
        workers: 1,
        queue_depth: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // No solution mounted yet: point queries 404 with a typed error.
    let (status, body) = get(addr, "/dist?src=0&dst=1");
    assert_eq!(status, 404, "{body:?}");
    assert_eq!(error_kind(&body), "not-found");

    // Solve a generator graph end-to-end. Solver and block size are
    // pinned so the in-process oracle below runs the identical plan
    // (bit-exactness across *different* plans is not part of the
    // contract).
    let spec =
        r#"{"graph": {"n": 40, "seed": 7}, "paths": true, "solver": "cb", "block_size": 16}"#;
    let (status, body) = http(addr, "POST", "/solve", Some(spec));
    assert_eq!(status, 202, "{body:?}");
    let job = body
        .get("job")
        .and_then(Value::as_str)
        .expect("job id")
        .to_string();
    wait_for_state(addr, &job, "done");

    // The finished closure answers point queries, both addressed by job
    // id and as the default (latest finished job), bit-identical to an
    // in-process solve of the same generator graph.
    let g = generators::erdos_renyi(40, generators::paper_edge_probability(40, 0.1), 7);
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let oracle = Problem::new(&g)
        .with_paths()
        .prefer(SolverId::BlockedCollectBroadcast)
        .block_size(16)
        .solve(&ctx)
        .expect("oracle");
    for (u, v) in [(0, 39), (3, 17), (12, 12)] {
        let want = oracle.try_dist(u, v).unwrap();
        for target in [
            format!("/dist?src={u}&dst={v}&job={job}"),
            format!("/dist?src={u}&dst={v}"),
        ] {
            let (status, body) = get(addr, &target);
            assert_eq!(status, 200, "{body:?}");
            match want {
                Some(d) => assert_eq!(body.get("value").and_then(Value::as_f64), Some(d)),
                None => assert!(body.get("value").expect("value").is_null()),
            }
        }
    }

    // Backpressure: worker=1 busy with a slow job, queue_depth=2 →
    // the first submission runs, the second queues, the third is
    // rejected with 429.
    let slow = r#"{"graph": {"n": 320, "seed": 9}, "block_size": 32}"#;
    let (status, body) = http(addr, "POST", "/solve", Some(slow));
    assert_eq!(status, 202, "{body:?}");
    let running = body.get("job").and_then(Value::as_str).unwrap().to_string();
    let (status, body) = http(addr, "POST", "/solve", Some(slow));
    assert_eq!(status, 202, "{body:?}");
    let queued = body.get("job").and_then(Value::as_str).unwrap().to_string();
    let (status, body) = http(addr, "POST", "/solve", Some(slow));
    assert_eq!(status, 429, "{body:?}");
    assert_eq!(error_kind(&body), "queue-full");

    // Cancel the queued job; it settles as cancelled without running.
    let (status, body) = http(addr, "DELETE", &format!("/jobs/{queued}"), None);
    assert_eq!(status, 200, "{body:?}");
    wait_for_state(addr, &queued, "cancelled");

    // Cancelling a finished job is a conflict; unknown ids are 404.
    let (status, body) = http(addr, "DELETE", &format!("/jobs/{job}"), None);
    assert_eq!(status, 409, "{body:?}");
    assert_eq!(error_kind(&body), "conflict");
    let (status, _) = http(addr, "DELETE", "/jobs/nope", None);
    assert_eq!(status, 404);

    // Cancel the running job too (DELETE on a running job answers 202
    // and the cancel token fails it at the next task launch).
    let (status, body) = http(addr, "DELETE", &format!("/jobs/{running}"), None);
    assert!(matches!(status, 200 | 202 | 409), "{body:?}");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !matches!(job_state(addr, &running).as_str(), "cancelled" | "done") {
        assert!(Instant::now() < deadline, "running job never settled");
        std::thread::sleep(Duration::from_millis(10));
    }

    // /jobs lists everything; /metrics reflects the traffic.
    let (status, body) = get(addr, "/jobs");
    assert_eq!(status, 200);
    let jobs = body.get("jobs").and_then(Value::as_array).expect("jobs");
    assert!(jobs.len() >= 3, "{body:?}");
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.get("requests_served").and_then(Value::as_u64).unwrap() > 0);
    assert!(body.get("jobs_queued").and_then(Value::as_u64).unwrap() >= 3);
    assert!(body.get("jobs_rejected").and_then(Value::as_u64).unwrap() >= 1);
    assert!(body.get("jobs_cancelled").and_then(Value::as_u64).unwrap() >= 1);
    assert!(
        body.get("queue_depth_peak")
            .and_then(Value::as_u64)
            .unwrap()
            >= 2
    );

    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Negative paths: malformed requests, OOB ids, wrong methods
// ---------------------------------------------------------------------------

#[test]
fn malformed_and_out_of_bounds_requests_get_typed_errors() {
    let (_tmp, store) = build_store(24, 5);
    let handle = start_server(ServeConfig {
        store: Some(store),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // 400: unparsable and missing parameters, malformed JSON bodies.
    for target in [
        "/dist?src=abc&dst=1",
        "/dist?src=1",
        "/k-nearest?src=1",
        "/submatrix?r0=3&r1=1&c0=0&c1=1",
        "/dist?src=-1&dst=1",
    ] {
        let (status, body) = get(addr, target);
        assert_eq!(status, 400, "{target}: {body:?}");
        assert_eq!(error_kind(&body), "bad-request", "{target}");
    }
    for bad_body in [
        "{not json",
        "[]",
        r#"{"graph": {"n": 0}}"#,
        r#"{"graph": {}}"#,
    ] {
        let (status, body) = http(addr, "POST", "/solve", Some(bad_body));
        assert_eq!(status, 400, "{bad_body}: {body:?}");
        assert_eq!(error_kind(&body), "bad-request");
    }

    // 404: out-of-range vertex ids (the named resource does not exist),
    // unknown endpoints, unknown job ids.
    for target in [
        "/dist?src=0&dst=99",
        "/path?src=99&dst=0",
        "/k-nearest?src=99&k=2",
        "/submatrix?r0=0&r1=99&c0=0&c1=1",
        "/dist?src=0&dst=1&job=missing",
        "/jobs/missing",
        "/nope",
    ] {
        let (status, body) = get(addr, target);
        assert_eq!(status, 404, "{target}: {body:?}");
        assert_eq!(error_kind(&body), "not-found", "{target}");
    }

    // 405: wrong method on a known route.
    let (status, body) = http(addr, "POST", "/dist?src=0&dst=1", None);
    assert_eq!(status, 405, "{body:?}");
    let (status, _) = get(addr, "/solve");
    assert_eq!(status, 405);

    // A garbage request line gets 400, not a hangup.
    let response = http_raw(addr, "BOGUS\r\n\r\n");
    assert!(response.contains("400"), "{response}");

    // Health stays green through all of it.
    let (status, body) = get(addr, "/health");
    assert_eq!(status, 200);
    assert_eq!(body.get("status").and_then(Value::as_str), Some("ok"));

    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Graceful shutdown: drain, checkpoint, resume
// ---------------------------------------------------------------------------

/// Shutdown with a job mid-solve: the server drains, the job gets a
/// round-granular checkpoint (or finishes on its own if the race goes
/// the other way), and an interrupted job resumes from its checkpoint on
/// a fresh server — finishing bit-identical to an uninterrupted solve.
#[test]
fn shutdown_checkpoints_running_jobs_and_resume_completes() {
    let tmp = tempfile::tempdir();
    let handle = start_server(ServeConfig {
        workers: 1,
        work_dir: Some(tmp.path().to_path_buf()),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // A deliberately large, round-heavy spec (many blocks → many
    // barriers) so the shutdown signal lands mid-solve.
    let spec = r#"{"graph": {"n": 512, "seed": 11}, "block_size": 32, "solver": "cb"}"#;
    let (status, body) = http(addr, "POST", "/solve", Some(spec));
    assert_eq!(status, 202, "{body:?}");
    let job = body.get("job").and_then(Value::as_str).unwrap().to_string();
    // Wait until a worker picks the job up; if the solve outraces the
    // poll and finishes, the test degenerates to "shutdown with nothing
    // to interrupt", which the match below accepts.
    let deadline = Instant::now() + Duration::from_secs(60);
    while job_state(addr, &job) == "queued" && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }

    let report = handle.shutdown();
    eprintln!(
        "shutdown interrupted {} job(s) (checkpoints written: {})",
        report.interrupted.len(),
        report.metrics.checkpoints_written
    );
    let resumed_dist = match report.interrupted.iter().find(|j| j.id == job) {
        Some(interrupted) => {
            // The checkpoint directory holds a committed round; resume
            // from it on a fresh server and run to completion.
            let handle2 = start_server(ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            });
            let addr2 = handle2.addr();
            let resume_spec = format!(
                r#"{{"graph": {{"n": 512, "seed": 11}}, "block_size": 32, "solver": "cb", "resume_from": "{}"}}"#,
                interrupted.checkpoint_dir.display()
            );
            let (status, body) = http(addr2, "POST", "/solve", Some(&resume_spec));
            assert_eq!(status, 202, "{body:?}");
            let resumed = body.get("job").and_then(Value::as_str).unwrap().to_string();
            wait_for_state(addr2, &resumed, "done");
            let (status, body) = get(addr2, &format!("/dist?src=0&dst=511&job={resumed}"));
            assert_eq!(status, 200, "{body:?}");
            let d = body.get("value").and_then(Value::as_f64);
            handle2.shutdown();
            d
        }
        None => {
            // The solve won the race and completed (or was cancelled
            // before its first round barrier could checkpoint). Either
            // way the property under test — shutdown neither hangs nor
            // panics, and only checkpointed jobs are declared resumable
            // — held; there is nothing to resume.
            return;
        }
    };

    // Bit-compare the resumed solve against an uninterrupted oracle.
    let g = generators::erdos_renyi(512, generators::paper_edge_probability(512, 0.1), 11);
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let oracle = Problem::new(&g)
        .block_size(32)
        .prefer(SolverId::BlockedCollectBroadcast)
        .solve(&ctx)
        .expect("oracle");
    assert_eq!(resumed_dist, oracle.try_dist(0, 511).unwrap());
}

/// After shutdown begins, new requests are refused with 503.
#[test]
fn draining_server_answers_503() {
    let handle = start_server(ServeConfig::default());
    let addr = handle.addr();
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200);
    // Shutdown on a quiet server is immediate; the listener stays bound
    // until the drain completes, so a racing request sees either 503 or
    // a refused connection — never a hang or a panic.
    let shutdown = std::thread::spawn(move || handle.shutdown());
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_refusal = false;
    while Instant::now() < deadline && !saw_refusal {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                let _ = stream.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
                let mut response = String::new();
                let _ = stream
                    .set_read_timeout(Some(Duration::from_secs(5)))
                    .and_then(|_| stream.read_to_string(&mut response).map(|_| ()));
                if response.contains("503") || response.is_empty() {
                    saw_refusal = true;
                }
            }
            Err(_) => saw_refusal = true,
        }
    }
    let report = shutdown.join().expect("shutdown thread");
    assert!(saw_refusal, "drain was never observable");
    assert!(report.interrupted.is_empty());
}
