//! End-to-end runs with the side channel backed by **real files** — the
//! paper's actual mechanism (blocks staged on GPFS via `tofile()`).

use apspark::graph::generators;
use apspark::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("apspark-{tag}-{}", std::process::id()))
}

#[test]
fn cb_solves_through_real_files() {
    let dir = temp_dir("cb");
    let ctx = SparkContext::new(SparkConfig::with_cores(4).disk_side_channel(&dir));
    let g = generators::erdos_renyi_paper(72, 0.1, 0xD15C);
    let res = BlockedCollectBroadcast
        .solve(&ctx, &g.to_dense(), &SolverConfig::new(18))
        .expect("CB over disk side channel failed");
    let oracle = apspark::graph::floyd_warshall(&g);
    assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
    assert!(res.metrics.side_channel_bytes_written > 0);
    // Per-iteration cleanup removed the staged files.
    assert!(ctx.side_channel().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rs_solves_through_real_files() {
    let dir = temp_dir("rs");
    let ctx = SparkContext::new(SparkConfig::with_cores(4).disk_side_channel(&dir));
    let g = generators::erdos_renyi_paper(40, 0.1, 0xD15D);
    let res = RepeatedSquaring
        .solve(&ctx, &g.to_dense(), &SolverConfig::new(10))
        .expect("RS over disk side channel failed");
    let oracle = apspark::graph::floyd_warshall(&g);
    assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
    assert!(ctx.side_channel().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleting_files_mid_lineage_is_fatal_for_impure_solver() {
    // The impurity argument with real files: wipe the staging directory
    // while the engine would still need it → unrecoverable miss.
    let dir = temp_dir("cb-wipe");
    let ctx = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
    ctx.side_channel()
        .put_block("cb:0:diag", apspark::blockmat::Block::identity(4))
        .expect("staging to a live directory succeeds");
    assert!(ctx.side_channel().contains("cb:0:diag"));
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(ctx.side_channel().get_block_arc("cb:0:diag").is_err());
}

#[test]
fn memory_and_disk_backends_agree() {
    let g = generators::erdos_renyi_paper(64, 0.1, 0xD15E);
    let adj = g.to_dense();
    let mem = {
        let ctx = SparkContext::new(SparkConfig::with_cores(3));
        BlockedCollectBroadcast
            .solve(&ctx, &adj, &SolverConfig::new(16))
            .unwrap()
    };
    let dir = temp_dir("agree");
    let disk = {
        let ctx = SparkContext::new(SparkConfig::with_cores(3).disk_side_channel(&dir));
        BlockedCollectBroadcast
            .solve(&ctx, &adj, &SolverConfig::new(16))
            .unwrap()
    };
    assert!(mem.distances().approx_eq(disk.distances(), 0.0).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
