//! Cross-crate validation: every solver must agree with the sequential
//! oracles on every graph family, block size, partitioner, and core count
//! we can afford to sweep — including property-based random instances.

use apspark::core::{MpiDcApsp, MpiFw2d};
use apspark::prelude::*;
use apspark::{core::PartitionerChoice, graph::generators};
use proptest::prelude::*;

fn ctx(cores: usize) -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(cores))
}

fn spark_solvers() -> Vec<Box<dyn ApspSolver>> {
    vec![
        Box::new(RepeatedSquaring),
        Box::new(FloydWarshall2D),
        Box::new(BlockedInMemory),
        Box::new(BlockedCollectBroadcast),
    ]
}

#[test]
fn all_solvers_agree_on_benchmark_family() {
    let g = generators::erdos_renyi_paper(80, 0.1, 2024);
    let adj = g.to_dense();
    let oracle = apspark::graph::floyd_warshall(&g);
    for solver in spark_solvers() {
        for b in [16usize, 25, 80, 100] {
            let res = solver
                .solve(&ctx(4), &adj, &SolverConfig::new(b))
                .unwrap_or_else(|e| panic!("{} b={b}: {e}", solver.name()));
            res.distances()
                .approx_eq(&oracle, 1e-9)
                .unwrap_or_else(|(i, j, a, b2)| {
                    panic!("{} b={b}: d({i},{j}) = {a} vs oracle {b2}", solver.name())
                });
        }
    }
}

#[test]
fn all_solvers_agree_on_structured_graphs() {
    for (name, g) in [
        ("path", generators::path(50)),
        ("cycle", generators::cycle(47)),
        ("grid", generators::grid(6, 8)),
        ("complete", generators::complete(40, 7)),
    ] {
        let adj = g.to_dense();
        let oracle = apspark::graph::floyd_warshall(&g);
        for solver in spark_solvers() {
            let res = solver
                .solve(&ctx(3), &adj, &SolverConfig::new(13))
                .unwrap_or_else(|e| panic!("{} on {name}: {e}", solver.name()));
            assert!(
                res.distances().approx_eq(&oracle, 1e-9).is_ok(),
                "{} diverged on {name}",
                solver.name()
            );
        }
    }
}

#[test]
fn partitioner_choice_does_not_change_results() {
    let g = generators::erdos_renyi_paper(60, 0.1, 3);
    let adj = g.to_dense();
    let oracle = apspark::graph::floyd_warshall(&g);
    for choice in [
        PartitionerChoice::MultiDiagonal,
        PartitionerChoice::PortableHash,
    ] {
        for solver in spark_solvers() {
            let cfg = SolverConfig::new(20).with_partitioner(choice);
            let res = solver.solve(&ctx(4), &adj, &cfg).unwrap();
            assert!(
                res.distances().approx_eq(&oracle, 1e-9).is_ok(),
                "{} with {choice:?} diverged",
                solver.name()
            );
        }
    }
}

#[test]
fn core_count_does_not_change_results() {
    let g = generators::erdos_renyi_paper(64, 0.1, 17);
    let adj = g.to_dense();
    let oracle = apspark::graph::floyd_warshall(&g);
    for cores in [1usize, 2, 8] {
        let res = BlockedCollectBroadcast
            .solve(&ctx(cores), &adj, &SolverConfig::new(16))
            .unwrap();
        assert!(
            res.distances().approx_eq(&oracle, 1e-9).is_ok(),
            "CB diverged at {cores} cores"
        );
    }
}

#[test]
fn mpi_baselines_agree_across_geometries() {
    let g = generators::erdos_renyi_paper(72, 0.1, 31);
    let adj = g.to_dense();
    let oracle = apspark::graph::floyd_warshall(&g);
    for grid in [1usize, 2, 3] {
        let res = MpiFw2d::new(grid).solve_matrix(&adj).unwrap();
        assert!(
            res.distances.approx_eq(&oracle, 1e-9).is_ok(),
            "FW-2D {grid}x{grid} diverged"
        );
    }
    for ranks in [1usize, 2, 5] {
        let res = MpiDcApsp::new(ranks).solve_matrix(&adj).unwrap();
        assert!(
            res.distances.approx_eq(&oracle, 1e-9).is_ok(),
            "DC with {ranks} ranks diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random Erdős–Rényi instance, random block size, random solver:
    /// distributed result ≡ Dijkstra oracle.
    #[test]
    fn random_instances_match_dijkstra(
        n in 8usize..48,
        p_milli in 50usize..400,
        b in 3usize..24,
        seed in any::<u64>(),
        solver_idx in 0usize..4,
    ) {
        let g = generators::erdos_renyi(n, p_milli as f64 / 1000.0, seed);
        let adj = g.to_dense();
        let oracle = apspark::graph::dijkstra::apsp_dijkstra(&g);
        let solver = &spark_solvers()[solver_idx];
        let res = solver
            .solve(&ctx(2), &adj, &SolverConfig::new(b))
            .expect("solve failed");
        prop_assert!(
            res.distances().approx_eq(&oracle, 1e-9).is_ok(),
            "{} diverged on n={n} b={b} seed={seed}", solver.name()
        );
    }

    /// The distance matrix is a metric closure: symmetric, zero diagonal,
    /// triangle inequality.
    #[test]
    fn result_is_a_metric_closure(
        n in 6usize..36,
        seed in any::<u64>(),
        b in 4usize..16,
    ) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let res = BlockedCollectBroadcast
            .solve(&ctx(2), &g.to_dense(), &SolverConfig::new(b))
            .expect("solve failed");
        let d = res.distances();
        for i in 0..n {
            prop_assert_eq!(d.get(i, i), 0.0);
            for j in 0..n {
                prop_assert_eq!(d.get(i, j), d.get(j, i));
                for k in 0..n {
                    prop_assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9);
                }
            }
        }
    }

    /// MPI baselines equal Spark solvers on the same random instance.
    #[test]
    fn mpi_equals_spark(
        n in 8usize..40,
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let adj = g.to_dense();
        let spark = BlockedInMemory
            .solve(&ctx(2), &adj, &SolverConfig::new((n / 3).max(2)))
            .expect("IM failed");
        let dc = MpiDcApsp::new(2).solve_matrix(&adj).expect("DC failed");
        prop_assert!(spark.distances().approx_eq(&dc.distances, 1e-9).is_ok());
        let fw = MpiFw2d::new(2).solve_matrix(&adj).expect("FW failed");
        prop_assert!(spark.distances().approx_eq(&fw.distances, 1e-9).is_ok());
    }
}
