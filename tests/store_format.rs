//! Closure-store format conformance: a golden fixture written by the
//! current frame version must keep opening bit-exactly forever, and every
//! way a store can rot on disk — future version, foreign bytes, flipped
//! bits, truncation, a lying manifest — must be a **typed**
//! `ApspError::Store`, never a panic or a silently wrong answer.
//!
//! The fixture under `tests/fixtures/store_v1/` was produced by:
//!
//! ```sh
//! apspark generate --n 16 --seed 9 --output g16.txt
//! apspark solve --input g16.txt --block-size 8 --path 0 15 \
//!     --store tests/fixtures/store_v1
//! ```
//!
//! i.e. a tracked shortest-paths Blocked-CB solve of `G(16, 0.1, seed 9)`
//! at `b = 8` (`q = 2`): four block files plus the manifest.

use apspark::blockmat::serialize::{frame, unframe, FRAME_KIND_BLOCK};
use apspark::core::ApspError;
use apspark::graph::generators;
use apspark::prelude::*;

fn fixture_graph() -> Graph {
    generators::erdos_renyi_paper(16, 0.1, 9)
}

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("store_v1")
}

/// Copies the fixture into a scratch directory so corruption tests never
/// touch the committed blobs.
fn scratch_copy(tag: &str) -> std::path::PathBuf {
    let dst = std::env::temp_dir().join(format!("apsp-storefmt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    std::fs::create_dir_all(&dst).expect("create scratch dir");
    for entry in std::fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let entry = entry.expect("readable fixture entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy fixture blob");
    }
    dst
}

fn open_err(dir: &std::path::Path) -> ApspError {
    match Solution::open(dir) {
        Err(e) => e,
        Ok(_) => panic!("corrupt store must not open"),
    }
}

#[test]
fn golden_fixture_answers_bit_exact() {
    let g = fixture_graph();
    let fresh = Problem::new(&g)
        .with_paths()
        .block_size(8)
        .solve(&SparkContext::new(SparkConfig::with_cores(2)))
        .expect("fresh solve");
    let stored = Solution::open(fixture_dir())
        .unwrap_or_else(|e| panic!("the golden v1 store must stay readable forever: {e}"));
    assert_eq!(stored.order(), 16);
    assert_eq!(stored.workload(), Workload::ShortestPaths);
    assert!(stored.plan.paths, "fixture was saved from a tracked solve");
    for u in 0..16 {
        for v in 0..16 {
            assert_eq!(fresh.dist(u, v), stored.dist(u, v), "dist({u}, {v})");
            assert_eq!(fresh.path(u, v), stored.path(u, v), "path({u}, {v})");
        }
    }
    assert_eq!(fresh.k_nearest(0, 16), stored.k_nearest(0, 16));
}

#[test]
fn version_bumped_manifest_is_rejected_typed() {
    let dir = scratch_copy("version");
    let meta = dir.join("store-manifest");
    let mut bytes = std::fs::read(&meta).expect("fixture manifest");
    // Frame layout: magic [0..8], version u32 LE [8..12].
    bytes[8] = bytes[8].wrapping_add(1);
    std::fs::write(&meta, &bytes).expect("rewrite manifest");
    let err = open_err(&dir);
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("version")),
        "rejection must name the version mismatch, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_bytes_are_rejected_by_magic() {
    let dir = scratch_copy("magic");
    // Longer than a frame header, so the rejection is about the magic,
    // not about truncation.
    std::fs::write(dir.join("store-manifest"), [0x2a_u8; 64]).expect("rewrite manifest");
    let err = open_err(&dir);
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("magic")),
        "expected a magic rejection, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_manifest_is_rejected_typed() {
    let dir = scratch_copy("trunc-manifest");
    let meta = dir.join("store-manifest");
    let bytes = std::fs::read(&meta).expect("fixture manifest");
    std::fs::write(&meta, &bytes[..bytes.len() / 2]).expect("truncate manifest");
    let err = open_err(&dir);
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("truncated")),
        "expected a truncation rejection, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_manifest_means_no_store() {
    let dir = scratch_copy("no-manifest");
    std::fs::remove_file(dir.join("store-manifest")).expect("remove manifest");
    let err = open_err(&dir);
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("manifest")),
        "an uncommitted directory must be rejected as not-a-store, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_rotted_block_is_rejected_by_checksum_on_first_touch() {
    let dir = scratch_copy("rot");
    let block = dir.join("store-blk-0-1");
    let mut bytes = std::fs::read(&block).expect("fixture block");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&block, &bytes).expect("rewrite block");

    // Blocks load lazily: the store still opens, and the rot surfaces as
    // a typed error on the first query that touches block (0, 1) —
    // row 0, column 15 at b = 8.
    let sol = Solution::open(&dir).expect("open is manifest-only");
    assert!(sol.try_dist(0, 0).is_ok(), "clean blocks stay readable");
    let err = sol
        .try_dist(0, 15)
        .expect_err("rotted block must not decode");
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("checksum")),
        "rejection must name the checksum, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_block_is_rejected_typed() {
    let dir = scratch_copy("trunc-block");
    let block = dir.join("store-blk-1-1");
    let bytes = std::fs::read(&block).expect("fixture block");
    std::fs::write(&block, &bytes[..bytes.len() / 2]).expect("truncate block");
    let sol = Solution::open(&dir).expect("open is manifest-only");
    let err = sol
        .try_dist(15, 15)
        .expect_err("truncated block must not decode");
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("truncated")),
        "expected a truncation rejection, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_block_file_is_typed_not_a_panic() {
    let dir = scratch_copy("missing-block");
    std::fs::remove_file(dir.join("store-blk-1-0")).expect("remove block");
    let sol = Solution::open(&dir).expect("open is manifest-only");
    let err = sol.try_dist(15, 0).expect_err("missing block must error");
    assert!(matches!(&err, ApspError::Store(_)), "got: {err}");
    // The panic-free facade degrades to "no answer" instead.
    assert_eq!(sol.dist(15, 0), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn geometry_lying_manifest_is_rejected() {
    let dir = scratch_copy("geometry");
    let meta = dir.join("store-manifest");
    let raw = std::fs::read(&meta).expect("fixture manifest");
    let (kind, body) = unframe(&raw).expect("fixture manifest frames");
    // Manifest body: u32 len + "shortest-paths" (14) + u32 len + "cb" (2)
    // + tracked u8 + directed u8, then n as u64 LE at offset 26. Bump n
    // to 17 so the declared q = 2 no longer matches ceil(n / b) = 3.
    let mut body = body.to_vec();
    assert_eq!(body[26], 16, "fixture n moved; update this test's offset");
    body[26] = 17;
    std::fs::write(&meta, frame(kind, &body)).expect("rewrite manifest");
    let err = open_err(&dir);
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("mismatch")),
        "a manifest whose geometry lies must be rejected, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_frame_kind_manifest_is_rejected() {
    let dir = scratch_copy("kind");
    let meta = dir.join("store-manifest");
    let raw = std::fs::read(&meta).expect("fixture manifest");
    let (_, body) = unframe(&raw).expect("fixture manifest frames");
    // A valid frame of the wrong kind (a block tag on the manifest file)
    // must be rejected by the kind check, not misparsed.
    std::fs::write(&meta, frame(FRAME_KIND_BLOCK, body)).expect("rewrite manifest");
    let err = open_err(&dir);
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("kind")),
        "expected a frame-kind rejection, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mislabeled_block_stamp_is_rejected() {
    let dir = scratch_copy("stamp");
    // Serve block (0, 0)'s bytes under (0, 1)'s name: the stamp check
    // must catch the swap even though the frame itself is pristine.
    std::fs::copy(dir.join("store-blk-0-0"), dir.join("store-blk-0-1")).expect("swap block files");
    let sol = Solution::open(&dir).expect("open is manifest-only");
    let err = sol
        .try_dist(0, 15)
        .expect_err("a mislabeled block must not be served");
    assert!(
        matches!(&err, ApspError::Store(msg) if msg.contains("stamped")),
        "expected a stamp rejection, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
