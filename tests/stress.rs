//! Soak tests at larger scale, `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test stress -- --ignored
//! ```

use apspark::graph::generators;
use apspark::prelude::*;

#[test]
#[ignore = "soak test: run with --ignored (release recommended)"]
fn cb_at_n_1024() {
    let g = generators::erdos_renyi_paper(1024, 0.1, 0x57E55);
    let ctx = SparkContext::new(SparkConfig::default());
    let cfg = SolverConfig::auto(1024, &ctx).without_validation();
    let res = BlockedCollectBroadcast
        .solve(&ctx, &g.to_dense(), &cfg)
        .expect("solve failed");
    // Spot-check against per-source Dijkstra on a few rows (full FW oracle
    // at n=1024 is slow in debug builds).
    let csr = g.to_csr();
    for s in [0usize, 511, 1023] {
        let oracle = apspark::graph::dijkstra::sssp(&csr, s);
        for (t, &expect) in oracle.iter().enumerate() {
            let got = res.distances().get(s, t);
            assert!(
                (got - expect).abs() < 1e-9 || (got.is_infinite() && expect.is_infinite()),
                "d({s},{t}) = {got}, oracle {expect}"
            );
        }
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn im_many_iterations_memory_stays_bounded() {
    // q = 64 iterations with small blocks: the unpersist discipline keeps
    // only ~2 generations alive; a leak here would OOM long before n³.
    let n = 512;
    let g = generators::erdos_renyi_paper(n, 0.1, 0x57E56);
    let ctx = SparkContext::new(SparkConfig::default());
    let res = BlockedInMemory
        .solve(
            &ctx,
            &g.to_dense(),
            &SolverConfig::new(8).without_validation(),
        )
        .expect("solve failed");
    assert_eq!(res.iterations, 64);
    let sample = apspark::graph::dijkstra::sssp(&g.to_csr(), 0);
    for (t, &expect) in sample.iter().enumerate() {
        let got = res.distances().get(0, t);
        assert!(
            (got - expect).abs() < 1e-9 || (got.is_infinite() && expect.is_infinite()),
            "d(0,{t})"
        );
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn mpi_dc_large_recursion() {
    let n = 700;
    let g = generators::erdos_renyi_paper(n, 0.1, 0x57E57);
    let res = apspark::core::MpiDcApsp {
        ranks: 8,
        base_size: 32,
        cost: apspark::mpilite::CommCost::gbe(),
    }
    .solve_matrix(&g.to_dense())
    .expect("solve failed");
    let sample = apspark::graph::dijkstra::sssp(&g.to_csr(), 42);
    for (t, &expect) in sample.iter().enumerate() {
        let got = res.distances.get(42, t);
        assert!(
            (got - expect).abs() < 1e-9 || (got.is_infinite() && expect.is_infinite()),
            "d(42,{t})"
        );
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn store_row_sweep_under_four_block_budget() {
    // Save a 384-vertex tracked closure (q = 6 at b = 64 → 36 blocks),
    // reopen it under a ~4-block cache budget, and sweep every full row.
    // Each row touches q blocks and the working set never fits, so the
    // sweep exercises sustained eviction churn while staying bit-exact
    // against a per-source Dijkstra oracle.
    let n = 384;
    let g = generators::erdos_renyi_paper(n, 0.1, 0x57E58);
    let ctx = SparkContext::new(SparkConfig::default());
    let mem = Problem::new(&g)
        .with_paths()
        .block_size(64)
        .solve(&ctx)
        .expect("solve failed");
    let dir = std::env::temp_dir().join(format!("apsp-store-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    mem.save(&dir).expect("save failed");

    let per_block = 64u64 * 64 * (8 + 4); // f64 values + u32 vias
    let disk = Solution::open_with_cache_budget(&dir, 4 * per_block).expect("open failed");
    let csr = g.to_csr();
    for s in 0..n {
        let oracle = apspark::graph::dijkstra::sssp(&csr, s);
        for (t, &expect) in oracle.iter().enumerate() {
            let got = disk.dist(s, t).unwrap_or(f64::INFINITY);
            assert!(
                (got - expect).abs() < 1e-9 || (got.is_infinite() && expect.is_infinite()),
                "d({s},{t}) = {got}, oracle {expect}"
            );
        }
        // A witness path per row keeps the via plane hot too.
        if let Some(route) = disk.path(s, (s + n / 2) % n) {
            assert_eq!(route.first(), Some(&(s as u32)));
        }
    }
    let m = disk.store().expect("store-backed").metrics();
    assert!(
        m.store_cache_evictions > 1_000,
        "a 36-block store swept row-by-row under a 4-block budget must churn, got {m:?}"
    );
    assert!(m.store_cache_hits > 0, "within-row reuse must hit");
    let _ = std::fs::remove_dir_all(&dir);
}
