//! Soak tests at larger scale, `#[ignore]`d by default:
//!
//! ```sh
//! cargo test --release --test stress -- --ignored
//! ```

use apspark::graph::generators;
use apspark::prelude::*;

#[test]
#[ignore = "soak test: run with --ignored (release recommended)"]
fn cb_at_n_1024() {
    let g = generators::erdos_renyi_paper(1024, 0.1, 0x57E55);
    let ctx = SparkContext::new(SparkConfig::default());
    let cfg = SolverConfig::auto(1024, &ctx).without_validation();
    let res = BlockedCollectBroadcast
        .solve(&ctx, &g.to_dense(), &cfg)
        .expect("solve failed");
    // Spot-check against per-source Dijkstra on a few rows (full FW oracle
    // at n=1024 is slow in debug builds).
    let csr = g.to_csr();
    for s in [0usize, 511, 1023] {
        let oracle = apspark::graph::dijkstra::sssp(&csr, s);
        for (t, &expect) in oracle.iter().enumerate() {
            let got = res.distances().get(s, t);
            assert!(
                (got - expect).abs() < 1e-9 || (got.is_infinite() && expect.is_infinite()),
                "d({s},{t}) = {got}, oracle {expect}"
            );
        }
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn im_many_iterations_memory_stays_bounded() {
    // q = 64 iterations with small blocks: the unpersist discipline keeps
    // only ~2 generations alive; a leak here would OOM long before n³.
    let n = 512;
    let g = generators::erdos_renyi_paper(n, 0.1, 0x57E56);
    let ctx = SparkContext::new(SparkConfig::default());
    let res = BlockedInMemory
        .solve(
            &ctx,
            &g.to_dense(),
            &SolverConfig::new(8).without_validation(),
        )
        .expect("solve failed");
    assert_eq!(res.iterations, 64);
    let sample = apspark::graph::dijkstra::sssp(&g.to_csr(), 0);
    for (t, &expect) in sample.iter().enumerate() {
        let got = res.distances().get(0, t);
        assert!(
            (got - expect).abs() < 1e-9 || (got.is_infinite() && expect.is_infinite()),
            "d(0,{t})"
        );
    }
}

#[test]
#[ignore = "soak test: run with --ignored"]
fn mpi_dc_large_recursion() {
    let n = 700;
    let g = generators::erdos_renyi_paper(n, 0.1, 0x57E57);
    let res = apspark::core::MpiDcApsp {
        ranks: 8,
        base_size: 32,
        cost: apspark::mpilite::CommCost::gbe(),
    }
    .solve_matrix(&g.to_dense())
    .expect("solve failed");
    let sample = apspark::graph::dijkstra::sssp(&g.to_csr(), 42);
    for (t, &expect) in sample.iter().enumerate() {
        let got = res.distances.get(42, t);
        assert!(
            (got - expect).abs() < 1e-9 || (got.is_infinite() && expect.is_infinite()),
            "d(42,{t})"
        );
    }
}
