//! End-to-end tests of the `apspark` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_apspark"))
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("apspark-cli-{name}-{}", std::process::id()))
}

#[test]
fn generate_solve_roundtrip() {
    let graph = temp("g.txt");
    let dists = temp("d.txt");

    let out = bin()
        .args(["generate", "--n", "96", "--seed", "7", "--output"])
        .arg(&graph)
        .output()
        .expect("generate failed to run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["solve", "--input"])
        .arg(&graph)
        .args([
            "--solver",
            "cb",
            "--cores",
            "2",
            "--block-size",
            "24",
            "--output",
        ])
        .arg(&dists)
        .output()
        .expect("solve failed to run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Validate the emitted matrix against an in-process solve.
    let g = apspark::graph::io::load_graph(&graph).unwrap();
    let oracle = apspark::graph::floyd_warshall(&g);
    let text = std::fs::read_to_string(&dists).unwrap();
    let rows: Vec<&str> = text.lines().collect();
    assert_eq!(rows.len(), 96);
    for (i, row) in rows.iter().enumerate() {
        for (j, tok) in row.split_whitespace().enumerate() {
            let v = if tok == "inf" {
                f64::INFINITY
            } else {
                tok.parse::<f64>().unwrap()
            };
            let expect = oracle.get(i, j);
            assert!(
                (v - expect).abs() < 1e-6 || (v.is_infinite() && expect.is_infinite()),
                "({i},{j}): {v} vs {expect}"
            );
        }
    }
    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(dists);
}

#[test]
fn solvers_agree_via_cli() {
    let graph = temp("agree.txt");
    let out = bin()
        .args(["generate", "--n", "48", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());
    let mut outputs = Vec::new();
    for solver in ["cb", "im", "johnson", "mpi-dc"] {
        let dists = temp(&format!("agree-{solver}.txt"));
        let out = bin()
            .args(["solve", "--input"])
            .arg(&graph)
            .args(["--solver", solver, "--cores", "2", "--output"])
            .arg(&dists)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((solver, std::fs::read_to_string(&dists).unwrap()));
        let _ = std::fs::remove_file(dists);
    }
    // Compare numerically: different solvers sum edge weights in
    // different orders, so values agree to rounding, not bit-for-bit.
    let parse = |text: &str| -> Vec<f64> {
        text.split_whitespace()
            .map(|t| {
                if t == "inf" {
                    f64::INFINITY
                } else {
                    t.parse().unwrap()
                }
            })
            .collect()
    };
    let reference = parse(&outputs[0].1);
    for (solver, text) in &outputs[1..] {
        let vals = parse(text);
        assert_eq!(vals.len(), reference.len(), "{solver} matrix size differs");
        for (k, (a, b)) in reference.iter().zip(&vals).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 || (a.is_infinite() && b.is_infinite()),
                "{solver} differs from cb at element {k}: {a} vs {b}"
            );
        }
    }
    let _ = std::fs::remove_file(graph);
}

#[test]
fn directed_solve_via_cli() {
    let graph = temp("dir.txt");
    let out = bin()
        .args(["generate", "--n", "40", "--directed", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["solve", "--directed", "--input"])
        .arg(&graph)
        .args(["--cores", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(graph);
}

#[test]
fn auto_solve_prints_explain_report_and_correct_distances() {
    let graph = temp("auto.txt");
    let dists = temp("auto-d.txt");
    let out = bin()
        .args(["generate", "--n", "64", "--seed", "3", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args(["solve", "--auto", "--cores", "2", "--input"])
        .arg(&graph)
        .arg("--output")
        .arg(&dists)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // The Plan::explain() report must name the decision.
    assert!(text.contains("plan for n = 64"), "missing report: {text}");
    assert!(
        text.contains("solver      = Blocked Collect/Broadcast"),
        "missing solver line: {text}"
    );
    assert!(text.contains("block size"), "missing block size: {text}");
    assert!(text.contains("kernel tier"), "missing kernel tier: {text}");

    // And the emitted matrix matches the sequential oracle.
    let g = apspark::graph::io::load_graph(&graph).unwrap();
    let oracle = apspark::graph::floyd_warshall(&g);
    let text = std::fs::read_to_string(&dists).unwrap();
    for (i, row) in text.lines().enumerate() {
        for (j, tok) in row.split_whitespace().enumerate() {
            let v = if tok == "inf" {
                f64::INFINITY
            } else {
                tok.parse::<f64>().unwrap()
            };
            let expect = oracle.get(i, j);
            assert!(
                (v - expect).abs() < 1e-6 || (v.is_infinite() && expect.is_infinite()),
                "({i},{j}): {v} vs {expect}"
            );
        }
    }
    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_file(dists);
}

#[test]
fn path_solve_prints_a_valid_route() {
    let graph = temp("route.txt");
    let out = bin()
        .args(["generate", "--n", "48", "--seed", "5", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Pick endpoints known reachable from the oracle.
    let g = apspark::graph::io::load_graph(&graph).unwrap();
    let oracle = apspark::graph::floyd_warshall(&g);
    let (src, dst) = (
        0usize,
        (1..48).find(|&j| oracle.get(0, j).is_finite()).unwrap(),
    );

    let out = bin()
        .args(["solve", "--cores", "2", "--path"])
        .args([src.to_string(), dst.to_string()])
        .arg("--input")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let route_line = text
        .lines()
        .find(|l| l.starts_with(&format!("route {src} -> {dst}:")))
        .unwrap_or_else(|| panic!("no route line in: {text}"));
    // The printed distance must match the oracle.
    let dist: f64 = route_line
        .split("distance ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        (dist - oracle.get(src, dst)).abs() < 1e-6,
        "printed {dist} vs oracle {}",
        oracle.get(src, dst)
    );
    // The hop list starts at src and ends at dst.
    let hops: Vec<&str> = route_line
        .split(": ")
        .last()
        .unwrap()
        .split(" -> ")
        .collect();
    assert_eq!(hops.first(), Some(&src.to_string().as_str()));
    assert_eq!(hops.last(), Some(&dst.to_string().as_str()));

    // Unreachable / out-of-range endpoints fail cleanly.
    let out = bin()
        .args(["solve", "--cores", "2", "--path", "0", "4800", "--input"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_file(graph);
}

#[test]
fn auto_solve_handles_directed_inputs() {
    let graph = temp("auto-dir.txt");
    let out = bin()
        .args(["generate", "--n", "32", "--directed", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["solve", "--auto", "--directed", "--cores", "2", "--input"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Directed Blocked-CB"), "{text}");
    let _ = std::fs::remove_file(graph);
}

#[test]
fn project_prints_feasibility() {
    let out = bin()
        .args(["project", "--n", "262144", "--solver", "im"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // IM at n=262144 p=1024 with the tuner fallback b: infeasible or
    // explicitly marked; the line must mention the verdict either way.
    assert!(text.contains("Blocked-IM"), "missing solver label: {text}");
    assert!(
        text.contains("OutOfLocalStorage") || text.contains("Feasible"),
        "missing feasibility verdict: {text}"
    );
}

#[test]
fn help_lists_subcommands_and_solvers() {
    for flag in ["--help", "-h", "help"] {
        let out = bin().arg(flag).output().unwrap();
        assert!(out.status.success(), "`{flag}` should exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        for subcommand in ["generate", "solve", "project"] {
            assert!(
                text.contains(subcommand),
                "`{flag}` output missing `{subcommand}`: {text}"
            );
        }
        for solver in ["cb", "im", "fw2d", "rs", "mpi-fw2d", "mpi-dc"] {
            assert!(
                text.contains(solver),
                "`{flag}` output missing solver `{solver}`: {text}"
            );
        }
        for planner_flag in ["--auto", "--path SRC DST"] {
            assert!(
                text.contains(planner_flag),
                "`{flag}` output missing `{planner_flag}`: {text}"
            );
        }
    }
    // With no arguments the binary prints usage and fails.
    let out = bin().output().unwrap();
    assert!(!out.status.success(), "bare invocation should be an error");
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = bin().args(["solve"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn solve_store_then_query_roundtrip() {
    let graph = temp("store-g.txt");
    let store = temp("store-dir");
    let _ = std::fs::remove_dir_all(&store);

    let out = bin()
        .args(["generate", "--n", "48", "--seed", "5", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Solve once, persisting the closure (tracked, so paths work later).
    let out = bin()
        .args([
            "solve",
            "--cores",
            "2",
            "--block-size",
            "16",
            "--path",
            "0",
            "47",
            "--input",
        ])
        .arg(&graph)
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("saved closure store"), "{text}");

    // A fresh process answers point queries from the store — no input
    // graph, no solve, and a tiny cache budget still works.
    let out = bin()
        .args([
            "query",
            "--dist",
            "0",
            "47",
            "--path",
            "0",
            "47",
            "--k-nearest",
            "0",
            "3",
        ])
        .args([
            "--submatrix",
            "0",
            "1",
            "46",
            "47",
            "--cache-mb",
            "1",
            "--stats",
        ])
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("opened shortest-paths store"), "{text}");
    assert!(text.contains("dist(0, 47)"), "{text}");
    assert!(
        text.contains("route 0 -> 47") || text.contains("no route"),
        "{text}"
    );
    assert!(text.contains("k-nearest(0, 3):"), "{text}");
    assert!(text.contains("submatrix"), "{text}");
    assert!(text.contains("store cache:"), "{text}");

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_dir_all(store);
}

#[test]
fn finalize_turns_a_finished_checkpoint_into_a_store() {
    let graph = temp("fin-g.txt");
    let ckpt = temp("fin-ckpt");
    let store = temp("fin-store");
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&store);

    let out = bin()
        .args(["generate", "--n", "32", "--seed", "8", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args([
            "solve",
            "--solver",
            "cb",
            "--cores",
            "2",
            "--block-size",
            "16",
            "--input",
        ])
        .arg(&graph)
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .arg("finalize")
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("finalized checkpoint"));

    let out = bin()
        .args(["query", "--dist", "0", "31"])
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dist(0, 31)"), "{text}");

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_dir_all(ckpt);
    let _ = std::fs::remove_dir_all(store);
}

#[test]
fn query_rejects_a_directory_that_is_not_a_store() {
    let dir = temp("not-a-store");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = bin()
        .arg("query")
        .arg("--store")
        .arg(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("manifest"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// `apspark serve`: boots against a committed store, answers an HTTP
/// point query bit-identical to `apspark query`, and drains cleanly on
/// `quit`.
#[test]
fn serve_answers_http_queries_and_drains_on_quit() {
    use std::io::{BufRead, BufReader, Read, Write};

    let graph = temp("serve-g.txt");
    let store = temp("serve-store");
    let _ = std::fs::remove_dir_all(&store);
    let out = bin()
        .args(["generate", "--n", "48", "--seed", "3", "--output"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["solve", "--input"])
        .arg(&graph)
        .args(["--cores", "2", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut child = bin()
        .args(["serve", "--store"])
        .arg(&store)
        .args([
            "--port",
            "0",
            "--workers",
            "1",
            "--queue-depth",
            "1",
            "--stats",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));

    // The banner carries the bound (ephemeral) address.
    let addr = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read banner") > 0,
            "server exited before printing its address"
        );
        if let Some(rest) = line.split("http://").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };

    // One query over HTTP, compared against `apspark query` on the same
    // store.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"GET /dist?src=0&dst=47 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");

    let out = bin()
        .args(["query", "--store"])
        .arg(&store)
        .args(["--dist", "0", "47"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    let cli_line = text
        .lines()
        .find(|l| l.starts_with("dist(0, 47) = "))
        .unwrap_or_else(|| panic!("no dist line in: {text}"));
    let cli_value = cli_line.trim_start_matches("dist(0, 47) = ");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    if cli_value == "unreachable" {
        assert!(body.contains("\"value\":null"), "{body}");
    } else {
        assert!(
            body.contains(&format!("\"value\":{cli_value}")),
            "CLI said {cli_value}, HTTP said {body}"
        );
    }

    // Drain on 'quit'; --stats prints the service counters.
    child
        .stdin
        .as_mut()
        .expect("child stdin")
        .write_all(b"quit\n")
        .unwrap();
    let mut remainder = String::new();
    reader.read_to_string(&mut remainder).unwrap();
    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "serve exited nonzero: {remainder}");
    assert!(remainder.contains("served"), "{remainder}");
    assert!(remainder.contains("service:"), "{remainder}");

    let _ = std::fs::remove_file(graph);
    let _ = std::fs::remove_dir_all(store);
}
