//! End-to-end tests of the `Problem → Plan → Solution` front door:
//! capability-rule regressions, bit-exactness of plan-executed solves
//! against the explicitly-configured expert layer, and the `explain()`
//! report.

use apspark::core::plan::{Problem, SolverId, Workload};
use apspark::core::{
    algebra::{transitive_closure, widest_paths},
    directed::DirectedFloydWarshall2D,
    ApspSolver, SolverConfig,
};
use apspark::graph::{bottleneck, generators, Graph};
use apspark::prelude::{BlockedCollectBroadcast, SparkConfig, SparkContext};
use proptest::prelude::*;

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(2))
}

// ---------------------------------------------------------------------------
// Capability-rule regressions
// ---------------------------------------------------------------------------

/// The satellite regression: directed + paths must never select
/// `DirectedBlockedCB` (it rejects `with_paths`); the plan falls back to
/// `DirectedFloydWarshall2D` and `explain()` names the rule.
#[test]
fn directed_paths_never_selects_directed_cb() {
    let g = generators::erdos_renyi_directed(24, 0.15, 5);
    let sc = ctx();
    let plan = Problem::from_digraph(&g).with_paths().plan(&sc).unwrap();
    assert_eq!(plan.solver, SolverId::DirectedFloydWarshall2D);
    assert!(
        plan.notes().iter().any(|n| n.rule == "paths-fallback"),
        "the fallback rule must be recorded: {:?}",
        plan.notes()
    );
    assert!(
        plan.explain().contains("paths-fallback"),
        "explain() must name the rule:\n{}",
        plan.explain()
    );

    // Even an explicit preference for DirectedBlockedCB is overridden.
    let pinned = Problem::from_digraph(&g)
        .with_paths()
        .prefer(SolverId::DirectedBlockedCB)
        .plan(&sc)
        .unwrap();
    assert_eq!(pinned.solver, SolverId::DirectedFloydWarshall2D);

    // And the executed solve round-trips real directed paths.
    let sol = Problem::from_digraph(&g).with_paths().solve(&sc).unwrap();
    let oracle = apspark::graph::apsp_dijkstra_directed(&g);
    for i in 0..24 {
        for j in 0..24 {
            let d = sol.dist(i, j);
            let o = oracle.get(i, j);
            match d {
                Some(v) => assert!((v - o).abs() < 1e-9, "({i},{j}): {v} vs {o}"),
                None => assert!(o.is_infinite(), "({i},{j}) should be reachable"),
            }
        }
    }
}

/// The paper's Table 3 move: a preferred Blocked-IM that the cluster
/// model marks infeasible at every block size falls back to Blocked-CB.
#[test]
fn infeasible_im_falls_back_to_cb() {
    let g = generators::erdos_renyi_paper(64, 0.1, 11);
    let sc = ctx();
    // A "cluster" sized so the single-block decomposition overflows RAM
    // (q = 1 would make IM's staging bounded, like CB's) and the local
    // staging cannot absorb IM's *cumulative* shuffle spill at any
    // remaining block size, while CB's bounded-per-iteration staging
    // still fits: at n = 64 the b = 32 working set is ~49 KB resident,
    // IM spills ~30 KB cumulative, CB ~15 KB per iteration.
    let mut spec = apspark::cluster::ClusterSpec::local(2);
    spec.ram_per_node_bytes = 50_000;
    spec.ssd_capacity_bytes = 20_000;
    let plan = Problem::new(&g)
        .prefer(SolverId::BlockedInMemory)
        .on_cluster(spec.clone())
        .plan(&sc)
        .unwrap();
    assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
    assert!(
        plan.notes()
            .iter()
            .any(|n| n.rule == "im-infeasible-fallback"),
        "Table 3 fallback must be recorded: {:?}",
        plan.notes()
    );
    assert!(plan.explain().contains("im-infeasible-fallback"));

    // Sanity: with a roomy cluster the preference is honored.
    let roomy = Problem::new(&g)
        .prefer(SolverId::BlockedInMemory)
        .plan(&sc)
        .unwrap();
    assert_eq!(roomy.solver, SolverId::BlockedInMemory);
}

#[test]
fn undirected_paths_fallback_from_pathless_solvers() {
    let g = generators::erdos_renyi_paper(32, 0.1, 3);
    let plan = Problem::new(&g)
        .with_paths()
        .prefer(SolverId::DistributedJohnson)
        .plan(&ctx())
        .unwrap();
    assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
    assert!(plan.notes().iter().any(|n| n.rule == "paths-fallback"));
}

#[test]
fn algebra_workloads_fall_back_from_non_algebra_solvers() {
    let g = generators::erdos_renyi_paper(32, 0.1, 4);
    let plan = Problem::new(&g)
        .workload(Workload::Widest)
        .prefer(SolverId::MpiDc)
        .plan(&ctx())
        .unwrap();
    assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
    assert!(plan.notes().iter().any(|n| n.rule == "algebra-fallback"));
}

// ---------------------------------------------------------------------------
// Bit-exactness: a plan-executed solve equals the explicitly-configured
// solver it selected, across all three workloads, at kernel-tier
// boundary sides.
// ---------------------------------------------------------------------------

/// Sides around the kernel-tier boundaries: 1 (degenerate), and 127–129
/// (the branchless < 128 ≤ packed dispatch edge).
const BOUNDARY_SIDES: [usize; 4] = [1, 127, 128, 129];

/// A boundary-side test graph: the degenerate single vertex at n = 1,
/// the paper's random family otherwise.
fn boundary_graph(n: usize, seed: u64) -> Graph {
    if n < 2 {
        Graph::new(n)
    } else {
        generators::erdos_renyi_paper(n, 0.1, seed)
    }
}

#[test]
fn plan_executed_shortest_paths_bit_exact_with_expert_layer() {
    let sc = ctx();
    for n in BOUNDARY_SIDES {
        let g = boundary_graph(n, n as u64);
        let problem = Problem::new(&g);
        let plan = problem.plan(&sc).unwrap();
        let sol = problem.execute(&sc, plan.clone()).unwrap();
        assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
        let explicit = BlockedCollectBroadcast
            .solve(&sc, &g.to_dense(), &plan.solver_config())
            .unwrap();
        assert_eq!(
            sol.distances().unwrap().data(),
            explicit.distances().data(),
            "n={n}: planned vs explicit distances must be bit-exact"
        );
    }
}

#[test]
fn plan_executed_widest_bit_exact_with_expert_layer() {
    let sc = ctx();
    for n in BOUNDARY_SIDES {
        let g = boundary_graph(n, 7 + n as u64);
        let problem = Problem::new(&g).workload(Workload::Widest);
        let plan = problem.plan(&sc).unwrap();
        let sol = problem.execute(&sc, plan.clone()).unwrap();
        let explicit =
            widest_paths(&sc, &g, &BlockedCollectBroadcast, &plan.solver_config()).unwrap();
        assert_eq!(
            sol.widths().unwrap().data(),
            explicit.values().data(),
            "n={n}: planned vs explicit widths must be bit-exact"
        );
    }
}

#[test]
fn plan_executed_reachability_bit_exact_with_expert_layer() {
    let sc = ctx();
    for n in BOUNDARY_SIDES {
        let g = boundary_graph(n, 99 + n as u64);
        let problem = Problem::new(&g).workload(Workload::Reachability);
        let plan = problem.plan(&sc).unwrap();
        let sol = problem.execute(&sc, plan.clone()).unwrap();
        let explicit =
            transitive_closure(&sc, &g, &BlockedCollectBroadcast, &plan.solver_config()).unwrap();
        assert_eq!(
            sol.reachability().unwrap().data(),
            explicit.values().data(),
            "n={n}: planned vs explicit closure must be bit-exact"
        );
    }
}

/// Pinned block sizes at the dispatch edge run through the same kernels
/// as the expert layer (tier selection happens per block side).
#[test]
fn pinned_boundary_block_sizes_stay_bit_exact() {
    let sc = ctx();
    let n = 129;
    let g = generators::erdos_renyi_paper(n, 0.1, 17);
    for b in [127, 128, 129] {
        let problem = Problem::new(&g).block_size(b);
        let plan = problem.plan(&sc).unwrap();
        assert_eq!(plan.block_size, b);
        let sol = problem.execute(&sc, plan.clone()).unwrap();
        let explicit = BlockedCollectBroadcast
            .solve(&sc, &g.to_dense(), &plan.solver_config())
            .unwrap();
        assert_eq!(
            sol.distances().unwrap().data(),
            explicit.distances().data(),
            "b={b}"
        );
    }
}

// ---------------------------------------------------------------------------
// Tracked non-tropical workloads: witness validity
// ---------------------------------------------------------------------------

#[test]
fn widest_paths_witnesses_achieve_reported_width() {
    let sc = ctx();
    for seed in [1u64, 8, 21] {
        let g = generators::erdos_renyi_paper(40, 0.1, seed);
        let sol = Problem::new(&g)
            .workload(Workload::Widest)
            .with_paths()
            .solve(&sc)
            .unwrap();
        let caps = g.to_dense_capacities();
        let oracle = bottleneck::widest_paths(&g);
        for i in 0..40 {
            for j in 0..40 {
                assert_eq!(
                    sol.widths().unwrap().get(i, j),
                    oracle.get(i, j),
                    "seed {seed}: width ({i},{j}) diverges from the oracle"
                );
                if i == j {
                    continue;
                }
                match sol.path(i, j) {
                    None => assert!(!sol.reachable(i, j), "seed {seed}: ({i},{j})"),
                    Some(route) => {
                        assert_eq!(route.first(), Some(&(i as u32)));
                        assert_eq!(route.last(), Some(&(j as u32)));
                        let width = route
                            .windows(2)
                            .map(|w| caps.get(w[0] as usize, w[1] as usize))
                            .fold(f64::INFINITY, f64::min);
                        assert!(
                            route
                                .windows(2)
                                .all(|w| caps.get(w[0] as usize, w[1] as usize) > 0.0),
                            "seed {seed}: route uses a non-edge"
                        );
                        assert_eq!(
                            width,
                            sol.width(i, j).unwrap(),
                            "seed {seed}: witness ({i},{j}) does not achieve the width"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn reachability_witnesses_walk_real_edges() {
    let sc = ctx();
    let mut g = Graph::new(9);
    for i in 0..4u32 {
        g.add_edge(i, i + 1, 1.0); // chain 0..4
    }
    g.add_edge(6, 7, 1.0);
    let sol = Problem::new(&g)
        .workload(Workload::Reachability)
        .with_paths()
        .solve(&sc)
        .unwrap();
    let adj = g.to_dense();
    for i in 0..9 {
        for j in 0..9 {
            match sol.path(i, j) {
                None => assert!(!sol.reachable(i, j)),
                Some(route) => {
                    for w in route.windows(2) {
                        assert!(
                            adj.get(w[0] as usize, w[1] as usize).is_finite(),
                            "({i},{j}): hop {}->{} is not an edge",
                            w[0],
                            w[1]
                        );
                    }
                }
            }
        }
    }
    assert!(sol.path(0, 4).is_some());
    assert!(sol.path(0, 6).is_none());
}

// ---------------------------------------------------------------------------
// explain() snapshot
// ---------------------------------------------------------------------------

/// The full report for a pinned, deterministic problem. This is a
/// snapshot test: if the planner's rendering changes, update the
/// expected block deliberately.
#[test]
fn explain_snapshot() {
    let g = generators::grid(8, 12); // n = 96
    let sc = ctx();
    let plan = Problem::new(&g).with_paths().cores(2).plan(&sc).unwrap();
    let expected = "\
plan for n = 96 (undirected, shortest-paths, paths tracked)
  solver      = Blocked Collect/Broadcast (Algorithm 4)
  block size  = 64 (q = 2 blocks/side)
  kernel tier = auto -> Branchless (tracked tier)
  partitioner = multi-diagonal, 4 (2 x 2 cores) partitions
  projection  = Feasible, 2 iterations (cluster model: Blocked-CB)
  rules       = none (defaults applied cleanly)
";
    assert_eq!(plan.explain(), expected);
}

#[test]
fn explain_names_solver_and_block_size_for_directed_paths() {
    let g = generators::erdos_renyi_directed(30, 0.15, 2);
    let plan = Problem::from_digraph(&g).with_paths().plan(&ctx()).unwrap();
    let report = plan.explain();
    assert!(report.contains("Directed 2D Floyd-Warshall"), "{report}");
    assert!(report.contains("block size"), "{report}");
    assert!(report.contains("[paths-fallback]"), "{report}");
}

// ---------------------------------------------------------------------------
// Property tests: planned solves agree with the sequential oracles on
// arbitrary graphs (the planner must never pick a wrong-answer config).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn planned_solves_match_oracles(n in 2usize..40, seed in 0u64..500, paths in proptest::any::<bool>()) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let sc = ctx();

        // Shortest paths vs Floyd-Warshall.
        let mut problem = Problem::new(&g);
        if paths {
            problem = problem.with_paths();
        }
        let sol = problem.solve(&sc).unwrap();
        let oracle = apspark::graph::floyd_warshall(&g);
        prop_assert!(sol.distances().unwrap().approx_eq(&oracle, 1e-9).is_ok());
        if paths {
            for i in 0..n {
                for j in 0..n {
                    if let Some(route) = sol.path(i, j) {
                        let sum: f64 = route
                            .windows(2)
                            .map(|w| g.to_dense().get(w[0] as usize, w[1] as usize))
                            .sum();
                        prop_assert!((sum - oracle.get(i, j)).abs() < 1e-9);
                    }
                }
            }
        }

        // Widest paths vs the modified-Dijkstra oracle.
        let wide = Problem::new(&g).workload(Workload::Widest).solve(&sc).unwrap();
        let wide_oracle = bottleneck::widest_paths(&g);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(wide.widths().unwrap().get(i, j), wide_oracle.get(i, j));
            }
        }

        // Reachability vs BFS components.
        let reach = Problem::new(&g).workload(Workload::Reachability).solve(&sc).unwrap();
        let reach_oracle = bottleneck::reachability_bfs(&g);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(reach.reachability().unwrap().get(i, j), reach_oracle[i * n + j]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Odds and ends
// ---------------------------------------------------------------------------

#[test]
fn planned_directed_tracked_solve_matches_explicit_directed_fw2d() {
    let g = generators::erdos_renyi_directed(33, 0.15, 9);
    let sc = ctx();
    let problem = Problem::from_digraph(&g).with_paths();
    let plan = problem.plan(&sc).unwrap();
    let sol = problem.execute(&sc, plan.clone()).unwrap();
    let explicit = DirectedFloydWarshall2D
        .solve(&sc, &g.to_dense(), &plan.solver_config())
        .unwrap();
    assert_eq!(
        sol.distances().unwrap().data(),
        explicit.distances().data(),
        "planned directed solve must be bit-exact with the explicit call"
    );
}

#[test]
fn mpi_baselines_are_schedulable_via_prefer() {
    let g = generators::erdos_renyi_paper(24, 0.1, 13);
    let sc = ctx();
    for id in [SolverId::MpiFw2d, SolverId::MpiDc] {
        let sol = Problem::new(&g).prefer(id).solve(&sc).unwrap();
        assert_eq!(sol.plan.solver, id);
        let oracle = apspark::graph::floyd_warshall(&g);
        assert!(
            sol.distances().unwrap().approx_eq(&oracle, 1e-9).is_ok(),
            "{id:?}"
        );
    }
}

#[test]
fn solver_config_compiles_the_plan_down() {
    let g = generators::erdos_renyi_paper(48, 0.1, 6);
    let plan = Problem::new(&g).with_paths().plan(&ctx()).unwrap();
    let cfg: SolverConfig = plan.solver_config();
    assert_eq!(cfg.block_size, plan.block_size);
    assert!(cfg.track_paths);
}

#[test]
fn widest_with_paths_runs_on_all_four_algebra_solvers() {
    // The planner defaults to CB; the other algebra solvers remain
    // schedulable and agree.
    let g = generators::erdos_renyi_paper(20, 0.1, 31);
    let sc = ctx();
    let reference = Problem::new(&g)
        .workload(Workload::Widest)
        .with_paths()
        .solve(&sc)
        .unwrap();
    for id in [
        SolverId::BlockedInMemory,
        SolverId::FloydWarshall2D,
        SolverId::RepeatedSquaring,
    ] {
        let sol = Problem::new(&g)
            .workload(Workload::Widest)
            .with_paths()
            .prefer(id)
            .solve(&sc)
            .unwrap();
        assert_eq!(sol.plan.solver, id);
        assert_eq!(
            sol.widths().unwrap().data(),
            reference.widths().unwrap().data(),
            "{id:?} widths diverge"
        );
        // Witnesses may differ between solvers but must all be valid.
        let caps = g.to_dense_capacities();
        for i in 0..20 {
            for j in 0..20 {
                if let Some(route) = sol.path(i, j) {
                    let width = route
                        .windows(2)
                        .map(|w| caps.get(w[0] as usize, w[1] as usize))
                        .fold(f64::INFINITY, f64::min);
                    assert_eq!(width, sol.width(i, j).unwrap(), "{id:?} ({i},{j})");
                }
            }
        }
    }
}
