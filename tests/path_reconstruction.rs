//! Integration: path reconstruction round-trips for **all seven tracking
//! solvers** (four Spark, two MPI, and the directed 2D Floyd-Warshall).
//!
//! The acceptance invariant of the parent-tracking subsystem: for every
//! solver, on random instances, (a) tracked distances agree with the
//! Dijkstra oracle, and (b) every reconstructed path walks real edges of
//! the input and its edge-sum equals the reported distance
//! (`validate_against`, which exercises `reconstruct` for all `n²` pairs).

use apspark::core::directed::DirectedFloydWarshall2D;
use apspark::core::{MpiDcApsp, MpiFw2d};
use apspark::graph::paths::DistancesAndParents;
use apspark::graph::{dijkstra, generators};
use apspark::prelude::*;

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(4))
}

/// Random instances shared by all solver checks: a paper-family random
/// graph with an uneven tail block, plus a structured long-path graph.
fn instances() -> Vec<apspark::graph::Graph> {
    vec![
        generators::erdos_renyi_paper(61, 0.1, 0xC0FFEE),
        generators::path(23),
    ]
}

fn check(name: &str, g: &apspark::graph::Graph, dap: &DistancesAndParents) {
    let adj = g.to_dense();
    let oracle = dijkstra::apsp_dijkstra(g);
    assert!(
        dap.distances().approx_eq(&oracle, 1e-9).is_ok(),
        "{name}: tracked distances diverge from the Dijkstra oracle"
    );
    dap.validate_against(&adj, 1e-9)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
}

#[test]
fn spark_solvers_reconstruct_paths() {
    let solvers: [&dyn ApspSolver; 4] = [
        &RepeatedSquaring,
        &FloydWarshall2D,
        &BlockedInMemory,
        &BlockedCollectBroadcast,
    ];
    let sc = ctx();
    for g in &instances() {
        let adj = g.to_dense();
        for solver in solvers {
            let res = solver
                .solve(&sc, &adj, &SolverConfig::new(16).with_paths())
                .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
            let dap = res.into_paths().expect("with_paths must yield parents");
            check(solver.name(), g, &dap);
        }
    }
}

#[test]
fn directed_fw2d_reconstructs_directed_paths() {
    let sc = ctx();
    // Undirected instances are valid directed inputs; the directed
    // solver's tracked result must satisfy the same invariants ...
    for g in &instances() {
        let adj = g.to_dense();
        let res = DirectedFloydWarshall2D
            .solve(&sc, &adj, &SolverConfig::new(16).with_paths())
            .expect("directed tracked solve failed");
        let dap = res.into_paths().expect("with_paths must yield parents");
        check("Directed 2D FW", g, &dap);
    }
    // ... and on a genuinely one-way instance the reconstructed routes
    // must follow arc directions.
    let mut dg = apspark::graph::DiGraph::new(11);
    for i in 0..11u32 {
        dg.add_arc(i, (i + 1) % 11, 1.0);
    }
    let adj = dg.to_dense();
    let res = DirectedFloydWarshall2D
        .solve(&sc, &adj, &SolverConfig::new(4).with_paths())
        .unwrap();
    let dap = res.into_paths().unwrap();
    dap.validate_against(&adj, 1e-9)
        .unwrap_or_else(|e| panic!("one-way ring: {e}"));
    let p = dap.reconstruct(5, 4).unwrap();
    assert_eq!(p.len(), 11, "5 → 4 must walk all the way around the ring");
}

#[test]
fn mpi_baselines_reconstruct_paths() {
    for g in &instances() {
        let adj = g.to_dense();

        let (run, parents) = MpiFw2d::new(2)
            .solve_matrix_paths(&adj)
            .expect("FW-2D tracked solve failed");
        check(
            "MPI FW-2D",
            g,
            &DistancesAndParents::new(run.distances, parents),
        );

        let (run, parents) = MpiDcApsp::new(3)
            .solve_matrix_paths(&adj)
            .expect("DC tracked solve failed");
        check(
            "MPI DC",
            g,
            &DistancesAndParents::new(run.distances, parents),
        );
    }
}

#[test]
fn every_solver_finds_an_equal_weight_route_between_fixed_endpoints() {
    // A graph where the shortest 0 → 9 route is unique: a chain of cheap
    // edges under a costly shortcut. Every solver must reconstruct it.
    let mut g = apspark::graph::Graph::new(10);
    for i in 0..9u32 {
        g.add_edge(i, i + 1, 1.0);
    }
    g.add_edge(0, 9, 25.0); // decoy
    let adj = g.to_dense();
    let want: Vec<u32> = (0..10).collect();

    let sc = ctx();
    let spark: [&dyn ApspSolver; 4] = [
        &RepeatedSquaring,
        &FloydWarshall2D,
        &BlockedInMemory,
        &BlockedCollectBroadcast,
    ];
    for solver in spark {
        let dap = solver
            .solve(&sc, &adj, &SolverConfig::new(4).with_paths())
            .unwrap()
            .into_paths()
            .unwrap();
        assert_eq!(
            dap.reconstruct(0, 9).unwrap(),
            want,
            "{} picked a non-optimal route",
            solver.name()
        );
    }
    let (run, parents) = MpiFw2d::new(2).solve_matrix_paths(&adj).unwrap();
    let dap = DistancesAndParents::new(run.distances, parents);
    assert_eq!(dap.reconstruct(0, 9).unwrap(), want, "MPI FW-2D");
    let (run, parents) = MpiDcApsp::new(2).solve_matrix_paths(&adj).unwrap();
    let dap = DistancesAndParents::new(run.distances, parents);
    assert_eq!(dap.reconstruct(0, 9).unwrap(), want, "MPI DC");
}
