//! Paper-scale projection shape: the orderings, crossovers, and
//! feasibility cliffs the evaluation section reports, asserted against
//! the calibrated cluster model through the public API.

use apspark::cluster::{
    project, ClusterSpec, KernelRates, PartitionerKind, SolverKind, SparkOverheads, Workload,
};
use apspark::core::tuner::{paper_candidates, suggest_block_size, tune_with_model};

const HOUR: f64 = 3_600.0;
const DAY: f64 = 86_400.0;

fn env() -> (ClusterSpec, KernelRates, SparkOverheads) {
    (
        ClusterSpec::paper_cluster(),
        KernelRates::paper(),
        SparkOverheads::default(),
    )
}

#[test]
fn headline_result_cb_solves_262k_in_hours() {
    // The abstract: "the best performing solver is able to handle APSP
    // problems with over 200,000 vertices on a 1024-core cluster".
    let (spec, rates, ov) = env();
    let (b, proj) = tune_with_model(
        SolverKind::BlockedCollectBroadcast,
        262_144,
        &spec,
        &rates,
        &ov,
        &paper_candidates(),
    )
    .expect("CB must be feasible at n=262144");
    assert!(
        proj.total_s < 12.0 * HOUR,
        "CB total {}h",
        proj.total_s / HOUR
    );
    assert!(proj.total_s > HOUR, "suspiciously fast: {}s", proj.total_s);
    assert!((512..=4096).contains(&b));
}

#[test]
fn naive_solvers_are_impractical_blocked_are_not() {
    let (spec, rates, ov) = env();
    let w = Workload::paper_default(262_144, 1024);
    let rs = project(SolverKind::RepeatedSquaring, &w, &spec, &rates, &ov);
    let fw = project(SolverKind::FloydWarshall2D, &w, &spec, &rates, &ov);
    let im = project(SolverKind::BlockedInMemory, &w, &spec, &rates, &ov);
    let cb = project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov);
    assert!(rs.total_s > 2.0 * DAY);
    assert!(fw.total_s > 30.0 * DAY);
    assert!(im.total_s < DAY);
    assert!(cb.total_s < im.total_s);
}

#[test]
fn weak_scaling_orderings_hold_at_every_p() {
    let rates = KernelRates::paper();
    let ov = SparkOverheads::default();
    for p in [64usize, 128, 256, 512, 1024] {
        let n = 256 * p;
        let spec = ClusterSpec::paper_cluster_with_cores(p);
        let (_, cb) = tune_with_model(
            SolverKind::BlockedCollectBroadcast,
            n,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        )
        .unwrap();
        let w = Workload::paper_default(n, 1024);
        let dc = project(SolverKind::MpiDc, &w, &spec, &rates, &ov);
        let fw = project(SolverKind::MpiFw2d, &w, &spec, &rates, &ov);
        // DC-GbE dominates everywhere (paper Fig. 5 / §5.5).
        assert!(dc.total_s < cb.total_s, "p={p}");
        assert!(dc.total_s < fw.total_s, "p={p}");
        // IM feasibility: everywhere except p=1024.
        let im = tune_with_model(
            SolverKind::BlockedInMemory,
            n,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        );
        assert_eq!(im.is_some(), p < 1024, "p={p}: IM feasibility");
        if let Some((_, im_proj)) = im {
            assert!(
                cb.total_s <= im_proj.total_s * 1.05,
                "p={p}: CB should not lose to IM"
            );
        }
    }
}

#[test]
fn spark_cb_beats_naive_mpi_only_at_scale() {
    // §5.5: "Spark-based solvers outperform naive MPI-based solution for
    // larger problem sizes" — i.e. there is a crossover.
    let rates = KernelRates::paper();
    let ov = SparkOverheads::default();
    let advantage = |p: usize| -> f64 {
        let n = 256 * p;
        let spec = ClusterSpec::paper_cluster_with_cores(p);
        let (_, cb) = tune_with_model(
            SolverKind::BlockedCollectBroadcast,
            n,
            &spec,
            &rates,
            &ov,
            &paper_candidates(),
        )
        .unwrap();
        let fw = project(
            SolverKind::MpiFw2d,
            &Workload::paper_default(n, 1024),
            &spec,
            &rates,
            &ov,
        );
        fw.total_s / cb.total_s // > 1 ⇒ CB wins
    };
    let at_64 = advantage(64);
    let at_1024 = advantage(1024);
    assert!(
        at_1024 > 1.2,
        "CB must clearly beat naive MPI at p=1024 (got {at_1024:.2}×)"
    );
    assert!(
        at_1024 > at_64,
        "CB's advantage must grow with scale ({at_64:.2} → {at_1024:.2})"
    );
}

#[test]
fn ph_at_b1_is_the_worst_configuration() {
    // Fig. 3: PH with B=1 is "especially pronounced" bad.
    let (spec, rates, ov) = env();
    let total = |partitioner, bfac| {
        let w = Workload {
            n: 131_072,
            b: 2048,
            partitions_per_core: bfac,
            partitioner,
        };
        project(SolverKind::BlockedInMemory, &w, &spec, &rates, &ov).total_s
    };
    let ph1 = total(PartitionerKind::PortableHash, 1);
    let ph2 = total(PartitionerKind::PortableHash, 2);
    let md1 = total(PartitionerKind::MultiDiagonal, 1);
    let md2 = total(PartitionerKind::MultiDiagonal, 2);
    assert!(ph1 > ph2 && ph1 > md1 && ph1 > md2, "PH/B=1 must be worst");
    assert!(md2 <= ph2, "MD must not lose to PH at B=2");
}

#[test]
fn heuristic_tuner_tracks_model_tuner() {
    // The closed-form suggestion should land within the feasible,
    // competitive region the model tuner finds.
    let (spec, rates, ov) = env();
    let b_heur = suggest_block_size(262_144, 1024, 2);
    let w = Workload::paper_default(262_144, b_heur);
    let heur = project(SolverKind::BlockedCollectBroadcast, &w, &spec, &rates, &ov);
    assert!(heur.feasibility.is_feasible());
    let (_, best) = tune_with_model(
        SolverKind::BlockedCollectBroadcast,
        262_144,
        &spec,
        &rates,
        &ov,
        &paper_candidates(),
    )
    .unwrap();
    assert!(
        heur.total_s < 2.5 * best.total_s,
        "heuristic pick {}s strays too far from model optimum {}s",
        heur.total_s,
        best.total_s
    );
}

#[test]
fn fig2_knee_is_where_the_paper_says() {
    // Fig. 2: sequential blocks stay fast "for b up to approximately
    // 3000" with the L3 bound near 1810. The tuner constant must agree.
    assert_eq!(apspark::core::tuner::CACHE_KNEE, 1810);
    // The paper-anchored rates put one b=1810 Floyd-Warshall block at
    // ~8 s — within the "very quickly" regime the paper describes, and
    // b=10000 in the minutes (Fig. 2 right edge ~1400 s).
    let rates = KernelRates::paper();
    assert!(rates.fw_block_s(1810) < 10.0);
    assert!((1_000.0..2_000.0).contains(&rates.fw_block_s(10_000)));
}
