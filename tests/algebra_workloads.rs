//! End-to-end validation of the generic path-algebra workloads: the
//! blocked solvers over the *(max, min)* bottleneck algebra against the
//! modified-Dijkstra oracle, and over the boolean algebra against BFS
//! reachability — including property-based random instances and the
//! kernel-tier boundary block sides (1–129) the tropical suites sweep.

use apspark::core::algebra::{transitive_closure, widest_paths, AlgebraSolver};
use apspark::graph::bottleneck::{reachability_bfs, widest_paths as widest_oracle};
use apspark::graph::generators;
use apspark::prelude::*;
use proptest::prelude::*;

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(4))
}

fn check_widest(g: &Graph, solver: &impl AlgebraSolver, name: &str, b: usize) {
    let res = widest_paths(&ctx(), g, solver, &SolverConfig::new(b))
        .unwrap_or_else(|e| panic!("{name} b={b}: {e}"));
    let oracle = widest_oracle(g);
    let n = g.order();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                res.get(i, j),
                oracle.get(i, j),
                "{name} b={b}: widest({i},{j})"
            );
        }
    }
}

fn check_closure(g: &Graph, solver: &impl AlgebraSolver, name: &str, b: usize) {
    let res = transitive_closure(&ctx(), g, solver, &SolverConfig::new(b))
        .unwrap_or_else(|e| panic!("{name} b={b}: {e}"));
    let oracle = reachability_bfs(g);
    let n = g.order();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                res.get(i, j),
                oracle[i * n + j],
                "{name} b={b}: reach({i},{j})"
            );
        }
    }
}

/// The kernel-tier boundary sweep the tropical suites run: block sides
/// around the branchless/packed crossover, plus degenerate 1 and
/// larger-than-n.
#[test]
fn bottleneck_boundary_block_sides_match_dijkstra_oracle() {
    // Tiny sides with a small instance (q stays sane), the kernel-tier
    // crossover sides with a larger one.
    let small = generators::erdos_renyi_paper(18, 0.1, 0x71DE);
    for b in [1usize, 2, 3] {
        check_widest(&small, &BlockedCollectBroadcast, "CB", b);
        check_widest(&small, &BlockedInMemory, "IM", b);
    }
    let g = generators::erdos_renyi_paper(140, 0.1, 0x71DF);
    for b in [63usize, 64, 65, 127, 128, 129] {
        check_widest(&g, &BlockedCollectBroadcast, "CB", b);
        check_widest(&g, &BlockedInMemory, "IM", b);
    }
}

#[test]
fn boolean_boundary_block_sides_match_bfs_oracle() {
    let small = generators::erdos_renyi_paper(18, 0.1, 0xB000);
    for b in [1usize, 2, 3] {
        check_closure(&small, &BlockedCollectBroadcast, "CB", b);
        check_closure(&small, &BlockedInMemory, "IM", b);
    }
    let g = generators::erdos_renyi_paper(140, 0.1, 0xB001);
    for b in [63usize, 64, 65, 127, 128, 129] {
        check_closure(&g, &BlockedCollectBroadcast, "CB", b);
        check_closure(&g, &BlockedInMemory, "IM", b);
    }
}

#[test]
fn all_four_solvers_agree_on_both_workloads() {
    let g = generators::erdos_renyi_paper(48, 0.1, 0xA11);
    for b in [5usize, 12, 48] {
        check_widest(&g, &BlockedCollectBroadcast, "CB", b);
        check_widest(&g, &BlockedInMemory, "IM", b);
        check_widest(&g, &FloydWarshall2D, "FW2D", b);
        check_widest(&g, &RepeatedSquaring, "RS", b);
        check_closure(&g, &BlockedCollectBroadcast, "CB", b);
        check_closure(&g, &BlockedInMemory, "IM", b);
        check_closure(&g, &FloydWarshall2D, "FW2D", b);
        check_closure(&g, &RepeatedSquaring, "RS", b);
    }
}

#[test]
fn structured_families() {
    // Path: the widest i→j capacity is the minimum edge between them;
    // everything is reachable.
    let mut g = Graph::new(20);
    for i in 0..19u32 {
        g.add_edge(i, i + 1, 1.0 + (i % 5) as f64);
    }
    check_widest(&g, &BlockedCollectBroadcast, "CB", 6);
    check_closure(&g, &BlockedInMemory, "IM", 6);

    // Disconnected components: zero capacity / unreachable across.
    let mut h = Graph::new(15);
    h.add_edge(0, 1, 9.0);
    h.add_edge(1, 2, 4.0);
    h.add_edge(10, 11, 2.0);
    check_widest(&h, &BlockedInMemory, "IM", 4);
    check_closure(&h, &BlockedCollectBroadcast, "CB", 4);
    let res = transitive_closure(&ctx(), &h, &FloydWarshall2D, &SolverConfig::new(4)).unwrap();
    assert!(!res.get(0, 10));
    assert!(res.get(10, 11));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random instances: the blocked (max, min) solvers equal the
    /// modified-Dijkstra oracle for any order/block-size combination.
    #[test]
    fn prop_widest_cb_matches_oracle(n in 2usize..40, b in 1usize..48, seed in any::<u64>()) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let res = widest_paths(&ctx(), &g, &BlockedCollectBroadcast, &SolverConfig::new(b)).unwrap();
        let oracle = widest_oracle(&g);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(res.get(i, j), oracle.get(i, j), "({},{})", i, j);
            }
        }
    }

    /// Random instances: blocked boolean closure equals BFS reachability.
    #[test]
    fn prop_closure_im_matches_bfs(n in 2usize..40, b in 1usize..48, seed in any::<u64>()) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let res = transitive_closure(&ctx(), &g, &BlockedInMemory, &SolverConfig::new(b)).unwrap();
        let oracle = reachability_bfs(&g);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(res.get(i, j), oracle[i * n + j], "({},{})", i, j);
            }
        }
    }
}
