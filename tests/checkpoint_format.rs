//! Checkpoint format stability: a golden fixture written by the current
//! frame version must keep resuming bit-exactly forever, and any future
//! layout change must announce itself by bumping `FRAME_VERSION` — which
//! this suite proves is rejected with a typed error, not misread.
//!
//! The fixture under `tests/fixtures/checkpoint_v1/` was produced by:
//!
//! ```sh
//! apspark generate --n 16 --seed 9 --output g16.txt
//! apspark solve --input g16.txt --solver cb --block-size 8 \
//!     --checkpoint-dir tests/fixtures/checkpoint_v1
//! ```
//!
//! i.e. an untracked Blocked-CB solve of `G(16, 0.1, seed 9)` at `b = 8`
//! (`q = 2`), pruned to the final committed round.

use apspark::core::ApspError;
use apspark::graph::generators;
use apspark::prelude::*;

fn fixture_graph() -> Graph {
    generators::erdos_renyi_paper(16, 0.1, 9)
}

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("checkpoint_v1")
}

/// Copies the fixture into a scratch directory so corruption tests never
/// touch the committed blobs.
fn scratch_copy(tag: &str) -> std::path::PathBuf {
    let dst = std::env::temp_dir().join(format!("apsp-ckptfmt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dst);
    std::fs::create_dir_all(&dst).expect("create scratch dir");
    for entry in std::fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let entry = entry.expect("readable fixture entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy fixture blob");
    }
    dst
}

fn resume_from(dir: &std::path::Path) -> Result<Solution, ApspError> {
    let g = fixture_graph();
    Problem::new(&g)
        .prefer(SolverId::BlockedCollectBroadcast)
        .block_size(8)
        .resume(dir)
        .solve(&SparkContext::new(SparkConfig::with_cores(2)))
}

#[test]
fn golden_fixture_resumes_bit_exact() {
    let g = fixture_graph();
    let clean = Problem::new(&g)
        .prefer(SolverId::BlockedCollectBroadcast)
        .block_size(8)
        .solve(&SparkContext::new(SparkConfig::with_cores(2)))
        .expect("fresh solve");
    let resumed = resume_from(&fixture_dir())
        .unwrap_or_else(|e| panic!("the golden v1 fixture must stay readable forever: {e}"));
    assert!(
        resumed.distances() == clean.distances(),
        "fixture-resumed distances diverged from a fresh solve"
    );
}

#[test]
fn version_bumped_manifest_is_rejected_typed() {
    let dir = scratch_copy("version");
    let meta = dir.join("ckpt-meta-1");
    let mut bytes = std::fs::read(&meta).expect("fixture manifest");
    // Frame layout: magic [0..8], version u32 LE [8..12].
    bytes[8] = bytes[8].wrapping_add(1);
    std::fs::write(&meta, &bytes).expect("rewrite manifest");

    let err = match resume_from(&dir) {
        Err(e) => e,
        Ok(_) => panic!("a future-format manifest must not be readable"),
    };
    match &err {
        ApspError::Checkpoint(msg) => assert!(
            msg.contains("version"),
            "rejection must name the version mismatch, got: {msg}"
        ),
        other => panic!("expected ApspError::Checkpoint, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_rotted_block_is_rejected_by_checksum() {
    let dir = scratch_copy("rot");
    let block = dir.join("ckpt-1-0-1");
    let mut bytes = std::fs::read(&block).expect("fixture block");
    // Flip one bit in the body (header is 29 bytes).
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&block, &bytes).expect("rewrite block");

    let err = match resume_from(&dir) {
        Err(e) => e,
        Ok(_) => panic!("a corrupted block must not resume"),
    };
    match &err {
        ApspError::Checkpoint(msg) => assert!(
            msg.contains("checksum"),
            "rejection must name the checksum, got: {msg}"
        ),
        other => panic!("expected ApspError::Checkpoint, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_bytes_are_rejected_by_magic() {
    let dir = scratch_copy("magic");
    // Longer than a frame header, so the rejection is about the magic,
    // not about truncation.
    std::fs::write(dir.join("ckpt-meta-1"), [0x2a_u8; 64]).expect("rewrite manifest");
    let err = match resume_from(&dir) {
        Err(e) => e,
        Ok(_) => panic!("garbage must not resume"),
    };
    assert!(
        matches!(&err, ApspError::Checkpoint(msg) if msg.contains("magic")),
        "expected a magic rejection, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_block_is_rejected_typed() {
    let dir = scratch_copy("trunc");
    let block = dir.join("ckpt-1-0-0");
    let bytes = std::fs::read(&block).expect("fixture block");
    std::fs::write(&block, &bytes[..bytes.len() / 2]).expect("truncate block");
    let err = match resume_from(&dir) {
        Err(e) => e,
        Ok(_) => panic!("a truncated block must not resume"),
    };
    assert!(
        matches!(&err, ApspError::Checkpoint(msg) if msg.contains("truncated")),
        "expected a truncation rejection, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
