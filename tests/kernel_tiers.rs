//! Differential kernel-tier harness: every path algebra × every available
//! kernel tier, bit-exact against the trait's generic fallback loops.
//!
//! The fallback loop is reconstructed per algebra through a *shim* — an
//! algebra with the same semiring and no hook overrides, so it runs the
//! `PathAlgebra` default bodies verbatim. Each specialized tier (and every
//! hook without a kernel argument) must reproduce those results exactly at
//! the bitset word boundary (63/64/65) and the dispatch thresholds
//! (127/128/129), including all-true/all-false and all-INF/zero-capacity
//! planes.
//!
//! The proptest block then drives the specialized tiers end-to-end:
//! plan-executed `Widest` and `Reachability` solves with pinned kernels
//! against the max-heap-Dijkstra and BFS oracles, witness routes included.

use apspark::blockmat::algebra::Elem;
use apspark::blockmat::kernels::MinPlusKernel;
use apspark::blockmat::{
    AlgBlock, BoolSemiring, BottleneckF64, Offsets, PathAlgebra, Reachability, TrackedReachability,
    TrackedTropical, TrackedWidest, Tropical, TropicalF64, Widest, INF, NO_VIA,
};
use apspark::core::algebra::{transitive_closure, widest_paths};
use apspark::graph::bottleneck::{reachability_bfs, widest_paths as widest_oracle};
use apspark::graph::generators;
use apspark::prelude::*;
use proptest::prelude::*;

/// The bitset word boundary and the branchless/packed dispatch thresholds.
const SIDES: [usize; 7] = [1, 63, 64, 65, 127, 128, 129];

/// Every non-oracle tier a product hook can dispatch to.
const TIERS: [MinPlusKernel; 5] = [
    MinPlusKernel::Branchless,
    MinPlusKernel::Tiled,
    MinPlusKernel::Packed,
    MinPlusKernel::Parallel,
    MinPlusKernel::Auto,
];

const O0: Offsets = Offsets {
    k: 0,
    row: 0,
    col: 0,
};

fn rng(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Fallback shims: same semiring, no overrides => the generic default loops.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct SlowTropical;
impl PathAlgebra for SlowTropical {
    type Semi = TropicalF64;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "tropical (generic loops)";
    fn empty_payload() {}
    fn payload_for(_k_global: usize) {}
}

#[derive(Clone, Copy)]
struct SlowWidest;
impl PathAlgebra for SlowWidest {
    type Semi = BottleneckF64;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "bottleneck (generic loops)";
    fn empty_payload() {}
    fn payload_for(_k_global: usize) {}
}

#[derive(Clone, Copy)]
struct SlowReach;
impl PathAlgebra for SlowReach {
    type Semi = BoolSemiring;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "boolean (generic loops)";
    fn empty_payload() {}
    fn payload_for(_k_global: usize) {}
}

macro_rules! tracked_shim {
    ($name:ident, $semi:ty) => {
        #[derive(Clone, Copy)]
        struct $name;
        impl PathAlgebra for $name {
            type Semi = $semi;
            type Payload = u32;
            const TRACKS: bool = true;
            const NAME: &'static str = concat!(stringify!($name), " (generic loops)");
            fn empty_payload() -> u32 {
                NO_VIA
            }
            fn payload_for(k_global: usize) -> u32 {
                k_global as u32
            }
        }
    };
}

tracked_shim!(SlowTrackedTropical, TropicalF64);
tracked_shim!(SlowTrackedWidest, BottleneckF64);
tracked_shim!(SlowTrackedReach, BoolSemiring);

// ---------------------------------------------------------------------------
// The differential driver: every hook of `Fast` against every hook of the
// fallback shim `Slow`, on identical inputs.
// ---------------------------------------------------------------------------

fn diff_all_hooks<Fast, Slow>(n: usize, a: &[Elem<Fast>], b: &[Elem<Fast>], seed: &[Elem<Fast>])
where
    Fast: PathAlgebra<Payload = ()>,
    Slow: PathAlgebra<Semi = Fast::Semi, Payload = ()>,
{
    let mut pay = vec![(); n * n];
    let name = Fast::NAME;

    // Hooks with a kernel argument: one comparison per tier, against the
    // shim's generic loop computed once.
    let mut slow_fold = seed.to_vec();
    Slow::fold_product(MinPlusKernel::Naive, a, b, &mut slow_fold, &mut pay, n, O0);
    let mut slow_assign = seed.to_vec();
    Slow::product_assign(MinPlusKernel::Naive, &mut slow_assign, &mut pay, b, n, O0);
    let mut slow_left = seed.to_vec();
    Slow::product_left_assign(MinPlusKernel::Naive, &mut slow_left, &mut pay, b, n, O0);
    for kernel in TIERS {
        let mut fast = seed.to_vec();
        Fast::fold_product(kernel, a, b, &mut fast, &mut pay, n, O0);
        assert_eq!(slow_fold, fast, "{name} fold n={n} {kernel:?}");

        let mut fast = seed.to_vec();
        Fast::product_assign(kernel, &mut fast, &mut pay, b, n, O0);
        assert_eq!(slow_assign, fast, "{name} assign n={n} {kernel:?}");

        let mut fast = seed.to_vec();
        Fast::product_left_assign(kernel, &mut fast, &mut pay, b, n, O0);
        assert_eq!(slow_left, fast, "{name} left-assign n={n} {kernel:?}");
    }
    // The explicit oracle pin must also land on the fallback result.
    let mut fast = seed.to_vec();
    Fast::fold_product(MinPlusKernel::Naive, a, b, &mut fast, &mut pay, n, O0);
    assert_eq!(slow_fold, fast, "{name} fold n={n} Naive pin");

    // Kernel-free hooks: closure, rank-1 update, join.
    let mut slow = seed.to_vec();
    Slow::closure_in_place(&mut slow, &mut pay, n, 0);
    let mut fast = seed.to_vec();
    Fast::closure_in_place(&mut fast, &mut pay, n, 0);
    assert_eq!(slow, fast, "{name} closure n={n}");

    let col_i: Vec<Elem<Fast>> = (0..n).map(|i| a[i * n]).collect();
    let col_j: Vec<Elem<Fast>> = (0..n).map(|j| b[j * n]).collect();
    let mut slow = seed.to_vec();
    Slow::rank1_update(&mut slow, &mut pay, &col_i, &col_j, n, 0);
    let mut fast = seed.to_vec();
    Fast::rank1_update(&mut fast, &mut pay, &col_i, &col_j, n, 0);
    assert_eq!(slow, fast, "{name} rank1 n={n}");

    let op = vec![(); n * n];
    let mut slow = seed.to_vec();
    Slow::join(&mut slow, &mut pay, a, &op);
    let mut fast = seed.to_vec();
    Fast::join(&mut fast, &mut pay, a, &op);
    assert_eq!(slow, fast, "{name} join n={n}");
}

fn tropical_plane(n: usize, seed: u64, density: f64) -> Vec<f64> {
    let mut next = rng(seed);
    (0..n * n)
        .map(|idx| {
            if idx / n == idx % n {
                0.0
            } else if next() < density {
                1.0 + next() * 9.0
            } else {
                INF
            }
        })
        .collect()
}

fn capacity_plane(n: usize, seed: u64, density: f64) -> Vec<f64> {
    let mut next = rng(seed);
    (0..n * n)
        .map(|idx| {
            if idx / n == idx % n {
                INF
            } else if next() < density {
                1.0 + next() * 9.0
            } else {
                0.0
            }
        })
        .collect()
}

fn bool_plane(n: usize, seed: u64, density: f64) -> Vec<bool> {
    let mut next = rng(seed);
    (0..n * n)
        .map(|idx| idx / n == idx % n || next() < density)
        .collect()
}

#[test]
fn tropical_tiers_match_generic_fallback_at_boundary_sides() {
    for n in SIDES {
        diff_all_hooks::<Tropical, SlowTropical>(
            n,
            &tropical_plane(n, 11, 0.3),
            &tropical_plane(n, 12, 0.3),
            &tropical_plane(n, 13, 0.2),
        );
        // Degenerate planes: all-INF (no edges) and all-0.0 (everything
        // free) operands.
        diff_all_hooks::<Tropical, SlowTropical>(
            n,
            &vec![INF; n * n],
            &tropical_plane(n, 14, 0.3),
            &vec![INF; n * n],
        );
        diff_all_hooks::<Tropical, SlowTropical>(
            n,
            &vec![0.0; n * n],
            &vec![0.0; n * n],
            &tropical_plane(n, 15, 0.2),
        );
    }
}

#[test]
fn widest_tiers_match_generic_fallback_at_boundary_sides() {
    for n in SIDES {
        diff_all_hooks::<Widest, SlowWidest>(
            n,
            &capacity_plane(n, 21, 0.3),
            &capacity_plane(n, 22, 0.3),
            &capacity_plane(n, 23, 0.2),
        );
        // Zero-capacity (no pipes at all) and all-INF (unbounded pipes)
        // planes.
        diff_all_hooks::<Widest, SlowWidest>(
            n,
            &vec![0.0; n * n],
            &capacity_plane(n, 24, 0.3),
            &vec![0.0; n * n],
        );
        diff_all_hooks::<Widest, SlowWidest>(
            n,
            &vec![INF; n * n],
            &vec![INF; n * n],
            &capacity_plane(n, 25, 0.2),
        );
    }
}

#[test]
fn reachability_tiers_match_generic_fallback_at_boundary_sides() {
    for n in SIDES {
        diff_all_hooks::<Reachability, SlowReach>(
            n,
            &bool_plane(n, 31, 0.15),
            &bool_plane(n, 32, 0.15),
            &bool_plane(n, 33, 0.05),
        );
        // All-false and all-true planes around the u64 word boundary.
        diff_all_hooks::<Reachability, SlowReach>(
            n,
            &vec![false; n * n],
            &bool_plane(n, 34, 0.15),
            &vec![false; n * n],
        );
        diff_all_hooks::<Reachability, SlowReach>(
            n,
            &vec![true; n * n],
            &vec![true; n * n],
            &bool_plane(n, 35, 0.05),
        );
    }
}

// ---------------------------------------------------------------------------
// Tracked algebras: the specialized tracked tier (and the tracked generic
// loops the non-tropical algebras ride) against the shim defaults, values
// AND payloads.
// ---------------------------------------------------------------------------

fn diff_tracked<Fast, Slow>(n: usize, a: &[Elem<Fast>], b: &[Elem<Fast>], seed: &[Elem<Fast>])
where
    Fast: PathAlgebra<Payload = u32>,
    Slow: PathAlgebra<Semi = Fast::Semi, Payload = u32>,
{
    let name = Fast::NAME;
    // Disjoint global ranges (the solver-side common case), so recorded
    // vias must all fall inside the k range.
    let o = Offsets {
        k: 4 * n,
        row: 0,
        col: 9 * n,
    };
    for kernel in [
        MinPlusKernel::Naive,
        MinPlusKernel::Branchless,
        MinPlusKernel::Tiled,
        MinPlusKernel::Auto,
    ] {
        let mut fast = seed.to_vec();
        let mut fast_pay = vec![NO_VIA; n * n];
        Fast::fold_product(kernel, a, b, &mut fast, &mut fast_pay, n, o);
        let mut slow = seed.to_vec();
        let mut slow_pay = vec![NO_VIA; n * n];
        Slow::fold_product(MinPlusKernel::Naive, a, b, &mut slow, &mut slow_pay, n, o);
        assert_eq!(slow, fast, "{name} tracked fold n={n} {kernel:?}");
        assert_eq!(slow_pay, fast_pay, "{name} tracked vias n={n} {kernel:?}");
    }

    let mut fast = seed.to_vec();
    let mut fast_pay = vec![NO_VIA; n * n];
    Fast::closure_in_place(&mut fast, &mut fast_pay, n, 7 * n);
    let mut slow = seed.to_vec();
    let mut slow_pay = vec![NO_VIA; n * n];
    Slow::closure_in_place(&mut slow, &mut slow_pay, n, 7 * n);
    assert_eq!(slow, fast, "{name} tracked closure n={n}");
    assert_eq!(slow_pay, fast_pay, "{name} tracked closure vias n={n}");
}

#[test]
fn tracked_tiers_match_generic_fallback_at_boundary_sides() {
    for n in SIDES {
        diff_tracked::<TrackedTropical, SlowTrackedTropical>(
            n,
            &tropical_plane(n, 41, 0.3),
            &tropical_plane(n, 42, 0.3),
            &tropical_plane(n, 43, 0.2),
        );
        diff_tracked::<TrackedWidest, SlowTrackedWidest>(
            n,
            &capacity_plane(n, 44, 0.3),
            &capacity_plane(n, 45, 0.3),
            &capacity_plane(n, 46, 0.2),
        );
        diff_tracked::<TrackedReachability, SlowTrackedReach>(
            n,
            &bool_plane(n, 47, 0.15),
            &bool_plane(n, 48, 0.15),
            &bool_plane(n, 49, 0.05),
        );
    }
}

/// The untracked specialized engines and the tracked generic loops must
/// agree on values when run through [`AlgBlock`] at the same side — the
/// property that lets `with_paths` report the same widths/reachability the
/// packed tiers compute.
#[test]
fn tracked_values_match_specialized_tiers_through_algblock() {
    use apspark::blockmat::ElemBlock;
    for n in [63usize, 64, 65, 128] {
        let caps = ElemBlock::<BottleneckF64>::from_vec(n, capacity_plane(n, 51, 0.3));
        let mut fast = AlgBlock::<Widest>::from_dist(caps.clone());
        fast.floyd_warshall_in_place(0);
        let mut tracked = AlgBlock::<TrackedWidest>::from_dist(caps);
        tracked.floyd_warshall_in_place(0);
        assert_eq!(fast.dist().data(), tracked.dist().data(), "widest n={n}");

        let adj = ElemBlock::<BoolSemiring>::from_vec(n, bool_plane(n, 52, 0.05));
        let mut fast = AlgBlock::<Reachability>::from_dist(adj.clone());
        fast.floyd_warshall_in_place(0);
        let mut tracked = AlgBlock::<TrackedReachability>::from_dist(adj);
        tracked.floyd_warshall_in_place(0);
        assert_eq!(fast.dist().data(), tracked.dist().data(), "reach n={n}");
    }
}

// ---------------------------------------------------------------------------
// End-to-end: plan-executed solves on the specialized tiers vs the graph
// oracles, witness routes included.
// ---------------------------------------------------------------------------

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Plan-executed `Widest` with the packed tier forced, `with_paths`
    /// on, random graphs up to 3 blocks per side: widths must equal the
    /// max-heap-Dijkstra oracle and every witness route must achieve its
    /// reported width over real edges.
    #[test]
    fn prop_widest_forced_packed_tier_matches_dijkstra(
        n in 2usize..96,
        seed in any::<u64>(),
        pin in 0usize..3,
    ) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let b = n.div_ceil(3).max(1);
        let kernel = [MinPlusKernel::Packed, MinPlusKernel::Branchless, MinPlusKernel::Auto][pin];
        let sc = ctx();
        let oracle = widest_oracle(&g);
        let caps = g.to_dense_capacities();

        // Expert layer, kernel forced, no paths: the pure specialized tier.
        let res = widest_paths(
            &sc,
            &g,
            &BlockedCollectBroadcast,
            &SolverConfig::new(b).with_kernel(kernel),
        ).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(res.get(i, j), oracle.get(i, j), "width ({},{})", i, j);
            }
        }

        // Front door with witness tracking on top.
        let sol = Problem::new(&g)
            .workload(Workload::Widest)
            .with_paths()
            .block_size(b)
            .kernel(kernel)
            .solve(&sc)
            .unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    sol.widths().unwrap().get(i, j),
                    oracle.get(i, j),
                    "tracked width ({},{})", i, j
                );
                if i == j {
                    continue;
                }
                if let Some(route) = sol.path(i, j) {
                    prop_assert_eq!(route.first(), Some(&(i as u32)));
                    prop_assert_eq!(route.last(), Some(&(j as u32)));
                    let width = route
                        .windows(2)
                        .map(|w| caps.get(w[0] as usize, w[1] as usize))
                        .fold(f64::INFINITY, f64::min);
                    prop_assert!(width > 0.0, "({},{}): route uses a non-edge", i, j);
                    prop_assert_eq!(width, sol.width(i, j).unwrap(), "({},{})", i, j);
                } else {
                    prop_assert!(!sol.reachable(i, j), "({},{})", i, j);
                }
            }
        }
    }

    /// Plan-executed `Reachability` on the bitset tier, `with_paths` on,
    /// against BFS: same reachable set, and every witness route walks real
    /// edges.
    #[test]
    fn prop_reachability_bitset_tier_matches_bfs(
        n in 2usize..96,
        seed in any::<u64>(),
    ) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let b = n.div_ceil(3).max(1);
        let sc = ctx();
        let oracle = reachability_bfs(&g);
        let adj = g.to_dense();

        // Expert layer on the bitset tier (Auto always selects it).
        let res = transitive_closure(
            &sc,
            &g,
            &BlockedInMemory,
            &SolverConfig::new(b).with_kernel(MinPlusKernel::Auto),
        ).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(res.get(i, j), oracle[i * n + j], "reach ({},{})", i, j);
            }
        }

        let sol = Problem::new(&g)
            .workload(Workload::Reachability)
            .with_paths()
            .block_size(b)
            .solve(&sc)
            .unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(sol.reachable(i, j), oracle[i * n + j], "({},{})", i, j);
                if i == j {
                    continue;
                }
                if let Some(route) = sol.path(i, j) {
                    for w in route.windows(2) {
                        prop_assert!(
                            adj.get(w[0] as usize, w[1] as usize).is_finite(),
                            "({},{}): hop {}->{} is not an edge", i, j, w[0], w[1]
                        );
                    }
                }
            }
        }
    }
}
