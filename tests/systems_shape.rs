//! Systems-shape assertions: the paper's qualitative claims about *how*
//! each solver uses the engine, verified on live runs via the metrics.

use apspark::graph::generators;
use apspark::prelude::*;

fn solve_with_metrics(solver: &dyn ApspSolver, n: usize, b: usize) -> apspark::core::ApspResult {
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let g = generators::erdos_renyi_paper(n, 0.1, 0x5EED);
    solver
        .solve(&ctx, &g.to_dense(), &SolverConfig::new(b))
        .expect("solve failed")
}

#[test]
fn im_shuffles_more_than_cb_moves_total() {
    // The paper's core claim: replacing copy shuffles with driver +
    // shared-storage broadcast reduces data movement.
    let im = solve_with_metrics(&BlockedInMemory, 128, 16);
    let cb = solve_with_metrics(&BlockedCollectBroadcast, 128, 16);
    assert!(
        im.metrics.shuffle_bytes > 2 * cb.metrics.shuffle_bytes,
        "IM shuffle {} should dwarf CB shuffle {}",
        im.metrics.shuffle_bytes,
        cb.metrics.shuffle_bytes
    );
    let cb_movement = cb.metrics.total_movement_bytes();
    let im_movement = im.metrics.total_movement_bytes();
    assert!(
        im_movement > cb_movement,
        "IM total movement {im_movement} should exceed CB {cb_movement}"
    );
}

#[test]
fn fw2d_runs_one_job_per_vertex() {
    let n = 48;
    let res = solve_with_metrics(&FloydWarshall2D, n, 12);
    // One collect job per pivot + the final gather.
    assert_eq!(res.metrics.jobs, n as u64 + 1);
    assert_eq!(res.metrics.shuffles, 0, "FW2D must not shuffle");
    assert_eq!(res.metrics.side_channel_writes, 0, "FW2D is pure");
    assert!(res.metrics.broadcast_bytes > 0, "FW2D broadcasts columns");
}

#[test]
fn purity_flags_match_engine_usage() {
    let solvers: Vec<Box<dyn ApspSolver>> = vec![
        Box::new(RepeatedSquaring),
        Box::new(FloydWarshall2D),
        Box::new(BlockedInMemory),
        Box::new(BlockedCollectBroadcast),
    ];
    for solver in solvers {
        let res = solve_with_metrics(solver.as_ref(), 64, 16);
        let used_side_channel = res.metrics.side_channel_writes > 0;
        assert_eq!(
            solver.is_pure(),
            !used_side_channel,
            "{}: purity flag disagrees with side-channel usage",
            solver.name()
        );
    }
}

#[test]
fn blocked_iteration_counts_follow_q() {
    for (n, b, expected_q) in [
        (64usize, 16usize, 4u64),
        (60, 16, 4),
        (64, 64, 1),
        (100, 30, 4),
    ] {
        let im = solve_with_metrics(&BlockedInMemory, n, b);
        assert_eq!(im.iterations, expected_q, "IM n={n} b={b}");
        let cb = solve_with_metrics(&BlockedCollectBroadcast, n, b);
        assert_eq!(cb.iterations, expected_q, "CB n={n} b={b}");
    }
}

#[test]
fn rs_iteration_count_is_q_log_n() {
    let res = solve_with_metrics(&RepeatedSquaring, 64, 16);
    assert_eq!(res.iterations, 4 * 6); // q=4, ceil(log2 64)=6
}

#[test]
fn repartition_keeps_partition_count_bounded() {
    // §5.2: without partitionBy, union compounds partition counts. The
    // blocked solvers repartition every iteration, so the task count per
    // job stays bounded: jobs × partitions is the ceiling for tasks
    // launched in the final stages.
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let g = generators::erdos_renyi_paper(96, 0.1, 77);
    let cfg = SolverConfig::new(12).with_partitions(8);
    let res = BlockedInMemory.solve(&ctx, &g.to_dense(), &cfg).unwrap();
    let q = 8u64;
    assert_eq!(res.iterations, q);
    // Tasks: if partition counts compounded geometrically this would
    // explode far past this bound.
    assert!(
        res.metrics.tasks < 6_000,
        "task count {} suggests partition blowup",
        res.metrics.tasks
    );
}

#[test]
fn cb_side_channel_volume_scales_with_q_not_n2() {
    // CB stages the cross (O(q·b²) per iteration, O(q²b²) = O(n²) total)
    // but must NOT stage q× that (a naive all-blocks staging would).
    let small_b = solve_with_metrics(&BlockedCollectBroadcast, 128, 16); // q=8
    let large_b = solve_with_metrics(&BlockedCollectBroadcast, 128, 64); // q=2
    let per_iter_small = small_b.metrics.side_channel_bytes_written / small_b.iterations;
    let per_iter_large = large_b.metrics.side_channel_bytes_written / large_b.iterations;
    // Per-iteration staging = (q+1 blocks)·b²·8: for q=8,b=16: ~18KB; for
    // q=2,b=64: ~98KB. Ratios, not absolutes:
    let expect_small = (8 + 1) * 16 * 16 * 8;
    let expect_large = (2 + 1) * 64 * 64 * 8;
    assert!(
        per_iter_small < 2 * expect_small as u64,
        "per-iteration staging {per_iter_small} too high (expected ~{expect_small})"
    );
    assert!(
        per_iter_large < 2 * expect_large as u64,
        "per-iteration staging {per_iter_large} too high (expected ~{expect_large})"
    );
}

#[test]
fn md_partitioner_balances_im_partitions() {
    // Fig. 3 bottom, asserted on the engine: MD's partition sizes for the
    // blocked matrix are within ±1 block; PH's are not (for this q/P).
    use apspark::core::{BlockedMatrix, PartitionerChoice};
    let ctx = SparkContext::new(SparkConfig::with_cores(4));
    let g = generators::erdos_renyi_paper(192, 0.1, 88);
    let adj = g.to_dense();
    let q = 192usize.div_ceil(8);
    let parts = 48;

    let md = BlockedMatrix::from_matrix(
        &ctx,
        &adj,
        8,
        PartitionerChoice::MultiDiagonal.build(q, parts),
    );
    let md_sizes = md.rdd.partition_sizes().unwrap();
    let (md_min, md_max) = (
        md_sizes.iter().min().unwrap(),
        md_sizes.iter().max().unwrap(),
    );
    assert!(md_max - md_min <= 1, "MD spread {md_min}..{md_max}");

    let ph = BlockedMatrix::from_matrix(
        &ctx,
        &adj,
        8,
        PartitionerChoice::PortableHash.build(q, parts),
    );
    let ph_sizes = ph.rdd.partition_sizes().unwrap();
    let ph_max = *ph_sizes.iter().max().unwrap();
    assert!(
        ph_max > md_max + 1,
        "PH max {ph_max} should exceed MD max {md_max}"
    );
}
