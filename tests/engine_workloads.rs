//! General dataflow workloads on `sparklet` — evidence the substrate is a
//! real engine, not an APSP-shaped special case. Word count, iterative
//! PageRank (the canonical RDD benchmark), and a join-based pipeline.

use apspark::sparklet::partitioner::{ModPartitioner, StdHashPartitioner};
use apspark::sparklet::{LongAccumulator, SparkConfig, SparkContext};
use std::sync::Arc;

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(4))
}

#[test]
fn word_count() {
    let sc = ctx();
    let docs = vec![
        "the quick brown fox".to_string(),
        "the lazy dog".to_string(),
        "the quick dog barks".to_string(),
    ];
    let counts = sc
        .parallelize(docs, 2)
        .flat_map(|line| {
            line.split_whitespace()
                .map(|w| (w.to_string(), 1u64))
                .collect()
        })
        .reduce_by_key(Arc::new(StdHashPartitioner::new(4)), |a, b| a + b);
    let mut out = counts.collect().unwrap();
    out.sort();
    let get = |w: &str| out.iter().find(|(k, _)| k == w).map(|(_, c)| *c);
    assert_eq!(get("the"), Some(3));
    assert_eq!(get("quick"), Some(2));
    assert_eq!(get("dog"), Some(2));
    assert_eq!(get("barks"), Some(1));
    assert_eq!(out.len(), 7);
}

#[test]
fn pagerank_converges_on_a_star() {
    // Star graph: hub 0 linked from all spokes; spokes linked from hub.
    let sc = ctx();
    let n = 20u64;
    let mut links: Vec<(u64, Vec<u64>)> = vec![(0, (1..n).collect())];
    links.extend((1..n).map(|v| (v, vec![0])));
    let partitioner: Arc<ModPartitioner> = Arc::new(ModPartitioner::new(4));
    let links_rdd = sc
        .parallelize(links, 4)
        .partition_by(partitioner.clone())
        .persist();

    let mut ranks = links_rdd.map_values(|_| 1.0f64);
    for _ in 0..80 {
        let contribs = links_rdd
            .join(&ranks, partitioner.clone())
            .flat_map(|(_, (outs, rank))| {
                let share = rank / outs.len() as f64;
                outs.into_iter().map(|d| (d, share)).collect()
            });
        ranks = contribs
            .reduce_by_key(partitioner.clone(), |a, b| a + b)
            .map_values(|s| 0.15 + 0.85 * s);
    }
    let out: std::collections::HashMap<u64, f64> = ranks.collect().unwrap().into_iter().collect();
    // Hub absorbs all spoke mass: rank(0) = 0.15 + 0.85·(n-1)·rank(spoke).
    let hub = out[&0];
    let spoke = out[&1];
    assert!(hub > 5.0 * spoke, "hub {hub} vs spoke {spoke}");
    let implied = 0.15 + 0.85 * (n - 1) as f64 * spoke;
    assert!(
        (hub - implied).abs() / hub < 1e-4,
        "fixpoint violated: {hub} vs {implied}"
    );
    // All spokes identical by symmetry.
    for v in 2..n {
        assert!((out[&v] - spoke).abs() < 1e-12);
    }
}

#[test]
fn join_pipeline_with_accumulator() {
    let sc = ctx();
    let orders: Vec<(u64, u64)> = (0..200).map(|i| (i % 10, i)).collect(); // customer -> order id
    let customers: Vec<(u64, String)> = (0..10).map(|c| (c, format!("cust{c}"))).collect();
    let dropped = LongAccumulator::new();
    let d = dropped.clone();
    let big_orders = sc.parallelize(orders, 8).filter(move |&(_, oid)| {
        if oid < 100 {
            d.add(1);
            false
        } else {
            true
        }
    });
    let joined = big_orders.join(
        &sc.parallelize(customers, 2),
        Arc::new(ModPartitioner::new(4)),
    );
    let total = joined.count().unwrap();
    assert_eq!(total, 100);
    assert_eq!(dropped.value(), 100);
}

#[test]
fn sample_coalesce_pipeline() {
    let sc = ctx();
    let rdd = sc.parallelize((0u64..50_000).collect(), 32);
    let approx_sum: u64 = rdd
        .sample(0.1, 99)
        .coalesce(4)
        .fold(0, |a, b| a + b)
        .unwrap();
    // E[sum of 10% sample] = 0.1 · N(N-1)/2 ≈ 1.25e8.
    let expect = 0.1 * (50_000.0 * 49_999.0 / 2.0);
    let ratio = approx_sum as f64 / expect;
    assert!(
        (0.9..1.1).contains(&ratio),
        "sampled sum off: ratio {ratio}"
    );
}

#[test]
fn deep_iterative_lineage_with_periodic_truncation() {
    // 100 chained maps with persist() checkpoints: exactly the lineage
    // pattern the APSP solvers create, at a depth that would catch
    // accidental recomputation blow-ups.
    let sc = ctx();
    let mut rdd = sc.parallelize(vec![0u64; 1000], 8);
    for i in 0..100 {
        rdd = rdd.map(move |x| x + (i % 3 == 0) as u64).persist();
        if i % 10 == 9 {
            let _ = rdd.count().unwrap();
        }
    }
    let out = rdd.collect().unwrap();
    let expect = (0..100).filter(|i| i % 3 == 0).count() as u64;
    assert!(out.iter().all(|&v| v == expect));
}
