//! Integration suite for the sparse hierarchical APSP path: planner
//! auto-routing, oracle equality (Dijkstra and the dense planner path),
//! degenerate inputs, path witnesses, and `Solution` point queries.

use apspark::core::hierarchy::{HierarchicalClosure, HierarchyConfig};
use apspark::core::ApspError;
use apspark::graph::{dijkstra, generators};
use apspark::prelude::*;

fn ctx() -> SparkContext {
    SparkContext::new(SparkConfig::with_cores(2))
}

/// Dense Dijkstra oracle, bit-exact on dyadic weights.
fn oracle(g: &Graph) -> Matrix {
    dijkstra::apsp_dijkstra(g)
}

fn assert_rows_match(h: &HierarchicalClosure, want: &Matrix, tol: f64, label: &str) {
    let n = h.order();
    for u in 0..n {
        let row = h.row(u).unwrap();
        for (v, &got) in row.iter().enumerate() {
            let w = want.get(u, v);
            if tol == 0.0 {
                assert!(
                    got.to_bits() == w.to_bits(),
                    "{label}: ({u},{v}) hierarchical {got} != oracle {w} (bit-exact)"
                );
            } else if w.is_finite() {
                assert!(
                    (got - w).abs() <= tol,
                    "{label}: ({u},{v}) hierarchical {got} != oracle {w}"
                );
            } else {
                assert!(
                    !got.is_finite(),
                    "{label}: ({u},{v}) finite {got}, want INF"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Planner routing
// ---------------------------------------------------------------------------

#[test]
fn planner_auto_routes_large_sparse_road_graphs() {
    let g = generators::road_grid(40, 40, 7);
    assert!(g.order() >= 1024 && g.density() <= 0.02);
    let sc = ctx();
    let plan = Problem::new(&g).plan(&sc).unwrap();
    assert_eq!(plan.solver, SolverId::SparseHierarchical);
    let explain = plan.explain();
    assert!(
        explain.contains("sparse-hierarchical"),
        "explain must name the routing rule:\n{explain}"
    );
}

#[test]
fn dense_and_small_inputs_keep_their_plans() {
    let sc = ctx();
    // Small grid: below the n >= 1024 gate, stays on the dense default.
    let small = generators::grid(8, 12);
    let plan = Problem::new(&small).plan(&sc).unwrap();
    assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
    assert!(!plan.explain().contains("sparse-hierarchical"));

    // Large but dense: fails the density gate.
    let dense = generators::erdos_renyi(1100, 0.1, 0xD15E);
    assert!(dense.density() > 0.02);
    let plan = Problem::new(&dense).plan(&sc).unwrap();
    assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
    assert!(!plan.explain().contains("sparse-hierarchical"));

    // The paper's threshold ER workload: sparse by density but an
    // expander — a BFS part has almost every vertex on its boundary, so
    // hierarchical routing would rebuild the dense solve as a skeleton.
    // The average-degree locality gate keeps it on the dense winner.
    let expander = generators::erdos_renyi_paper(1100, 0.1, 0xD15F);
    assert!(expander.density() <= 0.02, "threshold ER is sparse");
    assert!(expander.avg_degree() > 6.0, "but not bounded-degree");
    let plan = Problem::new(&expander).plan(&sc).unwrap();
    assert_eq!(plan.solver, SolverId::BlockedCollectBroadcast);
    assert!(!plan.explain().contains("sparse-hierarchical"));
}

#[test]
fn auto_routed_solve_matches_dijkstra_bit_for_bit() {
    let g = generators::road_grid(40, 40, 7);
    let sc = ctx();
    let sol = Problem::new(&g).solve(&sc).unwrap();
    let csr = g.to_csr();
    for s in [0usize, 41, 777, 1599] {
        let want = dijkstra::sssp(&csr, s);
        for (v, &w) in want.iter().enumerate() {
            let got = sol.try_dist(s, v).unwrap();
            if s == v {
                assert_eq!(got, Some(0.0));
            } else {
                let got = got.expect("road grid is connected");
                assert!(
                    got.to_bits() == w.to_bits(),
                    "({s},{v}): solve {got} != dijkstra {w}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Forced hierarchical solves vs oracles across generators
// ---------------------------------------------------------------------------

#[test]
fn forced_hierarchy_matches_oracle_on_grid() {
    let g = generators::grid(9, 7);
    let sc = ctx();
    let cfg = HierarchyConfig::default().with_target_part_size(8);
    let h = HierarchicalClosure::solve(&sc, &g, &cfg).unwrap();
    assert!(h.stats().parts > 1, "partition must be non-trivial");
    assert_rows_match(&h, &oracle(&g), 0.0, "grid(9,7)");
}

#[test]
fn forced_hierarchy_matches_oracle_on_random_geometric() {
    let g = generators::random_geometric(140, 0.18, 5);
    let sc = ctx();
    let cfg = HierarchyConfig::default().with_target_part_size(16);
    let h = HierarchicalClosure::solve(&sc, &g, &cfg).unwrap();
    assert_rows_match(&h, &oracle(&g), 1e-9, "random_geometric(140)");
}

#[test]
fn forced_hierarchy_is_bit_equal_on_road_grid() {
    let g = generators::road_grid(12, 11, 3);
    let sc = ctx();
    let cfg = HierarchyConfig::default().with_target_part_size(10);
    let h = HierarchicalClosure::solve(&sc, &g, &cfg).unwrap();
    assert_rows_match(&h, &oracle(&g), 0.0, "road_grid(12,11)");
}

#[test]
fn hierarchy_agrees_with_dense_planner_path() {
    let g = generators::road_grid(10, 13, 11);
    let sc = ctx();
    let dense = Problem::new(&g)
        .prefer(SolverId::BlockedCollectBroadcast)
        .solve(&sc)
        .unwrap();
    let hier = Problem::new(&g)
        .prefer(SolverId::SparseHierarchical)
        .solve(&sc)
        .unwrap();
    let n = g.order();
    for u in 0..n {
        for v in 0..n {
            let a = dense.try_dist(u, v).unwrap();
            let b = hier.try_dist(u, v).unwrap();
            match (a, b) {
                (Some(x), Some(y)) => assert!(
                    (x - y).abs() <= 1e-9,
                    "({u},{v}): dense {x} != hierarchical {y}"
                ),
                (None, None) => {}
                _ => panic!("({u},{v}): reachability disagrees: {a:?} vs {b:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Degenerate and adversarial inputs
// ---------------------------------------------------------------------------

#[test]
fn disconnected_components_stay_unreachable_end_to_end() {
    // Two 3-cycles with no bridge, plus one isolated vertex.
    let g = Graph::from_edges(
        7,
        [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (0, 2, 2.5),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (3, 5, 3.0),
        ],
    );
    let sc = ctx();
    let sol = Problem::new(&g)
        .prefer(SolverId::SparseHierarchical)
        .solve(&sc)
        .unwrap();
    let want = oracle(&g);
    for u in 0..7 {
        for v in 0..7 {
            let w = want.get(u, v);
            let got = sol.try_dist(u, v).unwrap();
            if w.is_finite() {
                assert_eq!(got, Some(w), "({u},{v})");
            } else {
                assert_eq!(got, None, "({u},{v}) should be unreachable");
            }
            assert_eq!(sol.try_reachable(u, v).unwrap(), w.is_finite());
        }
    }
}

#[test]
fn single_partition_degenerate_case_collapses_to_local_solve() {
    let g = generators::grid(4, 5);
    let sc = ctx();
    // Target part size >= n: one part, empty skeleton.
    let cfg = HierarchyConfig::default().with_target_part_size(64);
    let h = HierarchicalClosure::solve(&sc, &g, &cfg).unwrap();
    let s = h.stats();
    assert_eq!(s.parts, 1);
    assert_eq!(s.boundary_vertices, 0);
    assert_eq!(s.cut_edges, 0);
    assert_rows_match(&h, &oracle(&g), 0.0, "single-partition grid(4,5)");
}

#[test]
fn single_vertex_graph_solves() {
    let g = Graph::new(1);
    let sc = ctx();
    let h = HierarchicalClosure::solve(&sc, &g, &HierarchyConfig::default()).unwrap();
    assert_eq!(h.dist(0, 0), 0.0);
    assert_eq!(h.row(0).unwrap(), vec![0.0]);
}

// ---------------------------------------------------------------------------
// Path witnesses
// ---------------------------------------------------------------------------

/// Checks `DistancesAndParents::validate_against`'s invariant on the
/// stitched witnesses: every hop is a real edge and the edge-sum equals
/// the oracle distance. (Hierarchical solutions never materialize a
/// `ParentMatrix`, so the check walks `Solution::try_path` directly.)
#[test]
fn hierarchical_paths_are_valid_witnesses_end_to_end() {
    let g = generators::road_grid(9, 10, 21);
    let sc = ctx();
    let sol = Problem::new(&g)
        .with_paths()
        .prefer(SolverId::SparseHierarchical)
        .solve(&sc)
        .unwrap();
    let adj = g.to_dense();
    let want = oracle(&g);
    let n = g.order();
    for u in 0..n {
        for v in 0..n {
            let p = sol
                .try_path(u, v)
                .unwrap()
                .unwrap_or_else(|| panic!("({u},{v}) reachable but no path"));
            assert_eq!(p.first(), Some(&(u as u32)), "({u},{v}) wrong start");
            assert_eq!(p.last(), Some(&(v as u32)), "({u},{v}) wrong end");
            let mut sum = 0.0;
            for w in p.windows(2) {
                let e = adj.get(w[0] as usize, w[1] as usize);
                assert!(
                    e.is_finite() && w[0] != w[1],
                    "({u},{v}) path uses non-edge {}→{}",
                    w[0],
                    w[1]
                );
                sum += e;
            }
            let d = want.get(u, v);
            assert!(
                (sum - d).abs() <= 1e-9,
                "({u},{v}) witness sums to {sum}, oracle {d}"
            );
        }
    }
}

#[test]
fn untracked_hierarchical_solution_has_no_paths() {
    let g = generators::road_grid(6, 6, 2);
    let sc = ctx();
    let sol = Problem::new(&g)
        .prefer(SolverId::SparseHierarchical)
        .solve(&sc)
        .unwrap();
    assert_eq!(sol.try_path(0, g.order() - 1).unwrap(), None);
}

// ---------------------------------------------------------------------------
// Point queries and store interaction
// ---------------------------------------------------------------------------

#[test]
fn k_nearest_matches_brute_force_on_hierarchical_solution() {
    let g = generators::road_grid(8, 9, 13);
    let sc = ctx();
    let sol = Problem::new(&g)
        .prefer(SolverId::SparseHierarchical)
        .solve(&sc)
        .unwrap();
    let want = oracle(&g);
    let n = g.order();
    for u in [0usize, n / 2, n - 1] {
        for k in [1usize, 5, n] {
            let got = sol.try_k_nearest(u, k).unwrap();
            let mut brute: Vec<(u32, f64)> = (0..n)
                .filter(|&v| v != u && want.get(u, v).is_finite())
                .map(|v| (v as u32, want.get(u, v)))
                .collect();
            brute.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            brute.truncate(k);
            assert_eq!(got.len(), brute.len(), "u = {u}, k = {k}");
            for (g_pair, b_pair) in got.iter().zip(&brute) {
                assert_eq!(g_pair.0, b_pair.0, "u = {u}, k = {k}");
                assert!((g_pair.1 - b_pair.1).abs() <= 1e-12, "u = {u}, k = {k}");
            }
        }
    }
}

#[test]
fn hierarchical_solutions_refuse_to_persist() {
    let g = generators::road_grid(6, 7, 4);
    let sc = ctx();
    let sol = Problem::new(&g)
        .prefer(SolverId::SparseHierarchical)
        .solve(&sc)
        .unwrap();
    let dir = std::env::temp_dir().join("apspark-hier-save-refusal");
    match sol.save(&dir) {
        Err(ApspError::Store(msg)) => {
            assert!(msg.contains("lazily"), "unexpected refusal message: {msg}")
        }
        other => panic!("save must refuse on hierarchical solutions, got {other:?}"),
    }
    assert!(!dir.exists(), "refused save must not leave artifacts");
}
