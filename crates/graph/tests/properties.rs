//! Property-based tests of the graph layer: generator invariants and
//! oracle agreement.

use apsp_graph::{dijkstra, floyd_warshall, generators, johnson, paths};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn er_generator_respects_bounds(n in 2usize..120, p_milli in 0usize..1000, seed in any::<u64>()) {
        let g = generators::erdos_renyi(n, p_milli as f64 / 1000.0, seed);
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
        for (u, v, w) in g.edges() {
            prop_assert!(u < v, "generator must emit u < v");
            prop_assert!((1.0..10.0).contains(&w));
        }
    }

    #[test]
    fn er_generator_deterministic(n in 2usize..80, seed in any::<u64>()) {
        let a = generators::erdos_renyi(n, 0.2, seed);
        let b = generators::erdos_renyi(n, 0.2, seed);
        prop_assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn three_oracles_agree(n in 2usize..40, seed in any::<u64>()) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let fw = floyd_warshall(&g);
        let dj = dijkstra::apsp_dijkstra(&g);
        let jo = johnson::apsp_johnson(&g).unwrap();
        prop_assert!(fw.approx_eq(&dj, 1e-9).is_ok());
        prop_assert!(fw.approx_eq(&jo, 1e-9).is_ok());
    }

    #[test]
    fn apsp_is_metric(n in 2usize..32, seed in any::<u64>()) {
        let g = generators::erdos_renyi(n, 0.3, seed);
        let d = floyd_warshall(&g);
        for i in 0..n {
            prop_assert_eq!(d.get(i, i), 0.0);
            for j in 0..n {
                prop_assert_eq!(d.get(i, j), d.get(j, i));
                for k in 0..n {
                    prop_assert!(d.get(i, j) <= d.get(i, k) + d.get(k, j) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn components_partition_reachability(n in 2usize..40, seed in any::<u64>()) {
        // d(i,j) finite ⟺ same union-find component.
        let g = generators::erdos_renyi(n, 0.08, seed);
        let d = floyd_warshall(&g);
        let comps = g.connected_components();
        let mut finite_pairs = 0usize;
        for i in 0..n {
            for j in 0..n {
                if d.get(i, j).is_finite() {
                    finite_pairs += 1;
                }
            }
        }
        // If there is one component, all pairs finite; with c components
        // the finite count is the sum of squared component sizes ≤ n².
        if comps == 1 {
            prop_assert_eq!(finite_pairs, n * n);
        } else {
            prop_assert!(finite_pairs < n * n);
        }
    }

    #[test]
    fn directed_oracles_agree(n in 2usize..28, p_milli in 50usize..400, seed in any::<u64>()) {
        let g = generators::erdos_renyi_directed(n, p_milli as f64 / 1000.0, seed);
        let dj = apsp_graph::apsp_dijkstra_directed(&g);
        let mut fw = g.to_dense();
        fw.floyd_warshall_in_place();
        prop_assert!(dj.approx_eq(&fw, 1e-9).is_ok());
    }

    #[test]
    fn blocks_roundtrip_any_block_size(n in 1usize..40, b in 1usize..45, seed in any::<u64>()) {
        let g = generators::erdos_renyi(n, 0.3, seed);
        let m = g.to_dense();
        let q = n.div_ceil(b);
        let blocks = m.to_blocks(b);
        prop_assert_eq!(blocks.len(), q * q);
        let back = apsp_blockmat::Matrix::from_blocks(
            n,
            b,
            blocks.into_iter().enumerate().map(|(idx, blk)| ((idx / q, idx % q), blk)),
        );
        prop_assert_eq!(back, m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip property of the new via-matrix path subsystem: on any
    /// random instance, every reconstructed path walks real edges and its
    /// weight equals the Dijkstra oracle's distance.
    #[test]
    fn via_paths_round_trip_against_dijkstra(n in 2usize..48, seed in any::<u64>()) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let adj = g.to_dense();
        let dap = paths::floyd_warshall_vias(&adj);
        let oracle = dijkstra::apsp_dijkstra(&g);
        prop_assert!(dap.distances().approx_eq(&oracle, 1e-9).is_ok());
        prop_assert!(dap.validate_against(&adj, 1e-9).is_ok());
    }

    /// The tracked blocked Kleene closure agrees with the sequential
    /// via-tracking oracle for any block size, including b > n.
    #[test]
    fn tracked_closure_round_trips(n in 2usize..32, b in 1usize..40, seed in any::<u64>()) {
        let g = generators::erdos_renyi_paper(n, 0.1, seed);
        let adj = g.to_dense();
        let mut tc = apsp_blockmat::closure::TrackedClosure::from_matrix(&adj, b);
        tc.closure_in_place(apsp_blockmat::kernels::MinPlusKernel::Auto);
        let (dist, via) = tc.into_parts();
        let dap = paths::DistancesAndParents::new(
            dist,
            paths::ParentMatrix::from_vias(n, via),
        );
        let oracle = dijkstra::apsp_dijkstra(&g);
        prop_assert!(dap.distances().approx_eq(&oracle, 1e-9).is_ok());
        prop_assert!(dap.validate_against(&adj, 1e-9).is_ok());
    }
}
