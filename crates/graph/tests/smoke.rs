//! Crate-isolation smoke tests for `cargo test -p apsp-graph`: generator,
//! oracle, and I/O basics with hand-checkable answers.

use apsp_graph::{floyd_warshall, generators, io, Graph};

#[test]
fn path_graph_oracle_distances() {
    let d = floyd_warshall(&generators::path(5));
    assert_eq!(d.get(0, 4), 4.0);
    assert_eq!(d.get(2, 2), 0.0);
    assert_eq!(d.get(3, 1), 2.0);
}

#[test]
fn dijkstra_agrees_with_fw_on_er() {
    let g = generators::erdos_renyi_paper(64, 0.1, 11);
    let fw = floyd_warshall(&g);
    let dj = apsp_graph::dijkstra::apsp_dijkstra(&g);
    assert!(fw.approx_eq(&dj, 1e-9).is_ok());
}

#[test]
fn csr_reflects_edges() {
    let mut g = Graph::new(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    let csr = g.to_csr();
    let n1: Vec<_> = csr.neighbors(1).collect();
    assert_eq!(n1.len(), 2, "vertex 1 touches both edges");
}

#[test]
fn save_load_round_trip() {
    let path = std::env::temp_dir().join(format!("apsp-graph-smoke-{}.txt", std::process::id()));
    let g = generators::cycle(9);
    io::save_graph(&g, &path).unwrap();
    let back = io::load_graph(&path).unwrap();
    assert_eq!(back.order(), g.order());
    assert_eq!(back.num_edges(), g.num_edges());
    let _ = std::fs::remove_file(path);
}
