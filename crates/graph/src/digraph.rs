//! Directed graphs — the paper's §4 extension case ("by disregarding
//! symmetricity of A, our algorithms can be directly adopted for cases
//! where G is a directed graph").

use crate::Csr;
use apsp_blockmat::{Matrix, INF};

/// A directed weighted graph with non-negative arc weights.
#[derive(Clone, Debug)]
pub struct DiGraph {
    n: usize,
    arcs: Vec<(u32, u32, f64)>,
}

impl DiGraph {
    /// Creates an arcless digraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            arcs: Vec::new(),
        }
    }

    /// Creates a digraph from an arc list.
    pub fn from_arcs(n: usize, arcs: impl IntoIterator<Item = (u32, u32, f64)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v, w) in arcs {
            g.add_arc(u, v, w);
        }
        g
    }

    /// Adds the arc `u → v` with weight `w`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative/NaN weight.
    pub fn add_arc(&mut self, u: u32, v: u32, w: f64) {
        assert!((u as usize) < self.n, "endpoint {u} out of range");
        assert!((v as usize) < self.n, "endpoint {v} out of range");
        assert!(w >= 0.0, "arc weight must be non-negative, got {w}");
        self.arcs.push((u, v, w));
    }

    /// Number of vertices.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of stored arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Iterator over the arcs.
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.arcs.iter().copied()
    }

    /// Dense adjacency matrix (not symmetric in general).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::identity(self.n);
        for &(u, v, w) in &self.arcs {
            let (u, v) = (u as usize, v as usize);
            if u == v {
                continue;
            }
            if w < m.get(u, v) {
                m.set(u, v, w);
            }
        }
        m
    }

    /// Directed CSR (arcs kept one-way).
    pub fn to_csr(&self) -> Csr {
        Csr::from_directed_arcs(self.n, &self.arcs)
    }
}

/// Directed APSP oracle: per-source Dijkstra over the directed CSR.
pub fn apsp_dijkstra_directed(g: &DiGraph) -> Matrix {
    let csr = g.to_csr();
    let n = g.order();
    let mut out = Matrix::filled(n, INF);
    for s in 0..n {
        for (t, &d) in crate::dijkstra::sssp(&csr, s).iter().enumerate() {
            out.set(s, t, d);
        }
    }
    out
}

/// Validates a dense matrix as a directed-APSP input: zero diagonal,
/// non-negative weights (symmetry NOT required).
pub fn validate_directed_adjacency(m: &Matrix) -> Result<(), String> {
    let n = m.order();
    for i in 0..n {
        if m.get(i, i) != 0.0 {
            return Err(format!("diagonal entry ({i},{i}) is {}", m.get(i, i)));
        }
        for j in 0..n {
            let v = m.get(i, j);
            if v < 0.0 || v.is_nan() {
                return Err(format!("invalid weight {v} at ({i},{j})"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_way_cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n as u32 {
            g.add_arc(i, (i + 1) % n as u32, 1.0);
        }
        g
    }

    #[test]
    fn directed_distances_are_asymmetric() {
        let g = one_way_cycle(5);
        let mut d = g.to_dense();
        d.floyd_warshall_in_place();
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(1, 0), 4.0); // all the way around
        assert!(!d.is_symmetric());
    }

    #[test]
    fn dijkstra_matches_fw_directed() {
        let g = DiGraph::from_arcs(
            6,
            [
                (0, 1, 2.0),
                (1, 2, 3.0),
                (2, 0, 1.0),
                (2, 3, 4.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
                (0, 5, 10.0),
                (5, 0, 1.0),
            ],
        );
        let dj = apsp_dijkstra_directed(&g);
        let mut fw = g.to_dense();
        fw.floyd_warshall_in_place();
        assert!(dj.approx_eq(&fw, 1e-9).is_ok());
    }

    #[test]
    fn unreachable_direction_is_infinite() {
        let g = DiGraph::from_arcs(3, [(0, 1, 1.0), (1, 2, 1.0)]);
        let d = apsp_dijkstra_directed(&g);
        assert_eq!(d.get(0, 2), 2.0);
        assert_eq!(d.get(2, 0), INF);
    }

    #[test]
    fn validation_accepts_asymmetry_rejects_negative() {
        let g = one_way_cycle(4);
        assert!(validate_directed_adjacency(&g.to_dense()).is_ok());
        let mut bad = g.to_dense();
        bad.set(0, 2, -1.0);
        assert!(validate_directed_adjacency(&bad).is_err());
    }

    #[test]
    fn parallel_arcs_take_min() {
        let g = DiGraph::from_arcs(2, [(0, 1, 5.0), (0, 1, 2.0)]);
        assert_eq!(g.to_dense().get(0, 1), 2.0);
    }
}
