//! Shortest-*path* reconstruction.
//!
//! The paper computes only path lengths ("we focus on computing length of
//! all pairs shortest paths (i.e., no paths themselves)", §3). Downstream
//! users routinely need the witnesses too, so the library provides the
//! standard successor-matrix extension: Floyd-Warshall tracking, for each
//! pair `(i, j)`, the first hop of a shortest `i → j` path, from which any
//! path is extracted in `O(length)`.

use crate::Graph;
use apsp_blockmat::{Matrix, INF};

/// Distances plus a successor matrix for path extraction.
#[derive(Clone, Debug)]
pub struct PathMatrix {
    distances: Matrix,
    /// `succ[i*n + j]`: next vertex after `i` on a shortest `i → j` path
    /// (`u32::MAX` when unreachable or `i == j`).
    succ: Vec<u32>,
    n: usize,
}

const NONE: u32 = u32::MAX;

impl PathMatrix {
    /// The distance matrix.
    pub fn distances(&self) -> &Matrix {
        &self.distances
    }

    /// Shortest distance from `i` to `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.distances.get(i, j)
    }

    /// Extracts the vertex sequence of one shortest `i → j` path, or
    /// `None` when `j` is unreachable from `i`. The path includes both
    /// endpoints; `path(i, i)` is `[i]`.
    pub fn path(&self, i: usize, j: usize) -> Option<Vec<usize>> {
        assert!(i < self.n && j < self.n, "vertex out of range");
        if i == j {
            return Some(vec![i]);
        }
        if !self.distances.get(i, j).is_finite() {
            return None;
        }
        let mut out = vec![i];
        let mut cur = i;
        while cur != j {
            let next = self.succ[cur * self.n + j];
            debug_assert_ne!(next, NONE, "finite distance but broken successor chain");
            cur = next as usize;
            out.push(cur);
            debug_assert!(out.len() <= self.n, "successor cycle");
        }
        Some(out)
    }

    /// Checks the defining invariant: every reconstructed path's edge-sum
    /// equals the reported distance. Used by tests; `O(n³)` worst case.
    pub fn validate_against(&self, adjacency: &Matrix, tol: f64) -> Result<(), String> {
        for i in 0..self.n {
            for j in 0..self.n {
                match self.path(i, j) {
                    None => {
                        if self.distance(i, j).is_finite() {
                            return Err(format!("({i},{j}): finite distance but no path"));
                        }
                    }
                    Some(p) => {
                        let mut sum = 0.0;
                        for w in p.windows(2) {
                            let edge = adjacency.get(w[0], w[1]);
                            if !edge.is_finite() {
                                return Err(format!(
                                    "({i},{j}): path uses non-edge {}→{}",
                                    w[0], w[1]
                                ));
                            }
                            sum += edge;
                        }
                        let d = self.distance(i, j);
                        if (sum - d).abs() > tol {
                            return Err(format!("({i},{j}): path sum {sum} != distance {d}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Floyd-Warshall with successor tracking over a dense adjacency matrix
/// (works for directed inputs too).
pub fn floyd_warshall_paths(adjacency: &Matrix) -> PathMatrix {
    let n = adjacency.order();
    let mut dist = adjacency.clone();
    let mut succ = vec![NONE; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j && adjacency.get(i, j).is_finite() {
                succ[i * n + j] = j as u32;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist.get(i, k);
            if dik == INF {
                continue;
            }
            for j in 0..n {
                let cand = dik + dist.get(k, j);
                if cand < dist.get(i, j) {
                    dist.set(i, j, cand);
                    succ[i * n + j] = succ[i * n + k];
                }
            }
        }
    }
    PathMatrix {
        distances: dist,
        succ,
        n,
    }
}

/// Convenience: path matrix for an undirected [`Graph`].
pub fn apsp_paths(g: &Graph) -> PathMatrix {
    floyd_warshall_paths(&g.to_dense())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_on_a_line() {
        let pm = apsp_paths(&generators::path(6));
        assert_eq!(pm.path(0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(pm.path(4, 1), Some(vec![4, 3, 2, 1]));
        assert_eq!(pm.path(3, 3), Some(vec![3]));
    }

    #[test]
    fn path_takes_the_shortcut() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(0, 3, 2.5); // cheaper than 0-1-2-3
        let pm = apsp_paths(&g);
        assert_eq!(pm.path(0, 3), Some(vec![0, 3]));
        assert_eq!(pm.distance(0, 3), 2.5);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let pm = apsp_paths(&g);
        assert_eq!(pm.path(0, 2), None);
        assert_eq!(pm.path(2, 0), None);
    }

    #[test]
    fn distances_match_plain_fw_and_paths_validate() {
        for seed in [1u64, 5, 9] {
            let g = generators::erdos_renyi_paper(50, 0.1, seed);
            let pm = apsp_paths(&g);
            let plain = crate::floyd_warshall(&g);
            assert!(pm.distances().approx_eq(&plain, 1e-9).is_ok());
            pm.validate_against(&g.to_dense(), 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn directed_paths_respect_one_way() {
        let g = generators::erdos_renyi_directed(24, 0.15, 3);
        let adj = g.to_dense();
        let pm = floyd_warshall_paths(&adj);
        pm.validate_against(&adj, 1e-9).unwrap();
    }

    #[test]
    fn grid_paths_have_manhattan_length() {
        let pm = apsp_paths(&generators::grid(4, 5));
        let p = pm.path(0, 19).unwrap();
        assert_eq!(p.len() as f64 - 1.0, pm.distance(0, 19));
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&19));
    }
}
