//! Shortest-*path* reconstruction.
//!
//! The paper computes only path lengths ("we focus on computing length of
//! all pairs shortest paths (i.e., no paths themselves)", §3). Downstream
//! users routinely need the witnesses too, so the library provides two
//! extensions:
//!
//! * the classic **successor matrix** ([`PathMatrix`],
//!   [`floyd_warshall_paths`]): `succ[i][j]` is the first hop of a
//!   shortest `i → j` path — the natural representation for a *sequential*
//!   Floyd-Warshall, where the `succ[i][k]` operand entry is always at
//!   hand;
//! * the **via (parent) matrix** ([`ParentMatrix`],
//!   [`DistancesAndParents`], [`floyd_warshall_vias`]): each cell records
//!   an *interior vertex* of a shortest path (the winning `k` of the last
//!   relaxation), from which [`DistancesAndParents::reconstruct`] expands
//!   the full path by divide and conquer. This is the representation the
//!   distributed solvers produce (`SolverConfig::with_paths()` in
//!   `apsp-core`), because a via cell updates from plain *distance*
//!   operands and survives the symmetric upper-triangle block storage —
//!   see `apsp_blockmat::parent` for the kernel-level rationale.

use crate::Graph;
use apsp_blockmat::{Matrix, INF, NO_VIA};

/// Distances plus a successor matrix for path extraction.
#[derive(Clone, Debug)]
pub struct PathMatrix {
    distances: Matrix,
    /// `succ[i*n + j]`: next vertex after `i` on a shortest `i → j` path
    /// (`u32::MAX` when unreachable or `i == j`).
    succ: Vec<u32>,
    n: usize,
}

const NONE: u32 = u32::MAX;

impl PathMatrix {
    /// The distance matrix.
    pub fn distances(&self) -> &Matrix {
        &self.distances
    }

    /// Shortest distance from `i` to `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.distances.get(i, j)
    }

    /// Extracts the vertex sequence of one shortest `i → j` path, or
    /// `None` when `j` is unreachable from `i`. The path includes both
    /// endpoints; `path(i, i)` is `[i]`.
    pub fn path(&self, i: usize, j: usize) -> Option<Vec<usize>> {
        assert!(i < self.n && j < self.n, "vertex out of range");
        if i == j {
            return Some(vec![i]);
        }
        if !self.distances.get(i, j).is_finite() {
            return None;
        }
        let mut out = vec![i];
        let mut cur = i;
        while cur != j {
            let next = self.succ[cur * self.n + j];
            debug_assert_ne!(next, NONE, "finite distance but broken successor chain");
            cur = next as usize;
            out.push(cur);
            debug_assert!(out.len() <= self.n, "successor cycle");
        }
        Some(out)
    }

    /// Checks the defining invariant: every reconstructed path's edge-sum
    /// equals the reported distance. Used by tests; `O(n³)` worst case.
    pub fn validate_against(&self, adjacency: &Matrix, tol: f64) -> Result<(), String> {
        for i in 0..self.n {
            for j in 0..self.n {
                match self.path(i, j) {
                    None => {
                        if self.distance(i, j).is_finite() {
                            return Err(format!("({i},{j}): finite distance but no path"));
                        }
                    }
                    Some(p) => {
                        let mut sum = 0.0;
                        for w in p.windows(2) {
                            let edge = adjacency.get(w[0], w[1]);
                            if !edge.is_finite() {
                                return Err(format!(
                                    "({i},{j}): path uses non-edge {}→{}",
                                    w[0], w[1]
                                ));
                            }
                            sum += edge;
                        }
                        let d = self.distance(i, j);
                        if (sum - d).abs() > tol {
                            return Err(format!("({i},{j}): path sum {sum} != distance {d}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A vertex identifier, matching [`Graph`]'s `u32` vertex ids.
pub type NodeId = u32;

/// An `n × n` matrix of *via* entries: `via(i, j)` is the global id of an
/// interior vertex on one shortest `i → j` path (the argmin `k` recorded
/// by the tracked min-plus kernels), or [`NO_VIA`] when the best path is
/// the direct edge (or the cell is diagonal / unreachable).
///
/// On undirected instances the via relation is symmetric — an interior
/// vertex of a shortest `i → j` path is interior to the reversed path —
/// which is what lets the distributed solvers assemble a full matrix from
/// upper-triangular tracked blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParentMatrix {
    n: usize,
    via: Vec<u32>,
}

impl ParentMatrix {
    /// Wraps a flat row-major via buffer of length `n²`.
    ///
    /// # Panics
    /// Panics if `via.len() != n * n`.
    pub fn from_vias(n: usize, via: Vec<u32>) -> Self {
        assert_eq!(via.len(), n * n, "via buffer length must be n^2");
        ParentMatrix { n, via }
    }

    /// Matrix order `n`.
    pub fn order(&self) -> usize {
        self.n
    }

    /// The via entry for `(i, j)`, or `None` when the cell records no
    /// intermediate vertex.
    pub fn via(&self, i: usize, j: usize) -> Option<NodeId> {
        assert!(i < self.n && j < self.n, "vertex out of range");
        match self.via[i * self.n + j] {
            NO_VIA => None,
            k => Some(k),
        }
    }

    /// Expands the via entries into the full `i → j` vertex sequence,
    /// **assuming the pair is known to be connected** — the caller owns
    /// the reachability check, which is workload-specific (finite
    /// distance for shortest paths, nonzero width for widest paths, a
    /// `true` cell for transitive closure). `expand(i, i)` is `[i]`.
    ///
    /// Runs in `O(length)` by divide and conquer: each via cell splits
    /// its segment into two sub-segments until a cell reports a direct
    /// edge.
    ///
    /// # Panics
    /// Panics on out-of-range vertices, and on a via matrix whose
    /// expansion does not terminate — impossible for matrices produced by
    /// this workspace's tracked solvers (vias are recorded only on strict
    /// improvements, which well-founds the expansion), but constructible
    /// by hand; the budget guard is defense in depth.
    pub fn expand(&self, i: usize, j: usize) -> Vec<NodeId> {
        let n = self.n;
        assert!(i < n && j < n, "vertex out of range");
        let expanded = expand_vias_with(i, j, n, |a, b| {
            Ok::<Option<NodeId>, std::convert::Infallible>(self.via(a, b))
        });
        match expanded {
            Ok(Some(path)) => path,
            Ok(None) => panic!("via expansion for ({i},{j}) does not terminate"),
            Err(never) => match never {},
        }
    }
}

/// Expands a `(i, j)` via chain into the full vertex sequence, reading
/// each via cell through a caller-supplied (possibly fallible) lookup —
/// the shared core of [`ParentMatrix::expand`] and of disk-backed stores
/// whose via plane is loaded lazily.
///
/// The lookup receives global vertex ids and returns the interior vertex
/// recorded for that pair (or `None` for a direct edge). Returns
/// `Ok(None)` when the expansion exceeds its termination budget (a via
/// cycle, impossible for matrices produced by the tracked solvers), and
/// propagates the lookup's error otherwise. The caller owns bounds and
/// reachability checks.
pub fn expand_vias_with<E>(
    i: usize,
    j: usize,
    n: usize,
    mut via: impl FnMut(usize, usize) -> Result<Option<NodeId>, E>,
) -> Result<Option<Vec<NodeId>>, E> {
    if i == j {
        return Ok(Some(vec![i as NodeId]));
    }
    let mut out = vec![i as NodeId];
    // Depth-first, left-to-right expansion of (i, j) segments.
    let mut stack: Vec<(u32, u32)> = vec![(i as u32, j as u32)];
    // A valid expansion visits at most 2·n segments (the recursion
    // tree over a simple path of ≤ n vertices).
    let mut budget = 4 * n + 4;
    while let Some((a, b)) = stack.pop() {
        budget -= 1;
        if budget == 0 {
            return Ok(None);
        }
        match via(a as usize, b as usize)? {
            None => out.push(b),
            Some(k) => {
                debug_assert!(k != a && k != b, "degenerate via {k} at ({a},{b})");
                stack.push((k, b));
                stack.push((a, k));
            }
        }
    }
    Ok(Some(out))
}

/// Distances plus the via matrix that reconstructs their witness paths —
/// what the distributed solvers return under `SolverConfig::with_paths()`.
#[derive(Clone, Debug)]
pub struct DistancesAndParents {
    distances: Matrix,
    parents: ParentMatrix,
}

impl DistancesAndParents {
    /// Pairs a distance matrix with its via matrix.
    ///
    /// # Panics
    /// Panics if the orders differ.
    pub fn new(distances: Matrix, parents: ParentMatrix) -> Self {
        assert_eq!(
            distances.order(),
            parents.order(),
            "distance and parent matrices must have the same order"
        );
        DistancesAndParents { distances, parents }
    }

    /// The distance matrix.
    pub fn distances(&self) -> &Matrix {
        &self.distances
    }

    /// The via matrix.
    pub fn parents(&self) -> &ParentMatrix {
        &self.parents
    }

    /// Shortest distance from `i` to `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.distances.get(i, j)
    }

    /// Splits into the distance and parent matrices.
    pub fn into_parts(self) -> (Matrix, ParentMatrix) {
        (self.distances, self.parents)
    }

    /// Reconstructs the vertex sequence of one shortest `i → j` path, or
    /// `None` when `j` is unreachable from `i`. The path includes both
    /// endpoints; `reconstruct(i, i)` is `[i]`.
    ///
    /// Runs in `O(length)` by expanding each via cell into its two
    /// sub-segments until a cell reports a direct edge
    /// ([`ParentMatrix::expand`], which also documents the
    /// non-termination guard).
    pub fn reconstruct(&self, i: usize, j: usize) -> Option<Vec<NodeId>> {
        let n = self.parents.n;
        assert!(i < n && j < n, "vertex out of range");
        if i != j && !self.distances.get(i, j).is_finite() {
            return None;
        }
        Some(self.parents.expand(i, j))
    }

    /// Checks the defining invariant: every reconstructed path walks real
    /// edges of `adjacency` and its edge-sum equals the reported distance.
    /// Used by tests and examples; `O(n³)` worst case.
    pub fn validate_against(&self, adjacency: &Matrix, tol: f64) -> Result<(), String> {
        let n = self.parents.n;
        for i in 0..n {
            for j in 0..n {
                match self.reconstruct(i, j) {
                    None => {
                        if self.distance(i, j).is_finite() {
                            return Err(format!("({i},{j}): finite distance but no path"));
                        }
                    }
                    Some(p) => {
                        let mut sum = 0.0;
                        for w in p.windows(2) {
                            let edge = adjacency.get(w[0] as usize, w[1] as usize);
                            if !edge.is_finite() {
                                return Err(format!(
                                    "({i},{j}): path uses non-edge {}→{}",
                                    w[0], w[1]
                                ));
                            }
                            sum += edge;
                        }
                        let d = self.distance(i, j);
                        if (sum - d).abs() > tol {
                            return Err(format!("({i},{j}): path sum {sum} != distance {d}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Floyd-Warshall with via tracking over a dense adjacency matrix: the
/// sequential oracle for the distributed path-tracking solvers (works for
/// directed inputs too).
///
/// ```
/// use apsp_graph::{generators, paths};
///
/// let g = generators::path(5);
/// let dap = paths::floyd_warshall_vias(&g.to_dense());
/// assert_eq!(dap.reconstruct(0, 3), Some(vec![0, 1, 2, 3]));
/// assert_eq!(dap.distance(0, 3), 3.0);
/// ```
pub fn floyd_warshall_vias(adjacency: &Matrix) -> DistancesAndParents {
    let n = adjacency.order();
    let mut dist = adjacency.clone();
    let mut via = vec![NO_VIA; n * n];
    for k in 0..n {
        for i in 0..n {
            if i == k {
                continue;
            }
            let dik = dist.get(i, k);
            if dik == INF {
                continue;
            }
            for j in 0..n {
                let cand = dik + dist.get(k, j);
                if cand < dist.get(i, j) {
                    dist.set(i, j, cand);
                    via[i * n + j] = k as u32;
                }
            }
        }
    }
    DistancesAndParents::new(dist, ParentMatrix::from_vias(n, via))
}

/// Floyd-Warshall with successor tracking over a dense adjacency matrix
/// (works for directed inputs too).
pub fn floyd_warshall_paths(adjacency: &Matrix) -> PathMatrix {
    let n = adjacency.order();
    let mut dist = adjacency.clone();
    let mut succ = vec![NONE; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j && adjacency.get(i, j).is_finite() {
                succ[i * n + j] = j as u32;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist.get(i, k);
            if dik == INF {
                continue;
            }
            for j in 0..n {
                let cand = dik + dist.get(k, j);
                if cand < dist.get(i, j) {
                    dist.set(i, j, cand);
                    succ[i * n + j] = succ[i * n + k];
                }
            }
        }
    }
    PathMatrix {
        distances: dist,
        succ,
        n,
    }
}

/// Convenience: path matrix for an undirected [`Graph`].
pub fn apsp_paths(g: &Graph) -> PathMatrix {
    floyd_warshall_paths(&g.to_dense())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_on_a_line() {
        let pm = apsp_paths(&generators::path(6));
        assert_eq!(pm.path(0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(pm.path(4, 1), Some(vec![4, 3, 2, 1]));
        assert_eq!(pm.path(3, 3), Some(vec![3]));
    }

    #[test]
    fn path_takes_the_shortcut() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(0, 3, 2.5); // cheaper than 0-1-2-3
        let pm = apsp_paths(&g);
        assert_eq!(pm.path(0, 3), Some(vec![0, 3]));
        assert_eq!(pm.distance(0, 3), 2.5);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let pm = apsp_paths(&g);
        assert_eq!(pm.path(0, 2), None);
        assert_eq!(pm.path(2, 0), None);
    }

    #[test]
    fn distances_match_plain_fw_and_paths_validate() {
        for seed in [1u64, 5, 9] {
            let g = generators::erdos_renyi_paper(50, 0.1, seed);
            let pm = apsp_paths(&g);
            let plain = crate::floyd_warshall(&g);
            assert!(pm.distances().approx_eq(&plain, 1e-9).is_ok());
            pm.validate_against(&g.to_dense(), 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn directed_paths_respect_one_way() {
        let g = generators::erdos_renyi_directed(24, 0.15, 3);
        let adj = g.to_dense();
        let pm = floyd_warshall_paths(&adj);
        pm.validate_against(&adj, 1e-9).unwrap();
    }

    #[test]
    fn grid_paths_have_manhattan_length() {
        let pm = apsp_paths(&generators::grid(4, 5));
        let p = pm.path(0, 19).unwrap();
        assert_eq!(p.len() as f64 - 1.0, pm.distance(0, 19));
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&19));
    }

    #[test]
    fn vias_on_a_line() {
        let dap = floyd_warshall_vias(&generators::path(6).to_dense());
        assert_eq!(dap.reconstruct(0, 4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(dap.reconstruct(4, 1), Some(vec![4, 3, 2, 1]));
        assert_eq!(dap.reconstruct(3, 3), Some(vec![3]));
        assert_eq!(dap.parents().via(0, 1), None, "direct edge has no via");
        let v = dap.parents().via(0, 4).unwrap();
        assert!((1..=3).contains(&v));
    }

    #[test]
    fn vias_take_the_shortcut() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(0, 3, 2.5); // cheaper than 0-1-2-3
        let dap = floyd_warshall_vias(&g.to_dense());
        assert_eq!(dap.reconstruct(0, 3), Some(vec![0, 3]));
        assert_eq!(dap.distance(0, 3), 2.5);
    }

    #[test]
    fn vias_unreachable_is_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let dap = floyd_warshall_vias(&g.to_dense());
        assert_eq!(dap.reconstruct(0, 2), None);
        assert_eq!(dap.reconstruct(2, 0), None);
    }

    #[test]
    fn vias_round_trip_against_dijkstra() {
        // The acceptance invariant of the path subsystem: reconstructed
        // path weights equal the Dijkstra oracle's distances.
        for seed in [2u64, 11, 23] {
            let g = generators::erdos_renyi_paper(60, 0.1, seed);
            let adj = g.to_dense();
            let dap = floyd_warshall_vias(&adj);
            let oracle = crate::dijkstra::apsp_dijkstra(&g);
            assert!(
                dap.distances().approx_eq(&oracle, 1e-9).is_ok(),
                "seed {seed}: distances diverge from Dijkstra"
            );
            dap.validate_against(&adj, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn directed_vias_respect_one_way() {
        let g = generators::erdos_renyi_directed(24, 0.15, 3);
        let adj = g.to_dense();
        let dap = floyd_warshall_vias(&adj);
        dap.validate_against(&adj, 1e-9).unwrap();
    }

    #[test]
    fn vias_agree_with_successor_paths_on_length() {
        let g = generators::grid(4, 5);
        let adj = g.to_dense();
        let dap = floyd_warshall_vias(&adj);
        let pm = apsp_paths(&g);
        for (i, j) in [(0usize, 19usize), (7, 12), (19, 0)] {
            let a = dap.reconstruct(i, j).unwrap();
            let b = pm.path(i, j).unwrap();
            // Shortest paths may differ, but their lengths cannot.
            assert_eq!(a.len(), b.len(), "({i},{j})");
            assert_eq!(a.first(), Some(&(i as u32)));
            assert_eq!(a.last(), Some(&(j as u32)));
        }
    }

    #[test]
    #[should_panic(expected = "does not terminate")]
    fn hand_built_via_cycle_is_caught() {
        // via(0,1) = 2 and via(0,2) = 1 can never be produced by the
        // tracked kernels; the expansion budget must catch it.
        let mut via = vec![NO_VIA; 9];
        via[1] = 2; // (0,1) -> 2
        via[2] = 1; // (0,2) -> 1
        let mut m = Matrix::identity(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, 1.0);
        m.set(1, 2, 1.0);
        m.set(2, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(2, 0, 1.0);
        let dap = DistancesAndParents::new(m, ParentMatrix::from_vias(3, via));
        let _ = dap.reconstruct(0, 1);
    }
}
