//! The core graph type.

use crate::Csr;
use apsp_blockmat::{Matrix, INF};

/// An undirected weighted graph with integer-indexed vertices.
///
/// Mirrors the paper's §3 assumptions: vertices are pre-processed to dense
/// integer indices `0..n`, weights are non-negative reals (no negative
/// cycles possible), and no structural assumptions (sparsity, planarity,
/// weight distribution) are made.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a graph from an explicit edge list.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range or any weight is negative/NaN.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32, f64)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// Self-loops are permitted but never improve any shortest path.
    /// Parallel edges are permitted; the minimum weight wins on export.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative/NaN weight.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) {
        assert!((u as usize) < self.n, "endpoint {u} out of range");
        assert!((v as usize) < self.n, "endpoint {v} out of range");
        assert!(w >= 0.0, "edge weight must be non-negative, got {w}");
        self.edges.push((u, v, w));
    }

    /// Number of vertices.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over the stored edges.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.edges.iter().copied()
    }

    /// Dense adjacency matrix: `0` diagonal, edge weights, [`INF`] elsewhere.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::identity(self.n);
        for &(u, v, w) in &self.edges {
            let (u, v) = (u as usize, v as usize);
            if u == v {
                continue;
            }
            if w < m.get(u, v) {
                m.set(u, v, w);
                m.set(v, u, w);
            }
        }
        m
    }

    /// Dense **capacity** matrix for the bottleneck/widest-path workload:
    /// [`INF`] diagonal (staying put constrains nothing), edge weights
    /// read as capacities (parallel edges keep the fattest), `0.0` for
    /// non-edges (no pipe at all) — the *(max, min)* semiring's `1̄` and
    /// `0̄` where [`Graph::to_dense`] uses the tropical ones.
    pub fn to_dense_capacities(&self) -> Matrix {
        let mut m = Matrix::filled(self.n, 0.0);
        for i in 0..self.n {
            m.set(i, i, INF);
        }
        for &(u, v, w) in &self.edges {
            let (u, v) = (u as usize, v as usize);
            if u == v {
                continue;
            }
            if w > m.get(u, v) {
                m.set(u, v, w);
                m.set(v, u, w);
            }
        }
        m
    }

    /// Compressed-sparse-row adjacency (both directions materialized).
    pub fn to_csr(&self) -> Csr {
        Csr::from_undirected_edges(self.n, &self.edges)
    }

    /// Number of off-diagonal cells the dense export would populate:
    /// twice the count of *distinct* undirected pairs `{u, v}`, `u ≠ v`
    /// (parallel edges collapse, self-loops are dropped — exactly the
    /// cells [`Graph::to_dense`] fills with a finite weight).
    pub fn nnz(&self) -> usize {
        let mut pairs: Vec<(u32, u32)> = self
            .edges
            .iter()
            .filter(|&&(u, v, _)| u != v)
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        2 * pairs.len()
    }

    /// Fraction of off-diagonal adjacency cells that are finite:
    /// `nnz / (n·(n-1))`, in `[0, 1]`. Zero for graphs with fewer than
    /// two vertices. This is the sparsity signal the planner's tuner
    /// reads to decide dense-vs-hierarchical routing.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.nnz() as f64 / (self.n * (self.n - 1)) as f64
        }
    }

    /// Average vertex degree (each undirected edge contributes two endpoints).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }

    /// Number of connected components (union-find over the edge list).
    pub fn connected_components(&self) -> usize {
        let mut parent: Vec<u32> = (0..self.n as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        let mut components = self.n;
        for &(u, v, _) in &self.edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru as usize] = rv;
                components -= 1;
            }
        }
        components
    }

    /// Largest finite edge weight, or `None` for an edgeless graph.
    pub fn max_weight(&self) -> Option<f64> {
        self.edges
            .iter()
            .map(|&(_, _, w)| w)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.max(w))))
    }
}

/// Check that a dense matrix is a plausible adjacency matrix for an
/// undirected graph (symmetric, zero diagonal, non-negative entries).
pub fn validate_adjacency(m: &Matrix) -> Result<(), String> {
    let n = m.order();
    for i in 0..n {
        if m.get(i, i) != 0.0 {
            return Err(format!("diagonal entry ({i},{i}) is {}", m.get(i, i)));
        }
        for j in 0..n {
            let v = m.get(i, j);
            if v < 0.0 || v.is_nan() {
                return Err(format!("invalid weight {v} at ({i},{j})"));
            }
            if v != m.get(j, i) {
                return Err(format!("asymmetry at ({i},{j})"));
            }
        }
    }
    let _ = INF; // re-export sanity: INF is the implicit non-edge value
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_export_takes_min_parallel_edge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5.0);
        g.add_edge(0, 1, 3.0);
        g.add_edge(1, 0, 7.0);
        let m = g.to_dense();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn self_loops_ignored_in_dense() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 9.0);
        let m = g.to_dense();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn components_counted() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        assert_eq!(g.connected_components(), 3); // {0,1,2}, {3,4}, {5}
    }

    #[test]
    fn adjacency_validates() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(2, 3, 4.0);
        assert!(validate_adjacency(&g.to_dense()).is_ok());
    }

    #[test]
    fn nnz_collapses_parallel_edges_and_self_loops() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 0, 3.0); // parallel (reversed orientation)
        g.add_edge(2, 2, 1.0); // self-loop: never densified
        g.add_edge(2, 3, 4.0);
        assert_eq!(g.nnz(), 4); // {0,1} and {2,3}, both directions
        assert!((g.density() - 4.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn density_degenerate_graphs() {
        assert_eq!(Graph::new(0).density(), 0.0);
        assert_eq!(Graph::new(1).density(), 0.0);
        let g = crate::generators::complete(6, 1);
        assert_eq!(g.density(), 1.0);
    }

    #[test]
    fn avg_degree() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(g.avg_degree(), 1.0);
    }
}
