//! Graph inputs and sequential reference solvers for the APSP reproduction.
//!
//! Provides:
//!
//! * [`Graph`] — an undirected weighted edge-list graph with dense and CSR
//!   export,
//! * [`generators`] — the paper's synthetic Erdős–Rényi workload
//!   (`pe = (1+ε)·ln(n)/n`, ε = 0.1, §5.1) plus structured generators used
//!   by tests and examples,
//! * [`Csr`] — compressed sparse row adjacency for the heap-based solvers,
//! * sequential oracles: [`floyd_warshall`], [`dijkstra::apsp_dijkstra`],
//!   and [`johnson::apsp_johnson`] (the two classic algorithms the paper's
//!   §3 discusses as the standard sequential approaches), plus
//!   [`bottleneck`] — the widest-path (modified Dijkstra) and BFS
//!   reachability oracles for the non-tropical path-algebra workloads.
//!
//! All distances are `f64`; unreachable pairs are
//! [`INF`](apsp_blockmat::INF).

#![warn(missing_docs)]

pub mod bottleneck;
mod csr;
pub mod digraph;
pub mod dijkstra;
pub mod generators;
mod graph;
pub mod io;
pub mod johnson;
pub mod paths;

pub use csr::Csr;
pub use digraph::{apsp_dijkstra_directed, validate_directed_adjacency, DiGraph};
pub use graph::{validate_adjacency, Graph};

use apsp_blockmat::Matrix;

/// Solves APSP with the sequential textbook Floyd-Warshall — the paper's
/// single-core baseline (`T1`).
///
/// Returns the full `n × n` distance matrix.
pub fn floyd_warshall(g: &Graph) -> Matrix {
    let mut m = g.to_dense();
    m.floyd_warshall_in_place();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::INF;

    #[test]
    fn fw_on_weighted_triangle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 5.0);
        g.add_edge(0, 2, 12.0);
        let d = floyd_warshall(&g);
        assert_eq!(d.get(0, 2), 10.0); // through vertex 1
        assert_eq!(d.get(2, 0), 10.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn fw_disconnected() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        let d = floyd_warshall(&g);
        assert_eq!(d.get(0, 3), INF);
        assert_eq!(d.get(1, 0), 1.0);
    }

    #[test]
    fn oracles_agree_on_random_graph() {
        let g = generators::erdos_renyi_paper(120, 0.1, 0xFEED);
        let fw = floyd_warshall(&g);
        let dj = dijkstra::apsp_dijkstra(&g);
        let jo = johnson::apsp_johnson(&g).expect("no negative cycles");
        assert!(fw.approx_eq(&dj, 1e-9).is_ok(), "FW vs Dijkstra");
        assert!(fw.approx_eq(&jo, 1e-9).is_ok(), "FW vs Johnson");
    }
}
