//! Plain-text edge-list I/O.
//!
//! Format (one record per line, `#` comments allowed):
//!
//! ```text
//! # apspark edge list
//! n <vertex-count>
//! <u> <v> <weight>
//! ```
//!
//! The same format the paper's released benchmark data uses (whitespace-
//! separated edge lists); `load_graph` accepts both a leading `n` record
//! and bare edge lists (vertex count inferred as max index + 1).

use crate::{DiGraph, Graph};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// I/O or parse failure while reading an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed line (1-based line number and message).
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parsed edge-list payload: declared vertex count (if any) and edges.
type ParsedEdges = (Option<usize>, Vec<(u32, u32, f64)>);

fn parse_edges(reader: impl BufRead) -> Result<ParsedEdges, IoError> {
    let mut declared_n = None;
    let mut edges = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let first = parts.next().unwrap();
        if first == "n" {
            let v = parts
                .next()
                .ok_or_else(|| IoError::Parse(lineno, "missing vertex count".into()))?;
            declared_n = Some(
                v.parse::<usize>()
                    .map_err(|e| IoError::Parse(lineno, format!("bad vertex count: {e}")))?,
            );
            continue;
        }
        let u: u32 = first
            .parse()
            .map_err(|e| IoError::Parse(lineno, format!("bad source: {e}")))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| IoError::Parse(lineno, "missing target".into()))?
            .parse()
            .map_err(|e| IoError::Parse(lineno, format!("bad target: {e}")))?;
        let w: f64 = match parts.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| IoError::Parse(lineno, format!("bad weight: {e}")))?,
            None => 1.0,
        };
        if w < 0.0 || w.is_nan() {
            return Err(IoError::Parse(lineno, format!("negative/NaN weight {w}")));
        }
        edges.push((u, v, w));
    }
    Ok((declared_n, edges))
}

fn inferred_order(declared: Option<usize>, edges: &[(u32, u32, f64)]) -> usize {
    let max_idx = edges
        .iter()
        .map(|&(u, v, _)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    declared.map_or(max_idx, |n| n.max(max_idx))
}

/// Reads an undirected graph from an edge-list file.
pub fn load_graph(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    let (declared, edges) = parse_edges(std::io::BufReader::new(file))?;
    Ok(Graph::from_edges(inferred_order(declared, &edges), edges))
}

/// Reads a directed graph from an edge-list file.
pub fn load_digraph(path: impl AsRef<Path>) -> Result<DiGraph, IoError> {
    let file = std::fs::File::open(path)?;
    let (declared, edges) = parse_edges(std::io::BufReader::new(file))?;
    Ok(DiGraph::from_arcs(inferred_order(declared, &edges), edges))
}

/// Writes an undirected graph as an edge list (with a leading `n` record,
/// so isolated trailing vertices survive the round trip).
pub fn save_graph(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# apspark undirected edge list")?;
    writeln!(out, "n {}", g.order())?;
    for (u, v, w) in g.edges() {
        writeln!(out, "{u} {v} {w}")?;
    }
    Ok(())
}

/// Writes a directed graph as an edge list.
pub fn save_digraph(g: &DiGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# apspark directed edge list")?;
    writeln!(out, "n {}", g.order())?;
    for (u, v, w) in g.arcs() {
        writeln!(out, "{u} {v} {w}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("apsp-io-{name}-{}", std::process::id()))
    }

    #[test]
    fn graph_roundtrip() {
        let g = generators::erdos_renyi_paper(50, 0.1, 3);
        let path = temp("g1");
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        assert_eq!(back.order(), g.order());
        assert_eq!(back.num_edges(), g.num_edges());
        assert!(crate::floyd_warshall(&back)
            .approx_eq(&crate::floyd_warshall(&g), 1e-9)
            .is_ok());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn digraph_roundtrip() {
        let g = generators::erdos_renyi_directed(30, 0.2, 4);
        let path = temp("d1");
        save_digraph(&g, &path).unwrap();
        let back = load_digraph(&path).unwrap();
        assert_eq!(back.order(), 30);
        assert_eq!(back.num_arcs(), g.num_arcs());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bare_edge_list_with_default_weights() {
        let path = temp("bare");
        std::fs::write(&path, "# comment\n0 1\n1 2 2.5\n\n").unwrap();
        let g = load_graph(&path).unwrap();
        assert_eq!(g.order(), 3);
        let d = crate::floyd_warshall(&g);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(1, 2), 2.5);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn declared_n_preserves_isolated_vertices() {
        let path = temp("iso");
        std::fs::write(&path, "n 6\n0 1 1.0\n").unwrap();
        let g = load_graph(&path).unwrap();
        assert_eq!(g.order(), 6);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn parse_errors_are_located() {
        let path = temp("bad");
        std::fs::write(&path, "0 1 1.0\n2 x 1.0\n").unwrap();
        match load_graph(&path) {
            Err(IoError::Parse(2, msg)) => assert!(msg.contains("bad target")),
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn negative_weight_rejected() {
        let path = temp("neg");
        std::fs::write(&path, "0 1 -4\n").unwrap();
        assert!(matches!(load_graph(&path), Err(IoError::Parse(1, _))));
        let _ = std::fs::remove_file(path);
    }
}
