//! Johnson's all-pairs shortest-paths algorithm.
//!
//! `O(|V||E| + |V|² log |V|)` — asymptotically preferable to Floyd-Warshall
//! on sparse graphs (paper §3), though in practice dense blocked
//! Floyd-Warshall wins on computational density. Our inputs are undirected
//! and non-negative, which makes the Bellman-Ford reweighting a no-op, but
//! we implement the full pipeline so the algorithm is usable on general
//! directed inputs and so the reweighting invariants are testable.

use crate::{dijkstra, Csr, Graph};
use apsp_blockmat::{Matrix, INF};

/// Error returned when the reweighting phase detects a negative cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegativeCycle;

impl std::fmt::Display for NegativeCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "input graph contains a negative cycle")
    }
}

impl std::error::Error for NegativeCycle {}

/// Bellman-Ford from a virtual super-source connected to every vertex with
/// weight 0. Returns the potential function `h`, or [`NegativeCycle`].
pub fn bellman_ford_potentials(
    n: usize,
    arcs: &[(u32, u32, f64)],
) -> Result<Vec<f64>, NegativeCycle> {
    // With the virtual source, every vertex starts at distance 0.
    let mut h = vec![0.0f64; n];
    // Relax |V| times (the virtual source adds one layer); detect on the
    // extra pass.
    let mut changed = true;
    for round in 0..=n {
        if !changed {
            break;
        }
        changed = false;
        for &(u, v, w) in arcs {
            let cand = h[u as usize] + w;
            if cand < h[v as usize] - 1e-15 {
                if round == n {
                    return Err(NegativeCycle);
                }
                h[v as usize] = cand;
                changed = true;
            }
        }
    }
    Ok(h)
}

/// All-pairs shortest paths via Johnson's algorithm.
///
/// For the paper's undirected non-negative inputs this reduces to
/// per-source Dijkstra, but the reweighting machinery is exercised and
/// validated regardless.
pub fn apsp_johnson(g: &Graph) -> Result<Matrix, NegativeCycle> {
    let n = g.order();
    // Materialize directed arcs (both directions of each undirected edge).
    let mut arcs = Vec::with_capacity(g.num_edges() * 2);
    for (u, v, w) in g.edges() {
        if u == v {
            continue;
        }
        arcs.push((u, v, w));
        arcs.push((v, u, w));
    }
    let h = bellman_ford_potentials(n, &arcs)?;

    // Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
    let reweighted: Vec<(u32, u32, f64)> = arcs
        .iter()
        .map(|&(u, v, w)| {
            let w2 = w + h[u as usize] - h[v as usize];
            debug_assert!(w2 >= -1e-9, "reweighting produced negative weight {w2}");
            (u, v, w2.max(0.0))
        })
        .collect();
    let csr = Csr::from_directed_arcs(n, &reweighted);

    let mut out = Matrix::filled(n, INF);
    for s in 0..n {
        let dist = dijkstra::sssp(&csr, s);
        for (t, &d) in dist.iter().enumerate() {
            // Undo the potential shift.
            let v = if d.is_finite() { d - h[s] + h[t] } else { INF };
            out.set(s, t, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floyd_warshall;

    #[test]
    fn johnson_matches_fw_small() {
        let g = Graph::from_edges(
            5,
            [
                (0, 1, 4.0),
                (1, 2, 1.0),
                (2, 3, 2.0),
                (3, 4, 7.0),
                (0, 4, 20.0),
                (1, 3, 2.5),
            ],
        );
        let jo = apsp_johnson(&g).unwrap();
        let fw = floyd_warshall(&g);
        assert!(jo.approx_eq(&fw, 1e-9).is_ok());
    }

    #[test]
    fn potentials_zero_for_nonnegative_graph() {
        let arcs = [(0, 1, 3.0), (1, 2, 4.0), (2, 0, 5.0)];
        let h = bellman_ford_potentials(3, &arcs).unwrap();
        assert_eq!(h, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn negative_arc_shifts_potentials() {
        // Directed arcs with one negative arc but no negative cycle.
        let arcs = [(0u32, 1u32, -2.0f64), (1, 2, 1.0)];
        let h = bellman_ford_potentials(3, &arcs).unwrap();
        assert_eq!(h[0], 0.0);
        assert_eq!(h[1], -2.0);
        assert_eq!(h[2], -1.0);
        // Reweighted arcs are non-negative.
        for &(u, v, w) in &arcs {
            assert!(w + h[u as usize] - h[v as usize] >= 0.0);
        }
    }

    #[test]
    fn negative_cycle_detected() {
        let arcs = [(0u32, 1u32, 1.0f64), (1, 0, -3.0)];
        assert_eq!(
            bellman_ford_potentials(2, &arcs).unwrap_err(),
            NegativeCycle
        );
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = Graph::from_edges(4, [(0, 1, 1.0)]);
        let jo = apsp_johnson(&g).unwrap();
        assert_eq!(jo.get(0, 2), INF);
        assert_eq!(jo.get(2, 2), 0.0);
    }
}
