//! Single-source and all-pairs Dijkstra (binary-heap implementation).

use crate::{Csr, Graph};
use apsp_blockmat::{Matrix, INF};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry: `(distance, vertex)` ordered by distance.
#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    vertex: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; distances are never NaN (validated on input).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest path lengths from `source` over a CSR adjacency.
///
/// Classic lazy-deletion Dijkstra: `O(|E| log |E|)`.
pub fn sssp(csr: &Csr, source: usize) -> Vec<f64> {
    let n = csr.order();
    assert!(source < n, "source out of range");
    let mut dist = vec![INF; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        vertex: source as u32,
    });
    while let Some(HeapItem { dist: d, vertex: u }) = heap.pop() {
        let u = u as usize;
        if d > dist[u] {
            continue; // stale entry
        }
        for (v, w) in csr.neighbors(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapItem {
                    dist: nd,
                    vertex: v,
                });
            }
        }
    }
    dist
}

/// All-pairs shortest paths by running Dijkstra from every source.
///
/// `O(|V| |E| log |E|)` — the sparse-graph oracle used to cross-validate the
/// dense solvers.
pub fn apsp_dijkstra(g: &Graph) -> Matrix {
    let csr = g.to_csr();
    let n = g.order();
    let mut out = Matrix::filled(n, INF);
    for s in 0..n {
        let dist = sssp(&csr, s);
        for (t, &d) in dist.iter().enumerate() {
            out.set(s, t, d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> Graph {
        // 0-1 (1), 1-2 (2), 2-3 (1), 3-0 (5), diagonal 0-2 (10)
        Graph::from_edges(
            4,
            [
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 0, 5.0),
                (0, 2, 10.0),
            ],
        )
    }

    #[test]
    fn sssp_prefers_multi_hop() {
        let g = weighted_square();
        let d = sssp(&g.to_csr(), 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 4.0]);
    }

    #[test]
    fn apsp_matrix_is_symmetric_with_zero_diagonal() {
        let g = weighted_square();
        let m = apsp_dijkstra(&g);
        assert!(m.is_symmetric());
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let d = sssp(&g.to_csr(), 0);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn zero_weight_edges() {
        let g = Graph::from_edges(3, [(0, 1, 0.0), (1, 2, 0.0)]);
        let d = sssp(&g.to_csr(), 0);
        assert_eq!(d, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_vertex() {
        let g = Graph::new(1);
        let d = sssp(&g.to_csr(), 0);
        assert_eq!(d, vec![0.0]);
    }
}
