//! Compressed sparse row adjacency.

/// CSR adjacency structure with both directions of every undirected edge
/// materialized, used by the heap-based solvers (Dijkstra, Johnson).
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl Csr {
    /// Builds CSR from an undirected edge list over `n` vertices.
    /// Self-loops are dropped (they never shorten a path).
    pub fn from_undirected_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, v, _) in edges {
            if u == v {
                continue;
            }
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let nnz = *offsets.last().unwrap();
        let mut targets = vec![0u32; nnz];
        let mut weights = vec![0.0f64; nnz];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v, w) in edges {
            if u == v {
                continue;
            }
            let (ui, vi) = (u as usize, v as usize);
            targets[cursor[ui]] = v;
            weights[cursor[ui]] = w;
            cursor[ui] += 1;
            targets[cursor[vi]] = u;
            weights[cursor[vi]] = w;
            cursor[vi] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Builds CSR from a *directed* arc list (used by Johnson's algorithm on
    /// the reweighting graph).
    pub fn from_directed_arcs(n: usize, arcs: &[(u32, u32, f64)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, _, _) in arcs {
            degree[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let nnz = *offsets.last().unwrap();
        let mut targets = vec![0u32; nnz];
        let mut weights = vec![0.0f64; nnz];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v, w) in arcs {
            let ui = u as usize;
            targets[cursor[ui]] = v;
            weights[cursor[ui]] = w;
            cursor[ui] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    pub fn order(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs.
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `u` as `(target, weight)` pairs.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.offsets[u]..self.offsets[u + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_doubles_arcs() {
        let csr = Csr::from_undirected_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        assert_eq!(csr.num_arcs(), 4);
        let n0: Vec<_> = csr.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 2.0)]);
        let mut n1: Vec<_> = csr.neighbors(1).collect();
        n1.sort_by_key(|a| a.0);
        assert_eq!(n1, vec![(0, 2.0), (2, 3.0)]);
    }

    #[test]
    fn self_loops_dropped() {
        let csr = Csr::from_undirected_edges(2, &[(0, 0, 1.0), (0, 1, 2.0)]);
        assert_eq!(csr.num_arcs(), 2);
    }

    #[test]
    fn directed_keeps_direction() {
        let csr = Csr::from_directed_arcs(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(csr.neighbors(0).count(), 1);
        assert_eq!(csr.neighbors(2).count(), 0);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_undirected_edges(4, &[]);
        assert_eq!(csr.order(), 4);
        assert_eq!(csr.num_arcs(), 0);
        assert_eq!(csr.neighbors(0).count(), 0);
    }
}
