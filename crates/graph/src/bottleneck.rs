//! Sequential oracles for the non-tropical all-pairs workloads: widest
//! (bottleneck) paths and BFS reachability.
//!
//! These are the cross-validation references for the generic path-algebra
//! solvers in `apsp-core` (`algebra::widest_paths` over *(max, min)*,
//! `algebra::transitive_closure` over *(∨, ∧)*), playing the role
//! [`crate::dijkstra::apsp_dijkstra`] plays for the tropical solvers.

use crate::{Csr, Graph};
use apsp_blockmat::{Matrix, INF};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry: `(capacity, vertex)` ordered by capacity.
#[derive(PartialEq)]
struct HeapItem {
    cap: f64,
    vertex: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on capacity; capacities are never NaN (validated on
        // input). Tie-break on vertex for determinism.
        self.cap
            .partial_cmp(&other.cap)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.vertex.cmp(&other.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source widest-path capacities from `source`: the modified
/// Dijkstra that grows the tree by the fattest frontier edge. Entry `v`
/// is the best bottleneck `max over routes (min over edges capacity)`,
/// `0.0` if unreachable and [`INF`] for the source itself.
pub fn widest_sssp(csr: &Csr, source: usize) -> Vec<f64> {
    let n = csr.order();
    assert!(source < n, "source out of range");
    let mut cap = vec![0.0f64; n];
    cap[source] = INF;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        cap: INF,
        vertex: source as u32,
    });
    while let Some(HeapItem { cap: c, vertex: u }) = heap.pop() {
        let u = u as usize;
        if c < cap[u] {
            continue; // stale entry
        }
        for (v, w) in csr.neighbors(u) {
            let nc = c.min(w);
            if nc > cap[v as usize] {
                cap[v as usize] = nc;
                heap.push(HeapItem { cap: nc, vertex: v });
            }
        }
    }
    cap
}

/// All-pairs widest (bottleneck) paths by running the modified Dijkstra
/// from every source — the oracle the *(max, min)* blocked solvers are
/// cross-validated against. Edge weights are read as capacities.
pub fn widest_paths(g: &Graph) -> Matrix {
    let csr = g.to_csr();
    let n = g.order();
    let mut out = Matrix::filled(n, 0.0);
    for s in 0..n {
        let cap = widest_sssp(&csr, s);
        for (t, &c) in cap.iter().enumerate() {
            out.set(s, t, c);
        }
    }
    out
}

/// All-pairs reachability by breadth-first search from every source: the
/// flat row-major `n × n` boolean matrix (`true` on the diagonal) the
/// boolean-closure solvers are cross-validated against.
pub fn reachability_bfs(g: &Graph) -> Vec<bool> {
    let csr = g.to_csr();
    let n = g.order();
    let mut out = vec![false; n * n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        let row = &mut out[s * n..(s + 1) * n];
        row[s] = true;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for (v, _) in csr.neighbors(u) {
                let v = v as usize;
                if !row[v] {
                    row[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipes() -> Graph {
        // 0 -10- 1 -7- 2 -4- 3, thin shortcuts 0-2 (1) and 1-3 (2).
        Graph::from_edges(
            4,
            [
                (0, 1, 10.0),
                (1, 2, 7.0),
                (2, 3, 4.0),
                (0, 2, 1.0),
                (1, 3, 2.0),
            ],
        )
    }

    #[test]
    fn widest_prefers_fat_multi_hop() {
        let w = widest_paths(&pipes());
        assert_eq!(w.get(0, 1), 10.0);
        assert_eq!(w.get(0, 2), 7.0, "through 1, not the thin direct pipe");
        assert_eq!(w.get(0, 3), 4.0, "0-1-2-3 beats 0-1-3 (min 2)");
        assert_eq!(w.get(0, 0), INF);
        assert!(w.is_symmetric());
    }

    #[test]
    fn widest_unreachable_is_zero() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5.0);
        let w = widest_paths(&g);
        assert_eq!(w.get(0, 2), 0.0);
        assert_eq!(w.get(2, 2), INF);
    }

    #[test]
    fn parallel_edges_keep_the_fattest() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 9.0);
        let w = widest_paths(&g);
        assert_eq!(w.get(0, 1), 9.0);
    }

    #[test]
    fn bfs_reachability_components() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(3, 4, 1.0);
        let r = reachability_bfs(&g);
        let n = 5;
        assert!(r[2] /* (0,2) */);
        assert!(!r[3] /* (0,3) */);
        assert!(r[3 * n + 4]);
        assert!(r[4 * n + 4]);
        // Symmetric on undirected graphs.
        for i in 0..n {
            for j in 0..n {
                assert_eq!(r[i * n + j], r[j * n + i], "({i},{j})");
            }
        }
    }

    #[test]
    fn widest_matches_brute_force_on_small_random() {
        // Brute-force: (max, min) Floyd-Warshall on the dense capacities.
        let g = crate::generators::erdos_renyi_paper(24, 0.1, 0xB0);
        let n = g.order();
        let mut dense = g.to_dense_capacities();
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let through = dense.get(i, k).min(dense.get(k, j));
                    if through > dense.get(i, j) {
                        dense.set(i, j, through);
                    }
                }
            }
        }
        let w = widest_paths(&g);
        assert!(w.approx_eq(&dense, 0.0).is_ok());
    }
}
