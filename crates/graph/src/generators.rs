//! Synthetic graph generators.
//!
//! The paper's benchmark inputs (§5.1) are Erdős–Rényi graphs with edge
//! probability `pe = (1 + ε)·ln(n)/n`, ε = 0.1 — just above the
//! connectivity threshold — with the explicit caveat that solver
//! performance depends only on `n` (all solvers operate on dense matrices).
//! [`erdos_renyi_paper`] replicates that workload; the structured
//! generators are used by tests and examples where known distances are
//! needed.

use crate::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, pe)` with the paper's edge probability
/// `pe = (1 + eps)·ln(n)/n` and uniform weights in `[1, 10)`.
///
/// Deterministic given `seed`.
pub fn erdos_renyi_paper(n: usize, eps: f64, seed: u64) -> Graph {
    let pe = paper_edge_probability(n, eps);
    erdos_renyi(n, pe, seed)
}

/// The paper's edge-probability formula `pe = (1 + ε)·ln(n)/n`, clamped to
/// `[0, 1]`.
pub fn paper_edge_probability(n: usize, eps: f64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    ((1.0 + eps) * (n as f64).ln() / n as f64).clamp(0.0, 1.0)
}

/// Erdős–Rényi `G(n, p)` with uniform weights in `[1, 10)`.
///
/// Uses geometric edge-skipping, so generation is `O(|E|)` rather than
/// `O(n²)` — the paper likewise notes its generator is tuned to be fast.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut g = Graph::new(n);
    if n < 2 || p == 0.0 {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                g.add_edge(u, v, rng.gen_range(1.0..10.0));
            }
        }
        return g;
    }
    // Iterate candidate pairs (u < v) in lexicographic order, skipping a
    // geometric number of non-edges at a time.
    let ln_q = (1.0 - p).ln();
    let total = n * (n - 1) / 2;
    let mut idx: usize = 0;
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / ln_q).floor() as usize;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        let (u, v) = pair_from_index(n, idx);
        g.add_edge(u, v, rng.gen_range(1.0..10.0));
        idx += 1;
        if idx >= total {
            break;
        }
    }
    g
}

/// Maps a linear index in `[0, n(n-1)/2)` to the pair `(u, v)`, `u < v`,
/// enumerated lexicographically.
fn pair_from_index(n: usize, idx: usize) -> (u32, u32) {
    // Row u contributes (n - 1 - u) pairs. Solve for u by walking rows;
    // amortized O(1) for random idx would need algebra, but generation is
    // already O(|E|) with small constants, so a direct inversion is used.
    let mut u = 0usize;
    let mut before = 0usize;
    loop {
        let row = n - 1 - u;
        if idx < before + row {
            let v = u + 1 + (idx - before);
            return (u as u32, v as u32);
        }
        before += row;
        u += 1;
    }
}

/// Directed Erdős–Rényi: each ordered pair `(u, v)`, `u ≠ v`, becomes an
/// arc with probability `p`, weights uniform in `[1, 10)`.
pub fn erdos_renyi_directed(n: usize, p: f64, seed: u64) -> crate::DiGraph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut g = crate::DiGraph::new(n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1C7);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen::<f64>() < p {
                g.add_arc(u, v, rng.gen_range(1.0..10.0));
            }
        }
    }
    g
}

/// Path graph `0 - 1 - ... - (n-1)` with unit weights: `d(i,j) = |i-j|`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n as u32 {
        g.add_edge(i - 1, i, 1.0);
    }
    g
}

/// Cycle graph with unit weights: `d(i,j) = min(|i-j|, n-|i-j|)`.
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n > 2 {
        g.add_edge(n as u32 - 1, 0, 1.0);
    }
    g
}

/// 2D grid graph of `rows × cols` vertices with unit weights; vertex
/// `(r, c)` has index `r * cols + c`. Shortest distances are Manhattan
/// distances.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                g.add_edge(id, id + 1, 1.0);
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols as u32, 1.0);
            }
        }
    }
    g
}

/// Road-network-like graph: a `rows × cols` grid whose street segments
/// carry perturbed (quasi-Euclidean) lengths, plus a small fraction of
/// diagonal shortcuts. Vertex `(r, c)` has index `r * cols + c`, like
/// [`grid`].
///
/// Axis edges are unit length perturbed by ±25%; roughly 5% of cells
/// additionally get a diagonal of perturbed length √2. All weights are
/// quantized to multiples of `2⁻¹⁰` (dyadic rationals), so every path
/// sum is exact in `f64` regardless of summation order — solvers that
/// relax edges in different orders (blocked min-plus, Dijkstra,
/// hierarchical stitching) produce **bit-identical** distances on this
/// family, which is what the differential suites rely on.
///
/// Deterministic given `perturb_seed`.
pub fn road_grid(rows: usize, cols: usize, perturb_seed: u64) -> Graph {
    let mut g = Graph::new(rows * cols);
    let mut rng = StdRng::seed_from_u64(perturb_seed ^ 0x40AD);
    // Snap to the dyadic lattice k/1024; keep weights strictly positive.
    let quantize = |x: f64| ((x * 1024.0).round() / 1024.0).max(1.0 / 1024.0);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as u32;
            if c + 1 < cols {
                g.add_edge(id, id + 1, quantize(rng.gen_range(0.75..1.25)));
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols as u32, quantize(rng.gen_range(0.75..1.25)));
            }
            if r + 1 < rows && c + 1 < cols && rng.gen::<f64>() < 0.05 {
                let diag = std::f64::consts::SQRT_2 * rng.gen_range(0.9..1.1);
                g.add_edge(id, id + cols as u32 + 1, quantize(diag));
            }
        }
    }
    g
}

/// Complete graph with uniform random weights in `[1, 10)`.
pub fn complete(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 1.0, seed)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices with probability proportional to degree. Produces
/// the heavy-tailed degree distributions typical of real networks (the
/// "networks classification" workloads of the paper's §1).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count must be at least 1");
    assert!(n > m, "need more vertices than the attachment count");
    let mut g = Graph::new(n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA);
    // Degree-proportional sampling via the repeated-endpoints urn.
    let mut urn: Vec<u32> = (0..=m as u32).collect();
    // Seed clique over the first m+1 vertices.
    for u in 0..=m as u32 {
        for v in (u + 1)..=m as u32 {
            g.add_edge(u, v, rng.gen_range(1.0..10.0));
        }
    }
    for _ in 0..m {
        urn.extend(0..=m as u32); // clique degrees
    }
    for v in (m + 1)..n {
        let mut targets = std::collections::HashSet::new();
        while targets.len() < m {
            targets.insert(urn[rng.gen_range(0..urn.len())]);
        }
        for &t in &targets {
            g.add_edge(v as u32, t, rng.gen_range(1.0..10.0));
            urn.push(t);
            urn.push(v as u32);
        }
    }
    g
}

/// Random geometric graph: `n` points uniform in the unit square,
/// connected (with Euclidean weights) when closer than `radius`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6E0);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let mut g = Graph::new(n);
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
            let d2 = dx * dx + dy * dy;
            if d2 <= r2 {
                g.add_edge(i as u32, j as u32, d2.sqrt().max(f64::MIN_POSITIVE));
            }
        }
    }
    g
}

/// A point cloud sampled from a noisy 2D "swiss roll"-style curve embedded
/// in 3D, connected by a k-nearest-neighbour graph with Euclidean weights.
///
/// This is the manifold-learning workload from the paper's introduction
/// (Isomap/MDS pipelines run APSP over exactly this kind of neighborhood
/// graph). Returns the graph and the generated points.
pub fn knn_swiss_roll(n: usize, k: usize, seed: u64) -> (Graph, Vec<[f64; 3]>) {
    assert!(k >= 1, "k must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let t = 1.5 * std::f64::consts::PI * (1.0 + 2.0 * rng.gen::<f64>());
        let y = 21.0 * rng.gen::<f64>();
        let noise = 0.05;
        points.push([
            t * t.cos() + noise * rng.gen::<f64>(),
            y,
            t * t.sin() + noise * rng.gen::<f64>(),
        ]);
    }
    let mut g = Graph::new(n);
    // O(n^2 log k) brute-force kNN — fine at example scale.
    let mut seen = std::collections::HashSet::new();
    for i in 0..n {
        let mut dists: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let d2: f64 = (0..3).map(|c| (points[i][c] - points[j][c]).powi(2)).sum();
                (j, d2.sqrt())
            })
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for &(j, d) in dists.iter().take(k) {
            let key = (i.min(j), i.max(j));
            if seen.insert(key) {
                g.add_edge(key.0 as u32, key.1 as u32, d);
            }
        }
    }
    (g, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floyd_warshall;

    #[test]
    fn paper_probability_formula() {
        let n = 1024;
        let pe = paper_edge_probability(n, 0.1);
        let expect = 1.1 * (1024f64).ln() / 1024.0;
        assert!((pe - expect).abs() < 1e-12);
    }

    #[test]
    fn er_is_deterministic_per_seed() {
        let a = erdos_renyi(200, 0.05, 7);
        let b = erdos_renyi(200, 0.05, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(eb.iter()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
            assert_eq!(x.2, y.2);
        }
        let c = erdos_renyi(200, 0.05, 8);
        // Overwhelmingly likely to differ.
        let differs =
            a.num_edges() != c.num_edges() || a.edges().zip(c.edges()).any(|(x, y)| x != y);
        assert!(differs);
    }

    #[test]
    fn er_edge_count_near_expectation() {
        let n = 2000;
        let p = 0.01;
        let g = erdos_renyi(n, p, 99);
        let expect = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        // Within 15% of the mean (std dev is ~√expect ≈ 140 here).
        assert!(
            (got - expect).abs() < 0.15 * expect,
            "edges {got} vs expectation {expect}"
        );
    }

    #[test]
    fn er_paper_density_is_connected_usually() {
        // Just above the connectivity threshold; a small graph may
        // occasionally disconnect, so assert "few components", not one.
        let g = erdos_renyi_paper(512, 0.1, 3);
        assert!(g.connected_components() <= 8);
    }

    #[test]
    fn er_p_one_is_complete() {
        let g = erdos_renyi(20, 1.0, 1);
        assert_eq!(g.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn er_p_zero_is_empty() {
        let g = erdos_renyi(20, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn pair_index_roundtrip() {
        let n = 9;
        let mut idx = 0;
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                assert_eq!(pair_from_index(n, idx), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn path_distances() {
        let d = floyd_warshall(&path(6));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(d.get(i, j), (i as f64 - j as f64).abs());
            }
        }
    }

    #[test]
    fn cycle_distances() {
        let n = 7;
        let d = floyd_warshall(&cycle(n));
        for i in 0..n {
            for j in 0..n {
                let lin = (i as i64 - j as i64).unsigned_abs() as usize;
                assert_eq!(d.get(i, j), lin.min(n - lin) as f64);
            }
        }
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let (r, c) = (4, 5);
        let d = floyd_warshall(&grid(r, c));
        for a in 0..r * c {
            for b in 0..r * c {
                let (ra, ca) = (a / c, a % c);
                let (rb, cb) = (b / c, b % c);
                let manhattan = (ra as i64 - rb as i64).abs() + (ca as i64 - cb as i64).abs();
                assert_eq!(d.get(a, b), manhattan as f64);
            }
        }
    }

    #[test]
    fn barabasi_albert_is_heavy_tailed() {
        let n = 300;
        let m = 3;
        let g = barabasi_albert(n, m, 9);
        assert_eq!(g.order(), n);
        // |E| = clique + m per newcomer.
        assert_eq!(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
        // Degree skew: the max degree dwarfs the median.
        let mut deg = vec![0usize; n];
        for (u, v, _) in g.edges() {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg.sort_unstable();
        let median = deg[n / 2];
        let max = deg[n - 1];
        assert!(
            max >= 4 * median,
            "expected hub formation: max {max} vs median {median}"
        );
        // Usable as a solver input.
        let d = floyd_warshall(&g);
        assert!(d.count_finite() == n * n, "BA graphs are connected");
    }

    #[test]
    fn random_geometric_respects_radius() {
        let g = random_geometric(120, 0.2, 5);
        for (_, _, w) in g.edges() {
            assert!(w <= 0.2 + 1e-12);
            assert!(w > 0.0);
        }
        // Radius 0 → no edges; radius √2 → complete.
        assert_eq!(random_geometric(50, 0.0, 1).num_edges(), 0);
        assert_eq!(random_geometric(50, 1.5, 1).num_edges(), 50 * 49 / 2);
    }

    #[test]
    fn road_grid_weights_are_dyadic_and_deterministic() {
        let g = road_grid(12, 9, 42);
        assert_eq!(g.order(), 108);
        // At least the axis edges are present; a few diagonals too.
        let axis = 12 * 8 + 11 * 9;
        assert!(g.num_edges() >= axis, "axis edges missing");
        assert!(g.num_edges() > axis, "expected some diagonal shortcuts");
        for (u, v, w) in g.edges() {
            assert!(u != v);
            assert!(w > 0.0);
            let scaled = w * 1024.0;
            assert_eq!(scaled, scaled.round(), "weight {w} is not dyadic");
        }
        let h = road_grid(12, 9, 42);
        assert!(g.edges().eq(h.edges()), "same seed must reproduce");
        let k = road_grid(12, 9, 43);
        assert!(!g.edges().eq(k.edges()), "different seed should differ");
    }

    #[test]
    fn road_grid_stays_connected_and_sparse() {
        let g = road_grid(10, 10, 7);
        assert_eq!(g.connected_components(), 1);
        assert!(g.density() < 0.05, "density {}", g.density());
    }

    #[test]
    fn knn_graph_reasonable() {
        let (g, pts) = knn_swiss_roll(60, 4, 11);
        assert_eq!(g.order(), 60);
        assert_eq!(pts.len(), 60);
        assert!(g.num_edges() >= 60 * 4 / 2); // dedup can only reduce below n*k
        assert!(g.max_weight().unwrap() > 0.0);
    }
}
