//! Blocked Kleene closure over arbitrary semirings.
//!
//! The paper's §2 observes that APSP is matrix closure over (min, +) and
//! cites the GraphBLAS line of work; this module provides the blocked
//! (Venkataraman-style) closure for *any* [`Semiring`] — the same
//! three-phase structure the distributed solvers use, executable
//! sequentially over [`GenBlock`]s. Instantiated over [`crate::BoolSemiring`]
//! it computes blocked transitive closure (Katz & Kider's GPU kernel,
//! cited as \[10\]); over the tropical semirings it is a reference model
//! of the Blocked In-Memory / Collect-Broadcast compute pattern.

use crate::semiring::{GenBlock, Semiring};

/// A dense matrix over a semiring, stored as `q × q` blocks of side `b`
/// (padded with `0̄` off-diagonal / `1̄` on the diagonal).
pub struct BlockedGenMatrix<S: Semiring> {
    n: usize,
    b: usize,
    q: usize,
    blocks: Vec<GenBlock<S>>, // row-major block order
}

impl<S: Semiring> BlockedGenMatrix<S> {
    /// Builds from an element accessor.
    pub fn from_fn(n: usize, b: usize, mut f: impl FnMut(usize, usize) -> S::Elem) -> Self {
        assert!(b > 0, "block side must be positive");
        let q = n.div_ceil(b);
        let mut blocks = Vec::with_capacity(q * q);
        for bi in 0..q {
            for bj in 0..q {
                blocks.push(GenBlock::from_fn(b, |i, j| {
                    let (gi, gj) = (bi * b + i, bj * b + j);
                    if gi < n && gj < n {
                        f(gi, gj)
                    } else if gi == gj {
                        S::one()
                    } else {
                        S::zero()
                    }
                }));
            }
        }
        BlockedGenMatrix { n, b, q, blocks }
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> S::Elem {
        assert!(i < self.n && j < self.n, "index out of range");
        self.blocks[(i / self.b) * self.q + (j / self.b)].get(i % self.b, j % self.b)
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Grid order `q`.
    pub fn grid(&self) -> usize {
        self.q
    }

    fn idx(&self, bi: usize, bj: usize) -> usize {
        bi * self.q + bj
    }

    /// In-place blocked Kleene closure: the three-phase iteration of the
    /// paper's Figure 1 (diagonal closure → pivot cross update → remainder
    /// update), over this semiring.
    pub fn closure_in_place(&mut self) {
        let q = self.q;
        for i in 0..q {
            // Phase 1: close the diagonal block.
            let di = self.idx(i, i);
            self.blocks[di].closure_in_place();
            let diag = self.blocks[di].clone();

            // Phase 2: pivot column (right-multiply) and row (left-multiply).
            for t in 0..q {
                if t == i {
                    continue;
                }
                let ci = self.idx(t, i);
                let prod = self.blocks[ci].mat_mul(&diag);
                self.blocks[ci].mat_add_assign(&prod);
                let ri = self.idx(i, t);
                let prod = diag.mat_mul(&self.blocks[ri]);
                self.blocks[ri].mat_add_assign(&prod);
            }

            // Phase 3: remainder.
            for x in 0..q {
                if x == i {
                    continue;
                }
                let left = self.blocks[self.idx(x, i)].clone();
                for y in 0..q {
                    if y == i {
                        continue;
                    }
                    let prod = left.mat_mul(&self.blocks[self.idx(i, y)]);
                    let target = self.idx(x, y);
                    self.blocks[target].mat_add_assign(&prod);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{BoolSemiring, TropicalF64, TropicalI64};
    use crate::{Matrix, INF};

    #[test]
    fn tropical_blocked_closure_matches_dense_fw() {
        // A small weighted graph; compare blocked generic closure against
        // the dense f64 Floyd-Warshall.
        let n = 23;
        let weight = |i: usize, j: usize| -> f64 {
            if i == j {
                0.0
            } else if (i * 7 + j * 3).is_multiple_of(5) {
                1.0 + ((i * 13 + j) % 9) as f64
            } else {
                INF
            }
        };
        for b in [4usize, 8, 23, 30] {
            let mut blocked = BlockedGenMatrix::<TropicalF64>::from_fn(n, b, weight);
            blocked.closure_in_place();
            let mut dense = Matrix::from_fn(n, weight);
            dense.floyd_warshall_in_place();
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(blocked.get(i, j), dense.get(i, j), "b={b} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn boolean_blocked_closure_is_transitive_closure() {
        // Directed reachability: ring 0→1→…→9→0 plus a dead-end vertex.
        let n = 11;
        let edge = |i: usize, j: usize| -> bool {
            if i == j {
                return true;
            }
            i < 10 && j == (i + 1) % 10
        };
        let mut blocked = BlockedGenMatrix::<BoolSemiring>::from_fn(n, 3, edge);
        blocked.closure_in_place();
        for i in 0..10 {
            for j in 0..10 {
                assert!(blocked.get(i, j), "ring must be fully reachable ({i},{j})");
            }
            assert!(!blocked.get(i, 10), "dead-end vertex must stay unreachable");
            assert!(!blocked.get(10, i));
        }
        assert!(blocked.get(10, 10));
    }

    #[test]
    fn integer_tropical_closure() {
        // Unit-weight directed path with i64 weights.
        let n = 9;
        let mut blocked = BlockedGenMatrix::<TropicalI64>::from_fn(n, 4, |i, j| {
            if i == j {
                0
            } else if j == i + 1 {
                1
            } else {
                i64::MAX
            }
        });
        blocked.closure_in_place();
        for i in 0..n {
            for j in 0..n {
                let expect = if j >= i { (j - i) as i64 } else { i64::MAX };
                assert_eq!(blocked.get(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn padding_is_inert() {
        let n = 5;
        let mut blocked = BlockedGenMatrix::<TropicalF64>::from_fn(n, 4, |i, j| {
            if i == j {
                0.0
            } else if j == i + 1 || i == j + 1 {
                1.0
            } else {
                INF
            }
        });
        blocked.closure_in_place();
        assert_eq!(blocked.get(0, 4), 4.0);
        assert_eq!(blocked.get(4, 0), 4.0);
    }
}
