//! Blocked Kleene closure over arbitrary path algebras.
//!
//! The paper's §2 observes that APSP is matrix closure over (min, +) and
//! cites the GraphBLAS line of work; this module provides the blocked
//! (Venkataraman-style) closure in two strengths:
//!
//! * [`BlockedGenMatrix`] — element-only closure for *any* [`Semiring`],
//!   the executable specification of the three-phase compute pattern;
//! * [`AlgClosure`] — closure over any [`PathAlgebra`], i.e. elements
//!   *plus* per-cell payloads, routed through the algebra's kernel hooks.
//!   Instantiated over [`crate::TrackedTropical`] it is the sequential
//!   reference model for the distributed path-tracking solvers
//!   ([`TrackedClosure`]); over [`crate::Widest`] or
//!   [`crate::Reachability`] it is the sequential oracle for the
//!   bottleneck and transitive-closure workloads — running on the packed
//!   *(max, min)* and bitset kernel tiers respectively (pin
//!   [`MinPlusKernel::Naive`] to force the generic fallback loops).

use crate::algebra::{AlgBlock, Elem, PathAlgebra, TrackedTropical};
use crate::block::ElemBlock;
use crate::kernels::MinPlusKernel;
use crate::parent::Offsets;
use crate::semiring::{GenBlock, Semiring};
use crate::Matrix;

/// A dense matrix over a semiring, stored as `q × q` blocks of side `b`
/// (padded with `0̄` off-diagonal / `1̄` on the diagonal).
pub struct BlockedGenMatrix<S: Semiring> {
    n: usize,
    b: usize,
    q: usize,
    blocks: Vec<GenBlock<S>>, // row-major block order
}

impl<S: Semiring> BlockedGenMatrix<S> {
    /// Builds from an element accessor.
    pub fn from_fn(n: usize, b: usize, mut f: impl FnMut(usize, usize) -> S::Elem) -> Self {
        assert!(b > 0, "block side must be positive");
        let q = n.div_ceil(b);
        let mut blocks = Vec::with_capacity(q * q);
        for bi in 0..q {
            for bj in 0..q {
                blocks.push(GenBlock::from_fn(b, |i, j| {
                    let (gi, gj) = (bi * b + i, bj * b + j);
                    if gi < n && gj < n {
                        f(gi, gj)
                    } else if gi == gj {
                        S::one()
                    } else {
                        S::zero()
                    }
                }));
            }
        }
        BlockedGenMatrix { n, b, q, blocks }
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> S::Elem {
        assert!(i < self.n && j < self.n, "index out of range");
        self.blocks[(i / self.b) * self.q + (j / self.b)].get(i % self.b, j % self.b)
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Grid order `q`.
    pub fn grid(&self) -> usize {
        self.q
    }

    fn idx(&self, bi: usize, bj: usize) -> usize {
        bi * self.q + bj
    }

    /// In-place blocked Kleene closure: the three-phase iteration of the
    /// paper's Figure 1 (diagonal closure → pivot cross update → remainder
    /// update), over this semiring.
    pub fn closure_in_place(&mut self) {
        let q = self.q;
        for i in 0..q {
            // Phase 1: close the diagonal block.
            let di = self.idx(i, i);
            self.blocks[di].closure_in_place();
            let diag = self.blocks[di].clone();

            // Phase 2: pivot column (right-multiply) and row (left-multiply).
            for t in 0..q {
                if t == i {
                    continue;
                }
                let ci = self.idx(t, i);
                let prod = self.blocks[ci].mat_mul(&diag);
                self.blocks[ci].mat_add_assign(&prod);
                let ri = self.idx(i, t);
                let prod = diag.mat_mul(&self.blocks[ri]);
                self.blocks[ri].mat_add_assign(&prod);
            }

            // Phase 3: remainder.
            for x in 0..q {
                if x == i {
                    continue;
                }
                let left = self.blocks[self.idx(x, i)].clone();
                for y in 0..q {
                    if y == i {
                        continue;
                    }
                    let prod = left.mat_mul(&self.blocks[self.idx(i, y)]);
                    let target = self.idx(x, y);
                    self.blocks[target].mat_add_assign(&prod);
                }
            }
        }
    }
}

/// Blocked Kleene closure over any [`PathAlgebra`]: the sequential
/// reference model of the distributed generic solvers.
///
/// Stores the full `q × q` grid of [`AlgBlock`]s (no symmetry packing —
/// this is the oracle, not the distributed representation) and runs the
/// same three-phase pivot iteration as
/// [`BlockedGenMatrix::closure_in_place`], with every phase routed through
/// the algebra's kernel hooks, so each cell records whatever payload the
/// algebra tracks (argmin vias for [`TrackedTropical`], nothing for the
/// payload-free algebras).
pub struct AlgClosure<A: PathAlgebra> {
    n: usize,
    b: usize,
    q: usize,
    blocks: Vec<AlgBlock<A>>, // row-major block order
}

/// Blocked Kleene closure over the `f64` tropical fast path with **parent
/// tracking** — the [`TrackedTropical`] instantiation of [`AlgClosure`].
pub type TrackedClosure = AlgClosure<TrackedTropical>;

impl<A: PathAlgebra> AlgClosure<A> {
    /// Decomposes a dense element accessor into algebra blocks (padded
    /// with `0̄` off-diagonal / `1̄` on the diagonal, payloads all empty).
    pub fn from_fn(n: usize, b: usize, mut f: impl FnMut(usize, usize) -> Elem<A>) -> Self {
        assert!(b > 0, "block side must be positive");
        let q = n.div_ceil(b);
        let mut blocks = Vec::with_capacity(q * q);
        for bi in 0..q {
            for bj in 0..q {
                let dist = ElemBlock::from_fn(b, |i, j| {
                    let (gi, gj) = (bi * b + i, bj * b + j);
                    if gi < n && gj < n {
                        f(gi, gj)
                    } else if gi == gj {
                        A::Semi::one()
                    } else {
                        A::Semi::zero()
                    }
                });
                blocks.push(AlgBlock::from_dist(dist));
            }
        }
        AlgClosure { n, b, q, blocks }
    }

    fn idx(&self, bi: usize, bj: usize) -> usize {
        bi * self.q + bj
    }

    /// In-place blocked Kleene closure (three-phase pivot iteration, every
    /// relaxation recording the algebra's payload).
    pub fn closure_in_place(&mut self, kernel: MinPlusKernel) {
        let (q, b) = (self.q, self.b);
        for i in 0..q {
            let k0 = i * b;
            // Phase 1: close the diagonal block, tracking payloads globally.
            let di = self.idx(i, i);
            self.blocks[di].floyd_warshall_in_place(k0);
            let diag = self.blocks[di].dist().clone();

            // Phase 2: pivot column (right-multiply) and row (left-multiply).
            for t in 0..q {
                if t == i {
                    continue;
                }
                let ci = self.idx(t, i);
                self.blocks[ci].min_plus_assign(kernel, &diag, Offsets::blocks(b, i, t, i));
                let ri = self.idx(i, t);
                self.blocks[ri].min_plus_left_assign(kernel, &diag, Offsets::blocks(b, i, i, t));
            }

            // Phase 3: remainder, folding `A_Xi ⊗ A_iY` into `A_XY`.
            // Pivot-row operands are cloned once per pivot, not per target.
            let rights: Vec<ElemBlock<A::Semi>> = (0..q)
                .map(|y| self.blocks[self.idx(i, y)].dist().clone())
                .collect();
            for x in 0..q {
                if x == i {
                    continue;
                }
                let left = self.blocks[self.idx(x, i)].dist().clone();
                for (y, right) in rights.iter().enumerate() {
                    if y == i {
                        continue;
                    }
                    let target = self.idx(x, y);
                    self.blocks[target].min_plus_into_self(
                        kernel,
                        &left,
                        right,
                        Offsets::blocks(b, i, x, y),
                    );
                }
            }
        }
    }

    /// Reassembles the dense element matrix (as a side-`n`
    /// [`ElemBlock`]) and the flat `n × n` payload matrix (row-major,
    /// empty payload for direct/unreachable/diagonal cells), trimming
    /// padding.
    pub fn into_dense(self) -> (ElemBlock<A::Semi>, Vec<A::Payload>) {
        let (n, b, q) = (self.n, self.b, self.q);
        let mut dist = ElemBlock::zeros(n);
        let mut pay = vec![A::empty_payload(); n * n];
        for bi in 0..q {
            for bj in 0..q {
                let blk = &self.blocks[bi * q + bj];
                for i in 0..b {
                    let gi = bi * b + i;
                    if gi >= n {
                        continue;
                    }
                    for j in 0..b {
                        let gj = bj * b + j;
                        if gj < n {
                            dist.set(gi, gj, blk.dist().get(i, j));
                            pay[gi * n + gj] = blk.via().get(i, j);
                        }
                    }
                }
            }
        }
        (dist, pay)
    }
}

impl TrackedClosure {
    /// Decomposes a dense adjacency matrix into tracked blocks (padded
    /// with `INF` off-diagonal / `0` on the diagonal, vias all
    /// [`crate::NO_VIA`]).
    pub fn from_matrix(m: &Matrix, b: usize) -> Self {
        Self::from_fn(m.order(), b, |i, j| m.get(i, j))
    }

    /// Reassembles the dense distance matrix and the flat `n × n` via
    /// matrix (row-major, [`crate::NO_VIA`] for direct/unreachable/diagonal
    /// cells), trimming padding.
    pub fn into_parts(self) -> (Matrix, Vec<u32>) {
        let n = self.n;
        let (dist, via) = self.into_dense();
        (Matrix::from_vec(n, dist.data().to_vec()), via)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parent::NO_VIA;
    use crate::semiring::{BoolSemiring, TropicalF64, TropicalI64};
    use crate::{Reachability, Widest, INF};

    #[test]
    fn tropical_blocked_closure_matches_dense_fw() {
        // A small weighted graph; compare blocked generic closure against
        // the dense f64 Floyd-Warshall.
        let n = 23;
        let weight = |i: usize, j: usize| -> f64 {
            if i == j {
                0.0
            } else if (i * 7 + j * 3).is_multiple_of(5) {
                1.0 + ((i * 13 + j) % 9) as f64
            } else {
                INF
            }
        };
        for b in [4usize, 8, 23, 30] {
            let mut blocked = BlockedGenMatrix::<TropicalF64>::from_fn(n, b, weight);
            blocked.closure_in_place();
            let mut dense = Matrix::from_fn(n, weight);
            dense.floyd_warshall_in_place();
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(blocked.get(i, j), dense.get(i, j), "b={b} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn boolean_blocked_closure_is_transitive_closure() {
        // Directed reachability: ring 0→1→…→9→0 plus a dead-end vertex.
        let n = 11;
        let edge = |i: usize, j: usize| -> bool {
            if i == j {
                return true;
            }
            i < 10 && j == (i + 1) % 10
        };
        let mut blocked = BlockedGenMatrix::<BoolSemiring>::from_fn(n, 3, edge);
        blocked.closure_in_place();
        for i in 0..10 {
            for j in 0..10 {
                assert!(blocked.get(i, j), "ring must be fully reachable ({i},{j})");
            }
            assert!(!blocked.get(i, 10), "dead-end vertex must stay unreachable");
            assert!(!blocked.get(10, i));
        }
        assert!(blocked.get(10, 10));
    }

    #[test]
    fn integer_tropical_closure() {
        // Unit-weight directed path with i64 weights.
        let n = 9;
        let mut blocked = BlockedGenMatrix::<TropicalI64>::from_fn(n, 4, |i, j| {
            if i == j {
                0
            } else if j == i + 1 {
                1
            } else {
                i64::MAX
            }
        });
        blocked.closure_in_place();
        for i in 0..n {
            for j in 0..n {
                let expect = if j >= i { (j - i) as i64 } else { i64::MAX };
                assert_eq!(blocked.get(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn tracked_closure_matches_dense_fw_and_vias_split_exactly() {
        let n = 29;
        let weight = |i: usize, j: usize| -> f64 {
            if i == j {
                0.0
            } else if (i * 7 + j * 3).is_multiple_of(5) {
                1.0 + ((i * 13 + j) % 9) as f64
            } else {
                INF
            }
        };
        // Symmetrize: the solvers' instances are undirected.
        let sym = |i: usize, j: usize| weight(i.min(j), i.max(j));
        let mut dense = Matrix::from_fn(n, sym);
        dense.floyd_warshall_in_place();
        for b in [4usize, 8, 29, 32] {
            let mut tc = TrackedClosure::from_matrix(&Matrix::from_fn(n, sym), b);
            tc.closure_in_place(MinPlusKernel::Auto);
            let (dist, via) = tc.into_parts();
            assert!(dist.approx_eq(&dense, 1e-9).is_ok(), "b={b}");
            for i in 0..n {
                for j in 0..n {
                    let v = via[i * n + j];
                    if v == NO_VIA {
                        continue;
                    }
                    let k = v as usize;
                    assert!(k != i && k != j, "degenerate via {k} at ({i},{j}), b={b}");
                    // The defining split invariant against final distances.
                    assert_eq!(
                        dist.get(i, k) + dist.get(k, j),
                        dist.get(i, j),
                        "via split broken at ({i},{j}) through {k}, b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn tracked_closure_leaves_direct_edges_untracked() {
        let mut m = Matrix::identity(6);
        for i in 0..5 {
            m.set(i, i + 1, 1.0);
            m.set(i + 1, i, 1.0);
        }
        let mut tc = TrackedClosure::from_matrix(&m, 4);
        tc.closure_in_place(MinPlusKernel::Auto);
        let (dist, via) = tc.into_parts();
        assert_eq!(dist.get(0, 5), 5.0);
        assert_eq!(via[1], NO_VIA, "direct edge (0,1) must stay untracked");
        assert_ne!(via[5], NO_VIA, "multi-hop (0,5) must carry a via");
    }

    #[test]
    fn widest_alg_closure_matches_elementwise_reference() {
        // Blocked AlgClosure over (max, min) vs the element-only blocked
        // closure — same fixpoint, different machinery.
        let n = 17;
        let cap = |i: usize, j: usize| -> f64 {
            if i == j {
                f64::INFINITY
            } else if (i + j).is_multiple_of(3) {
                1.0 + ((i * 5 + j) % 7) as f64
            } else {
                0.0
            }
        };
        let sym = |i: usize, j: usize| cap(i.min(j), i.max(j));
        for b in [4usize, 17, 20] {
            let mut alg = AlgClosure::<Widest>::from_fn(n, b, sym);
            alg.closure_in_place(MinPlusKernel::Auto);
            let (wide, _) = alg.into_dense();
            let mut reference = BlockedGenMatrix::<crate::BottleneckF64>::from_fn(n, 5, sym);
            reference.closure_in_place();
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(wide.get(i, j), reference.get(i, j), "b={b} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn reachability_alg_closure_matches_boolean_reference() {
        let n = 13;
        let edge = |i: usize, j: usize| i == j || (i < 12 && j == i + 1) || (j < 12 && i == j + 1);
        for b in [3usize, 13] {
            let mut alg = AlgClosure::<Reachability>::from_fn(n, b, edge);
            alg.closure_in_place(MinPlusKernel::Auto);
            let (reach, _) = alg.into_dense();
            let mut reference = BlockedGenMatrix::<BoolSemiring>::from_fn(n, 4, edge);
            reference.closure_in_place();
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(reach.get(i, j), reference.get(i, j), "b={b} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn padding_is_inert() {
        let n = 5;
        let mut blocked = BlockedGenMatrix::<TropicalF64>::from_fn(n, 4, |i, j| {
            if i == j {
                0.0
            } else if j == i + 1 || i == j + 1 {
                1.0
            } else {
                INF
            }
        });
        blocked.closure_in_place();
        assert_eq!(blocked.get(0, 4), 4.0);
        assert_eq!(blocked.get(4, 0), 4.0);
    }
}
