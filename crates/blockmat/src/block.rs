//! The square dense block type used throughout the APSP solvers, generic
//! over the element [`Semiring`].
//!
//! [`ElemBlock<S>`] is plain storage plus generic (semiring-loop) compute;
//! the hot-path `f64` tropical kernels live in an inherent impl on the
//! [`Block`] alias (`ElemBlock<TropicalF64>`), so the type the solvers
//! shuffle is *literally* the `TropicalF64` instantiation of the generic
//! block — same memory layout, same API, zero-cost.

use crate::semiring::{Semiring, TropicalF64};
use crate::{kernels, INF};
use std::fmt;
use std::marker::PhantomData;

/// A square, dense, row-major `b × b` matrix block over a [`Semiring`].
///
/// `Block` (= `ElemBlock<TropicalF64>`) is the unit of distribution in all
/// solvers: the adjacency matrix `A` of an `n`-vertex graph is
/// 2D-decomposed into `q × q` blocks of side `b` (`q = ⌈n/b⌉`), each
/// stored as one dense block keyed by `(I, J)`.
///
/// Entries are path-value upper bounds in the semiring order; the additive
/// identity `0̄` ([`INF`] for tropical, `false` for boolean, `0.0` for
/// bottleneck capacities) denotes "no path known". The in-place kernels
/// tighten entries monotonically under `⊕`, which is the invariant all
/// property tests lean on.
pub struct ElemBlock<S: Semiring> {
    b: usize,
    data: Box<[S::Elem]>,
    _algebra: PhantomData<S>,
}

/// The tropical `f64` block — the type the paper's solvers run on. All
/// fast-path kernels (packed/branchless/parallel min-plus, in-block
/// Floyd-Warshall, the rank-1 update) are inherent methods of this alias.
pub type Block = ElemBlock<TropicalF64>;

impl<S: Semiring> Clone for ElemBlock<S> {
    fn clone(&self) -> Self {
        ElemBlock {
            b: self.b,
            data: self.data.clone(),
            _algebra: PhantomData,
        }
    }
}

impl<S: Semiring> PartialEq for ElemBlock<S> {
    fn eq(&self, other: &Self) -> bool {
        self.b == other.b && self.data == other.data
    }
}

impl<S: Semiring> ElemBlock<S> {
    /// Creates a block filled with a constant value.
    pub fn filled(b: usize, value: S::Elem) -> Self {
        ElemBlock {
            b,
            data: vec![value; b * b].into_boxed_slice(),
            _algebra: PhantomData,
        }
    }

    /// Creates a block of all-`0̄` entries (the semiring zero matrix):
    /// all-[`INF`] for tropical, all-`false` for boolean.
    pub fn zeros(b: usize) -> Self {
        Self::filled(b, S::zero())
    }

    /// Creates the semiring identity: `1̄` on the diagonal, `0̄` elsewhere
    /// (`0`/[`INF`] for tropical).
    pub fn identity(b: usize) -> Self {
        let mut blk = Self::zeros(b);
        for i in 0..b {
            blk.data[i * b + i] = S::one();
        }
        blk
    }

    /// Builds a block from a function of `(row, col)`.
    pub fn from_fn(b: usize, mut f: impl FnMut(usize, usize) -> S::Elem) -> Self {
        let mut data = Vec::with_capacity(b * b);
        for i in 0..b {
            for j in 0..b {
                data.push(f(i, j));
            }
        }
        ElemBlock {
            b,
            data: data.into_boxed_slice(),
            _algebra: PhantomData,
        }
    }

    /// Wraps an existing row-major buffer of length `b * b`.
    ///
    /// # Panics
    /// Panics if `data.len() != b * b`.
    pub fn from_vec(b: usize, data: Vec<S::Elem>) -> Self {
        assert_eq!(data.len(), b * b, "buffer length must be b^2");
        ElemBlock {
            b,
            data: data.into_boxed_slice(),
            _algebra: PhantomData,
        }
    }

    /// Side length `b` of the block.
    #[inline(always)]
    pub fn side(&self) -> usize {
        self.b
    }

    /// Immutable view of the raw row-major buffer.
    #[inline(always)]
    pub fn data(&self) -> &[S::Elem] {
        &self.data
    }

    /// Mutable view of the raw row-major buffer.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [S::Elem] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> S::Elem {
        debug_assert!(i < self.b && j < self.b);
        self.data[i * self.b + j]
    }

    /// Entry mutator.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: S::Elem) {
        debug_assert!(i < self.b && j < self.b);
        self.data[i * self.b + j] = v;
    }

    /// Immutable view of row `i`.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[S::Elem] {
        &self.data[i * self.b..(i + 1) * self.b]
    }

    /// Extracts column `k` as an owned vector (the paper's `ExtractCol`).
    pub fn extract_col(&self, k: usize) -> Vec<S::Elem> {
        assert!(k < self.b, "column index out of range");
        (0..self.b).map(|i| self.data[i * self.b + k]).collect()
    }

    /// Extracts row `k` as an owned vector.
    pub fn extract_row(&self, k: usize) -> Vec<S::Elem> {
        assert!(k < self.b, "row index out of range");
        self.row(k).to_vec()
    }

    /// Returns the transposed block. Used to materialize `A_JI` on demand
    /// from the stored upper-triangular block `A_IJ` (paper §4).
    pub fn transpose(&self) -> Self {
        let b = self.b;
        let mut out = vec![S::zero(); b * b];
        // Simple cache-blocked transpose.
        const T: usize = 32;
        for ii in (0..b).step_by(T) {
            for jj in (0..b).step_by(T) {
                for i in ii..(ii + T).min(b) {
                    for j in jj..(jj + T).min(b) {
                        out[j * b + i] = self.data[i * b + j];
                    }
                }
            }
        }
        ElemBlock {
            b,
            data: out.into_boxed_slice(),
            _algebra: PhantomData,
        }
    }

    /// Whether the block is symmetric (only meaningful for diagonal blocks).
    pub fn is_symmetric(&self) -> bool {
        let b = self.b;
        for i in 0..b {
            for j in (i + 1)..b {
                if self.data[i * b + j] != self.data[j * b + i] {
                    return false;
                }
            }
        }
        true
    }

    /// Semiring matrix product `self ⊗ other` — the generic (fallback)
    /// triple loop with a `0̄`-skip. The executable specification the `f64`
    /// fast-path kernels are validated against, and the compute path for
    /// algebras without a specialized kernel tier.
    pub fn mat_mul(&self, other: &Self) -> Self {
        assert_eq!(self.b, other.b, "block sides must match");
        let n = self.b;
        let mut out = Self::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let aik = self.data[i * n + k];
                if aik == S::zero() {
                    continue;
                }
                for j in 0..n {
                    let v = S::mul(aik, other.data[k * n + j]);
                    out.data[i * n + j] = S::add(out.data[i * n + j], v);
                }
            }
        }
        out
    }

    /// Element-wise `⊕` fold: `self = self ⊕ other` (the paper's `MatMin`
    /// generalized).
    pub fn mat_add_assign(&mut self, other: &Self) {
        assert_eq!(self.b, other.b, "block sides must match");
        for (d, &o) in self.data.iter_mut().zip(other.data.iter()) {
            *d = S::add(*d, o);
        }
    }

    /// Kleene/Floyd-Warshall closure within the block:
    /// `d[i][j] ← d[i][j] ⊕ (d[i][k] ⊗ d[k][j])` for every pivot `k` —
    /// the generic loop ([`Block::floyd_warshall_in_place`] is the `f64`
    /// fast path).
    pub fn closure_in_place(&mut self) {
        let n = self.b;
        for k in 0..n {
            for i in 0..n {
                let dik = self.data[i * n + k];
                if dik == S::zero() {
                    continue;
                }
                for j in 0..n {
                    let v = S::mul(dik, self.data[k * n + j]);
                    self.data[i * n + j] = S::add(self.data[i * n + j], v);
                }
            }
        }
    }

    /// In-memory footprint of the block payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<S::Elem>()
    }
}

/// The `f64` tropical fast path: every method below dispatches into the
/// packed/branchless/parallel kernel engine in [`crate::kernels`].
impl Block {
    /// Creates a block of all-[`INF`] entries (the tropical zero matrix).
    pub fn infinity(b: usize) -> Self {
        Self::filled(b, INF)
    }

    /// Min-plus product `self ⊗ other` (the paper's `MatProd`).
    ///
    /// Returns a fresh block; does *not* fold the result into `self`
    /// (combine with [`Block::mat_min_assign`] for the `MinPlus` building
    /// block).
    pub fn min_plus(&self, other: &Block) -> Block {
        self.min_plus_with(kernels::MinPlusKernel::Auto, other)
    }

    /// [`Block::min_plus`] with an explicit kernel choice.
    pub fn min_plus_with(&self, kernel: kernels::MinPlusKernel, other: &Block) -> Block {
        assert_eq!(self.b, other.b, "block sides must match");
        let mut out = Block::infinity(self.b);
        kernels::min_plus_into_with(kernel, self, other, &mut out);
        out
    }

    /// Zero-alloc fold: `self = min(self, a ⊗ b)`.
    ///
    /// The workhorse of the solvers' Phase-3 updates
    /// (`A_XY = min(A_XY, A_Xi ⊗ A_iY)`): no product block is allocated —
    /// the kernel folds straight into `self`.
    pub fn min_plus_into_self(&mut self, a: &Block, b: &Block) {
        self.min_plus_into_self_with(kernels::MinPlusKernel::Auto, a, b);
    }

    /// [`Block::min_plus_into_self`] with an explicit kernel choice.
    pub fn min_plus_into_self_with(
        &mut self,
        kernel: kernels::MinPlusKernel,
        a: &Block,
        b: &Block,
    ) {
        kernels::min_plus_into_with(kernel, a, b, self);
    }

    /// Element-wise minimum with `other`, in place (the paper's `MatMin`).
    pub fn mat_min_assign(&mut self, other: &Block) {
        assert_eq!(self.b, other.b, "block sides must match");
        for (d, &o) in self.data.iter_mut().zip(other.data.iter()) {
            *d = kernels::tmin(o, *d);
        }
    }

    /// `self = min(self, self ⊗ other)` — the paper's `MinPlus` function.
    ///
    /// `self` is both an operand and the fold target, so the product is
    /// built in a reused thread-local scratch buffer (no allocation in
    /// steady state) and then folded in.
    pub fn min_plus_assign(&mut self, other: &Block) {
        self.min_plus_assign_with(kernels::MinPlusKernel::Auto, other);
    }

    /// [`Block::min_plus_assign`] with an explicit kernel choice.
    pub fn min_plus_assign_with(&mut self, kernel: kernels::MinPlusKernel, other: &Block) {
        assert_eq!(self.b, other.b, "block sides must match");
        let n = self.b;
        kernels::with_scratch(n * n, |scratch| {
            scratch.fill(INF);
            kernels::min_plus_slices_with(kernel, &self.data, other.data(), scratch, n);
            for (d, &s) in self.data.iter_mut().zip(scratch.iter()) {
                *d = kernels::tmin(s, *d);
            }
        });
    }

    /// `self = min(self, other ⊗ self)` — the left-operand mirror of
    /// [`Block::min_plus_assign`] (the pivot-row update of the blocked
    /// solvers), likewise scratch-buffered and allocation-free.
    pub fn min_plus_left_assign(&mut self, other: &Block) {
        self.min_plus_left_assign_with(kernels::MinPlusKernel::Auto, other);
    }

    /// [`Block::min_plus_left_assign`] with an explicit kernel choice.
    pub fn min_plus_left_assign_with(&mut self, kernel: kernels::MinPlusKernel, other: &Block) {
        assert_eq!(self.b, other.b, "block sides must match");
        let n = self.b;
        kernels::with_scratch(n * n, |scratch| {
            scratch.fill(INF);
            kernels::min_plus_slices_with(kernel, other.data(), &self.data, scratch, n);
            for (d, &s) in self.data.iter_mut().zip(scratch.iter()) {
                *d = kernels::tmin(s, *d);
            }
        });
    }

    /// Runs Floyd-Warshall to a fixpoint *within* the block, treating it as
    /// the adjacency matrix of a `b`-vertex graph (the paper's
    /// `FloydWarshall` building block applied to diagonal blocks).
    pub fn floyd_warshall_in_place(&mut self) {
        kernels::floyd_warshall_in_place(self);
    }

    /// Rank-1 Floyd-Warshall update (the paper's `FloydWarshallUpdate`):
    /// `self[i][j] = min(self[i][j], col_i[i] + col_j[j])`, where `col_i` is
    /// `B_Ik` (distances row-block `I` → pivot `k`) and `col_j` is `B_Jk`
    /// (distances pivot `k` → column-block `J`, using symmetry).
    pub fn fw_update_outer(&mut self, col_i: &[f64], col_j: &[f64]) {
        kernels::fw_update_outer(self, col_i, col_j);
    }

    /// Largest finite entry, or `None` if all entries are [`INF`].
    pub fn max_finite(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Number of finite (reachable) entries.
    pub fn count_finite(&self) -> usize {
        self.data.iter().filter(|v| v.is_finite()).count()
    }

    /// Approximate equality modulo floating-point rounding; `INF` entries
    /// must match exactly.
    pub fn approx_eq(&self, other: &Block, tol: f64) -> bool {
        self.b == other.b
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| crate::matrix::approx_eq_scalar(a, b, tol))
    }
}

/// A square boolean block packed 64 cells per `u64` word — the plane
/// representation of the bitset reachability kernels.
///
/// Row `i` occupies words `i * words_per_row .. (i + 1) * words_per_row`;
/// bit `j % 64` of word `j / 64` is cell `(i, j)`. **Invariant:** bits past
/// column `side - 1` in each row's last word are zero, so word-wide `|`/`&`
/// products preserve exact cell semantics and unpacking never reads
/// garbage. Pack/unpack happens at the block boundary
/// ([`BitBlock::from_bools`] / [`BitBlock::to_bools`]); the kernels in
/// [`crate::kernels`] (`bool_or_product_into`, `bool_closure_in_place`)
/// then run entirely at word level.
#[derive(Clone, PartialEq, Eq)]
pub struct BitBlock {
    side: usize,
    wpr: usize,
    words: Box<[u64]>,
}

impl BitBlock {
    /// Words per packed row for a block of side `n`.
    #[inline(always)]
    pub fn words_per_row_for(n: usize) -> usize {
        n.div_ceil(64)
    }

    /// An all-`false` block (the boolean zero matrix).
    pub fn zeros(b: usize) -> Self {
        let wpr = Self::words_per_row_for(b);
        BitBlock {
            side: b,
            wpr,
            words: vec![0u64; b * wpr].into_boxed_slice(),
        }
    }

    /// Packs a row-major `b × b` boolean plane.
    ///
    /// # Panics
    /// Panics if `data.len() != b * b`.
    pub fn from_bools(b: usize, data: &[bool]) -> Self {
        assert_eq!(data.len(), b * b, "buffer length must be b^2");
        let mut blk = Self::zeros(b);
        Self::pack_slice(data, b, &mut blk.words);
        blk
    }

    /// Packs a boolean element block.
    pub fn from_elem_block(block: &ElemBlock<crate::semiring::BoolSemiring>) -> Self {
        Self::from_bools(block.side(), block.data())
    }

    /// Unpacks into a row-major `Vec<bool>` plane.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = vec![false; self.side * self.side];
        Self::unpack_slice(&self.words, self.side, &mut out);
        out
    }

    /// Unpacks into a boolean element block.
    pub fn to_elem_block(&self) -> ElemBlock<crate::semiring::BoolSemiring> {
        ElemBlock::from_vec(self.side, self.to_bools())
    }

    /// Side length `b`.
    #[inline(always)]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Words per packed row.
    #[inline(always)]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    /// The packed word plane.
    #[inline(always)]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed word plane. Callers must preserve the
    /// zero-tail-bits invariant.
    #[inline(always)]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Cell accessor.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.side && j < self.side);
        self.words[i * self.wpr + j / 64] >> (j % 64) & 1 == 1
    }

    /// Cell mutator.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        assert!(i < self.side && j < self.side, "index out of range");
        let w = &mut self.words[i * self.wpr + j / 64];
        if v {
            *w |= 1u64 << (j % 64);
        } else {
            *w &= !(1u64 << (j % 64));
        }
    }

    /// Number of `true` cells.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Packs an `n × n` boolean plane into a word buffer of
    /// `n * words_per_row_for(n)` words (tail bits zeroed).
    pub(crate) fn pack_slice(src: &[bool], n: usize, words: &mut [u64]) {
        let wpr = Self::words_per_row_for(n);
        debug_assert_eq!(words.len(), n * wpr);
        for i in 0..n {
            let row = &src[i * n..(i + 1) * n];
            let wrow = &mut words[i * wpr..(i + 1) * wpr];
            for (w, chunk) in wrow.iter_mut().zip(row.chunks(64)) {
                let mut bits = 0u64;
                for (b, &v) in chunk.iter().enumerate() {
                    bits |= (v as u64) << b;
                }
                *w = bits;
            }
        }
    }

    /// Unpacks an `n * words_per_row_for(n)` word buffer into an `n × n`
    /// boolean plane.
    pub(crate) fn unpack_slice(words: &[u64], n: usize, dst: &mut [bool]) {
        let wpr = Self::words_per_row_for(n);
        debug_assert_eq!(words.len(), n * wpr);
        for i in 0..n {
            let wrow = &words[i * wpr..(i + 1) * wpr];
            let row = &mut dst[i * n..(i + 1) * n];
            for (&w, chunk) in wrow.iter().zip(row.chunks_mut(64)) {
                for (b, v) in chunk.iter_mut().enumerate() {
                    *v = w >> b & 1 == 1;
                }
            }
        }
    }
}

impl fmt::Debug for BitBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitBlock(b={}, {} set)", self.side, self.count_ones())
    }
}

impl<S: Semiring> fmt::Debug for ElemBlock<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Block(b={})", self.b)?;
        let shown = self.b.min(8);
        for i in 0..shown {
            let row: Vec<String> = (0..shown)
                .map(|j| format!("{:?}", self.get(i, j)))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.b > shown { ", …" } else { "" }
            )?;
        }
        if self.b > shown {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::BoolSemiring;

    fn path3() -> Block {
        let mut a = Block::identity(3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 2, 2.0);
        a.set(2, 1, 2.0);
        a
    }

    #[test]
    fn identity_is_tropical_one() {
        let a = path3();
        let e = Block::identity(3);
        assert_eq!(a.min_plus(&e), a);
        assert_eq!(e.min_plus(&a), a);
    }

    #[test]
    fn infinity_is_tropical_zero() {
        let a = path3();
        let z = Block::infinity(3);
        assert_eq!(a.min_plus(&z), z);
        let mut m = a.clone();
        m.mat_min_assign(&z);
        assert_eq!(m, a);
    }

    #[test]
    fn fold_entry_points_match_two_step_composition() {
        let a = path3();
        let l = Block::from_fn(3, |i, j| (i * 2 + j) as f64);
        let r = Block::from_fn(3, |i, j| (7 - i - j) as f64);

        // min_plus_into_self == mat_min_assign(l ⊗ r).
        let mut folded = a.clone();
        folded.min_plus_into_self(&l, &r);
        let mut manual = a.clone();
        manual.mat_min_assign(&l.min_plus(&r));
        assert_eq!(folded, manual);

        // min_plus_assign == mat_min_assign(self ⊗ other).
        let mut assigned = a.clone();
        assigned.min_plus_assign(&r);
        let mut manual = a.clone();
        let prod = a.min_plus(&r);
        manual.mat_min_assign(&prod);
        assert_eq!(assigned, manual);

        // min_plus_left_assign == mat_min_assign(other ⊗ self).
        let mut left = a.clone();
        left.min_plus_left_assign(&l);
        let mut manual = a.clone();
        manual.mat_min_assign(&l.min_plus(&a));
        assert_eq!(left, manual);
    }

    #[test]
    fn explicit_kernel_choices_agree_on_folds() {
        use crate::kernels::MinPlusKernel;
        let a = path3();
        let o = Block::from_fn(3, |i, j| 1.0 + (i * 3 + j) as f64);
        let mut auto = a.clone();
        auto.min_plus_assign(&o);
        for k in [
            MinPlusKernel::Naive,
            MinPlusKernel::Branchless,
            MinPlusKernel::Tiled,
            MinPlusKernel::Packed,
            MinPlusKernel::Parallel,
        ] {
            let mut c = a.clone();
            c.min_plus_assign_with(k, &o);
            assert_eq!(c, auto, "kernel {k:?}");
        }
    }

    #[test]
    fn squaring_closes_two_hop_paths() {
        let a = path3();
        let mut sq = a.clone();
        sq.min_plus_assign(&a);
        assert_eq!(sq.get(0, 2), 3.0);
        assert_eq!(sq.get(2, 0), 3.0);
    }

    #[test]
    fn floyd_warshall_fixpoint_is_idempotent() {
        let mut a = path3();
        a.floyd_warshall_in_place();
        let once = a.clone();
        a.floyd_warshall_in_place();
        assert_eq!(a, once);
    }

    #[test]
    fn generic_mat_mul_matches_fast_path_on_tropical() {
        let a = path3();
        let b = Block::from_fn(3, |i, j| 1.0 + (i * 3 + j) as f64);
        let fast = a.min_plus(&b);
        let generic = a.mat_mul(&b);
        assert_eq!(fast, generic);
    }

    #[test]
    fn generic_closure_matches_fw_on_tropical() {
        let mut fast = path3();
        fast.floyd_warshall_in_place();
        let mut generic = path3();
        generic.closure_in_place();
        assert_eq!(fast, generic);
    }

    #[test]
    fn boolean_block_closure_is_reachability() {
        // 0 -> 1 -> 2, 3 isolated (directed).
        let mut a = ElemBlock::<BoolSemiring>::identity(4);
        a.set(0, 1, true);
        a.set(1, 2, true);
        a.closure_in_place();
        assert!(a.get(0, 2));
        assert!(!a.get(2, 0));
        assert!(!a.get(0, 3));
        assert!(a.get(3, 3));
    }

    #[test]
    fn transpose_involution() {
        let a = Block::from_fn(5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_entries() {
        let a = Block::from_fn(4, |i, j| (10 * i + j) as f64);
        let t = a.transpose();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(t.get(i, j), a.get(j, i));
            }
        }
    }

    #[test]
    fn extract_col_matches_entries() {
        let a = Block::from_fn(4, |i, j| (i + 100 * j) as f64);
        let c = a.extract_col(2);
        assert_eq!(c, vec![200.0, 201.0, 202.0, 203.0]);
        let r = a.extract_row(1);
        assert_eq!(r, vec![1.0, 101.0, 201.0, 301.0]);
    }

    #[test]
    fn fw_update_outer_matches_manual() {
        let mut a = Block::filled(2, 10.0);
        // col_i = dist(row i -> pivot), col_j = dist(pivot -> col j)
        a.fw_update_outer(&[1.0, 4.0], &[2.0, 3.0]);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.get(1, 0), 6.0);
        assert_eq!(a.get(1, 1), 7.0);
    }

    #[test]
    fn fw_update_outer_with_inf_pivot_is_noop() {
        let mut a = Block::filled(3, 5.0);
        let before = a.clone();
        a.fw_update_outer(&[INF, INF, INF], &[1.0, 1.0, 1.0]);
        assert_eq!(a, before);
    }

    #[test]
    fn mat_min_is_commutative_in_effect() {
        let a = Block::from_fn(3, |i, j| (i * 3 + j) as f64);
        let b = Block::from_fn(3, |i, j| (8 - (i * 3 + j)) as f64);
        let mut ab = a.clone();
        ab.mat_min_assign(&b);
        let mut ba = b.clone();
        ba.mat_min_assign(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn max_finite_and_counts() {
        let mut a = Block::infinity(2);
        assert_eq!(a.max_finite(), None);
        assert_eq!(a.count_finite(), 0);
        a.set(0, 1, 3.5);
        a.set(1, 0, 7.25);
        assert_eq!(a.max_finite(), Some(7.25));
        assert_eq!(a.count_finite(), 2);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Block::from_vec(3, vec![0.0; 8]);
    }

    #[test]
    fn size_bytes_is_payload() {
        assert_eq!(Block::infinity(16).size_bytes(), 16 * 16 * 8);
        assert_eq!(ElemBlock::<BoolSemiring>::zeros(16).size_bytes(), 16 * 16);
    }
}
