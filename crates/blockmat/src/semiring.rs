//! Generic semiring abstraction.
//!
//! The paper (§2) notes that APSP "can be directly posed as a linear algebra
//! problem, and solved using matrix operations over the semi-ring (min,+)".
//! The `f64` fast-path kernels in [`crate::kernels`] are what the solvers
//! use, but this module exposes the same operations over any [`Semiring`],
//! which (a) documents the algebraic requirements the solvers rely on, and
//! (b) supports the related primitives the paper cites (e.g. transitive
//! closure over the boolean semiring, Katz et al. \[10\]).

use std::fmt::Debug;

/// A semiring `(S, ⊕, ⊗, 0̄, 1̄)`: `⊕` is associative and commutative with
/// identity `0̄`; `⊗` is associative with identity `1̄` and annihilator `0̄`;
/// `⊗` distributes over `⊕`.
///
/// For path problems we additionally require `⊕` to be *idempotent* and
/// *selective enough* that iterating `A ← A ⊕ (A ⊗ A)` converges (true for
/// all instances provided here).
pub trait Semiring: Copy + Send + Sync + 'static {
    /// Element type.
    type Elem: Copy + PartialEq + Debug + Send + Sync + 'static;

    /// Additive identity `0̄` (e.g. `+∞` for tropical, `false` for boolean).
    fn zero() -> Self::Elem;
    /// Multiplicative identity `1̄` (e.g. `0.0` for tropical, `true` for boolean).
    fn one() -> Self::Elem;
    /// `a ⊕ b` (e.g. `min` for tropical, `or` for boolean).
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;
    /// `a ⊗ b` (e.g. saturating `+` for tropical, `and` for boolean).
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;
}

/// The tropical (min, +) semiring over `f64` — the one APSP runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TropicalF64;

impl Semiring for TropicalF64 {
    type Elem = f64;
    #[inline(always)]
    fn zero() -> f64 {
        f64::INFINITY
    }
    #[inline(always)]
    fn one() -> f64 {
        0.0
    }
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        if a < b {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Tropical semiring over `f32` (half-precision storage for memory-bound
/// deployments; the paper's NumPy blocks default to `float64` but `float32`
/// is a common practical substitution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TropicalF32;

impl Semiring for TropicalF32 {
    type Elem = f32;
    #[inline(always)]
    fn zero() -> f32 {
        f32::INFINITY
    }
    #[inline(always)]
    fn one() -> f32 {
        0.0
    }
    #[inline(always)]
    fn add(a: f32, b: f32) -> f32 {
        if a < b {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    fn mul(a: f32, b: f32) -> f32 {
        a + b
    }
}

/// Tropical semiring over `i64` with saturating arithmetic; `i64::MAX` is
/// the additive identity. Suits integer-weighted graphs (paper §2 cites the
/// integer-weight APSP literature, Shoshan & Zwick \[18\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TropicalI64;

impl Semiring for TropicalI64 {
    type Elem = i64;
    #[inline(always)]
    fn zero() -> i64 {
        i64::MAX
    }
    #[inline(always)]
    fn one() -> i64 {
        0
    }
    #[inline(always)]
    fn add(a: i64, b: i64) -> i64 {
        a.min(b)
    }
    #[inline(always)]
    fn mul(a: i64, b: i64) -> i64 {
        a.saturating_add(b)
    }
}

/// The bottleneck ("widest path") semiring `(max, min)` over non-negative
/// `f64` capacities: `a ⊕ b = max(a, b)` picks the better of two routes,
/// `a ⊗ b = min(a, b)` is the capacity of a concatenation. `0̄ = 0.0` (no
/// path), `1̄ = +∞` (staying put constrains nothing). Shinn & Takaoka's
/// APBP problem runs the same blocked machinery over this algebra; the
/// bulk path runs on the packed *(max, min)* kernels in [`crate::kernels`]
/// (see [`crate::algebra::Widest`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BottleneckF64;

impl Semiring for BottleneckF64 {
    type Elem = f64;
    #[inline(always)]
    fn zero() -> f64 {
        0.0
    }
    #[inline(always)]
    fn one() -> f64 {
        f64::INFINITY
    }
    #[inline(always)]
    fn add(a: f64, b: f64) -> f64 {
        if a < b {
            b
        } else {
            a
        }
    }
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        if a < b {
            a
        } else {
            b
        }
    }
}

/// Boolean semiring `(∨, ∧)` — reachability / transitive closure. Bulk
/// operations run on the word-packed bitset kernels (see
/// [`crate::BitBlock`] and [`crate::algebra::Reachability`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Elem = bool;
    #[inline(always)]
    fn zero() -> bool {
        false
    }
    #[inline(always)]
    fn one() -> bool {
        true
    }
    #[inline(always)]
    fn add(a: bool, b: bool) -> bool {
        a || b
    }
    #[inline(always)]
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
}

/// A square dense block over an arbitrary [`Semiring`].
///
/// Since the block type itself became generic this is simply an alias of
/// [`crate::ElemBlock`]; it is kept because the name reads better at call
/// sites that stress the *algebra* (transitive closure, integer-weight
/// variants, the executable specification of the `f64` fast path).
pub type GenBlock<S> = crate::ElemBlock<S>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Block, INF};

    #[test]
    fn tropical_f64_genblock_matches_fast_path() {
        let b = 17;
        let mk = |seed: u64| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            GenBlock::<TropicalF64>::from_fn(b, |i, j| {
                if i == j {
                    0.0
                } else if next() < 0.4 {
                    1.0 + next() * 5.0
                } else {
                    INF
                }
            })
        };
        let ga = mk(3);
        let gb = mk(4);
        let fa = Block::from_fn(b, |i, j| ga.get(i, j));
        let fb = Block::from_fn(b, |i, j| gb.get(i, j));

        let gp = ga.mat_mul(&gb);
        let fp = fa.min_plus(&fb);
        for i in 0..b {
            for j in 0..b {
                assert_eq!(gp.get(i, j), fp.get(i, j), "product mismatch at ({i},{j})");
            }
        }

        let mut gc = ga.clone();
        gc.closure_in_place();
        let mut fc = fa.clone();
        fc.floyd_warshall_in_place();
        for i in 0..b {
            for j in 0..b {
                assert_eq!(gc.get(i, j), fc.get(i, j), "closure mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn boolean_closure_is_reachability() {
        // 0 -> 1 -> 2, 3 isolated (directed).
        let mut a = GenBlock::<BoolSemiring>::identity(4);
        a.set(0, 1, true);
        a.set(1, 2, true);
        a.closure_in_place();
        assert!(a.get(0, 2));
        assert!(!a.get(2, 0));
        assert!(!a.get(0, 3));
        assert!(a.get(3, 3));
    }

    #[test]
    fn integer_tropical_saturates() {
        let a = GenBlock::<TropicalI64>::from_fn(2, |i, j| if i == j { 0 } else { i64::MAX });
        let p = a.mat_mul(&a);
        assert_eq!(p.get(0, 1), i64::MAX);
        assert_eq!(p.get(0, 0), 0);
    }

    #[test]
    fn identity_laws() {
        let b = 6;
        let a = GenBlock::<TropicalI64>::from_fn(b, |i, j| ((i * b + j) % 9) as i64);
        let e = GenBlock::<TropicalI64>::identity(b);
        assert_eq!(a.mat_mul(&e), a);
        assert_eq!(e.mat_mul(&a), a);
        let z = GenBlock::<TropicalI64>::zeros(b);
        assert_eq!(a.mat_mul(&z), z);
    }

    #[test]
    fn bottleneck_closure_is_widest_path() {
        // 0 -5- 1 -3- 2 plus a thin direct pipe 0 -1- 2: the widest 0→2
        // route goes through 1 with bottleneck min(5, 3) = 3.
        let mut a = GenBlock::<BottleneckF64>::identity(3);
        a.set(0, 1, 5.0);
        a.set(1, 0, 5.0);
        a.set(1, 2, 3.0);
        a.set(2, 1, 3.0);
        a.set(0, 2, 1.0);
        a.set(2, 0, 1.0);
        a.closure_in_place();
        assert_eq!(a.get(0, 2), 3.0);
        assert_eq!(a.get(2, 0), 3.0);
        assert_eq!(a.get(0, 0), f64::INFINITY, "diagonal stays 1̄");
    }

    #[test]
    fn f32_closure_small() {
        let mut a = GenBlock::<TropicalF32>::identity(3);
        a.set(0, 1, 1.5);
        a.set(1, 2, 2.5);
        a.closure_in_place();
        assert_eq!(a.get(0, 2), 4.0);
    }
}
