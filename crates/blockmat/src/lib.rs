//! Dense block-matrix kernels over the tropical *(min, +)* semiring.
//!
//! This crate provides the computational building blocks that the paper
//! ("Solving All-Pairs Shortest-Paths Problem in Large Graphs Using Apache
//! Spark", ICPP 2019) delegates to bare-metal execution via NumPy / SciPy /
//! Numba:
//!
//! * [`ElemBlock`] — a square, dense, row-major matrix block over any
//!   [`Semiring`], with [`Block`] (= `ElemBlock<TropicalF64>`) as the
//!   `f64` instantiation of an adjacency matrix 2D decomposition,
//! * min-plus matrix product kernels ([`Block::min_plus`],
//!   [`kernels::min_plus_into`], tiled and [rayon]-parallel variants),
//! * element-wise minimum ([`Block::mat_min_assign`], the paper's `MatMin`),
//! * an in-block Floyd-Warshall solver ([`Block::floyd_warshall_in_place`],
//!   the paper's `FloydWarshall`),
//! * the rank-1 Floyd-Warshall update ([`Block::fw_update_outer`], the
//!   paper's `FloydWarshallUpdate`),
//! * a whole-matrix dense type ([`Matrix`]) used by reference solvers and
//!   block (dis)assembly,
//! * the [`Semiring`] abstraction (tropical over `f64`/`f32`/`i64`, the
//!   bottleneck *(max, min)* semiring, and the boolean semiring for
//!   transitive closure) mirroring the paper's §2 observation that APSP
//!   is a linear-algebra problem over *(min, +)*,
//! * specialized non-tropical kernels: the packed register-blocked
//!   *(max, min)* engine ([`kernels::maxmin_into_with`],
//!   [`kernels::select_maxmin`]) and the word-packed boolean bitset engine
//!   ([`BitBlock`], [`kernels::bool_or_product_into`],
//!   [`kernels::bool_closure_in_place`]), and
//! * the [`algebra`] layer on top of it: [`PathAlgebra`] (a semiring plus
//!   an optional per-cell payload) with per-algebra kernel dispatch, and
//!   [`AlgBlock`] — the combined record the generic solvers run on
//!   ([`TrackedBlock`] is its tropical-with-argmin instantiation).
//!
//! Absent edges are represented by [`INF`] (`f64::INFINITY`); the additive
//! identity of the tropical semiring. The multiplicative identity is `0.0`.
//!
//! # Example
//!
//! ```
//! use apsp_blockmat::{Block, INF};
//!
//! // A 3-vertex path graph 0 -1- 1 -2- 2.
//! let mut a = Block::identity(3);
//! a.set(0, 1, 1.0); a.set(1, 0, 1.0);
//! a.set(1, 2, 2.0); a.set(2, 1, 2.0);
//!
//! // One min-plus squaring closes paths of length <= 2.
//! let a2 = {
//!     let mut c = a.clone();
//!     c.mat_min_assign(&a.min_plus(&a));
//!     c
//! };
//! assert_eq!(a2.get(0, 2), 3.0);
//!
//! // In-block Floyd-Warshall reaches the same fixpoint here.
//! let mut fw = a.clone();
//! fw.floyd_warshall_in_place();
//! assert_eq!(fw, a2);
//! ```

#![warn(missing_docs)]

pub mod algebra;
mod block;
pub mod closure;
pub mod kernels;
mod matrix;
pub mod parent;
mod reference;
pub mod semiring;
pub mod serialize;

pub use algebra::{
    AlgBlock, PathAlgebra, Reachability, TrackedBlock, TrackedReachability, TrackedTropical,
    TrackedWidest, Tropical, Widest,
};
pub use block::{BitBlock, Block, ElemBlock};
pub use matrix::Matrix;
pub use parent::{Offsets, ParentBlock, PayBlock, NO_VIA};
pub use semiring::{BoolSemiring, BottleneckF64, Semiring, TropicalF32, TropicalF64, TropicalI64};

/// Distance value denoting the absence of a path (tropical additive identity).
pub const INF: f64 = f64::INFINITY;

/// Saturating tropical addition: `a + b`, where either operand being [`INF`]
/// yields [`INF`] (native `f64` addition already has this property, this
/// function exists to make call sites self-documenting).
#[inline(always)]
pub fn tropical_mul(a: f64, b: f64) -> f64 {
    a + b
}

/// Tropical "addition": the minimum of two path lengths.
#[inline(always)]
pub fn tropical_add(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}
