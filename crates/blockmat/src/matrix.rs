//! Whole-graph dense distance matrix: reference representation used by the
//! sequential solvers and by block (dis)assembly.

use crate::{Block, INF};
use std::fmt;

/// A dense, row-major `n × n` matrix of `f64` path lengths.
///
/// This is the undistributed counterpart of the solvers' blocked RDDs: the
/// oracle all distributed results are compared against, and the staging
/// format for decomposing an adjacency matrix into [`Block`]s.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` matrix filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Matrix {
            n,
            data: vec![value; n * n],
        }
    }

    /// Creates the tropical identity matrix (`0` diagonal, [`INF`] elsewhere).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::filled(n, INF);
        for i in 0..n {
            m.data[i * n + i] = 0.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Matrix { n, data }
    }

    /// Wraps a row-major buffer of length `n * n`.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "buffer length must be n^2");
        Matrix { n, data }
    }

    /// Matrix order `n`.
    #[inline(always)]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Raw row-major data.
    #[inline(always)]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Entry accessor.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Entry mutator.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = v;
    }

    /// Immutable view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Whether the matrix is symmetric.
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.get(i, j) != self.get(j, i) {
                    return false;
                }
            }
        }
        true
    }

    /// Sequential textbook Floyd-Warshall, in place. This is the paper's
    /// `T1` reference ("efficient sequential Floyd-Warshall as implemented
    /// in SciPy", §5.4).
    pub fn floyd_warshall_in_place(&mut self) {
        let n = self.n;
        crate::kernels::with_scratch(n, |krow| {
            for k in 0..n {
                krow.copy_from_slice(&self.data[k * n..k * n + n]);
                for i in 0..n {
                    let dik = self.data[i * n + k];
                    if dik == INF {
                        continue;
                    }
                    let row = &mut self.data[i * n..i * n + n];
                    for (rv, &kv) in row.iter_mut().zip(krow.iter()) {
                        *rv = crate::kernels::tmin(dik + kv, *rv);
                    }
                }
            }
        });
    }

    /// Decomposes into `q × q` blocks of side `b` (`q = ⌈n/b⌉`), zero-padding
    /// the tail: padded vertices are isolated (diagonal `0`, rest [`INF`]) so
    /// they never perturb finite distances.
    ///
    /// Returns blocks in row-major block order: element `I * q + J` is block
    /// `(I, J)`.
    pub fn to_blocks(&self, b: usize) -> Vec<Block> {
        assert!(b > 0, "block side must be positive");
        let n = self.n;
        let q = n.div_ceil(b);
        let mut out = Vec::with_capacity(q * q);
        for bi in 0..q {
            for bj in 0..q {
                let blk = Block::from_fn(b, |i, j| {
                    let (gi, gj) = (bi * b + i, bj * b + j);
                    if gi < n && gj < n {
                        self.get(gi, gj)
                    } else if gi == gj {
                        0.0
                    } else {
                        INF
                    }
                });
                out.push(blk);
            }
        }
        out
    }

    /// Reassembles a matrix from `q × q` blocks produced by
    /// [`Matrix::to_blocks`] (or by a solver), trimming padding.
    ///
    /// `blocks` yields `((I, J), Block)` pairs in any order; missing blocks
    /// are treated as all-[`INF`].
    pub fn from_blocks(
        n: usize,
        b: usize,
        blocks: impl IntoIterator<Item = ((usize, usize), Block)>,
    ) -> Self {
        let mut m = Matrix::filled(n, INF);
        for ((bi, bj), blk) in blocks {
            assert_eq!(blk.side(), b, "block side mismatch");
            for i in 0..b {
                let gi = bi * b + i;
                if gi >= n {
                    break;
                }
                for j in 0..b {
                    let gj = bj * b + j;
                    if gj >= n {
                        break;
                    }
                    m.set(gi, gj, blk.get(i, j));
                }
            }
        }
        m
    }

    /// Approximate equality modulo floating-point rounding; `INF` entries
    /// must match exactly. Returns the first differing index on failure.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> Result<(), (usize, usize, f64, f64)> {
        assert_eq!(self.n, other.n, "matrix orders must match");
        for i in 0..self.n {
            for j in 0..self.n {
                let (a, b) = (self.get(i, j), other.get(i, j));
                if !approx_eq_scalar(a, b, tol) {
                    return Err((i, j, a, b));
                }
            }
        }
        Ok(())
    }

    /// Number of finite (reachable) entries.
    pub fn count_finite(&self) -> usize {
        self.data.iter().filter(|v| v.is_finite()).count()
    }
}

/// Scalar approximate equality used across the crate: `INF == INF`, finite
/// values within absolute-or-relative tolerance `tol`.
pub(crate) fn approx_eq_scalar(a: f64, b: f64, tol: f64) -> bool {
    if a.is_infinite() || b.is_infinite() {
        a == b
    } else {
        let diff = (a - b).abs();
        diff <= tol || diff <= tol * a.abs().max(b.abs())
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix(n={})", self.n)?;
        let shown = self.n.min(8);
        for i in 0..shown {
            let row: Vec<String> = (0..shown)
                .map(|j| {
                    let v = self.get(i, j);
                    if v.is_infinite() {
                        "  inf".into()
                    } else {
                        format!("{v:5.1}")
                    }
                })
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.n > shown { ", …" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring5() -> Matrix {
        // 5-cycle, unit weights.
        let mut m = Matrix::identity(5);
        for i in 0..5 {
            let j = (i + 1) % 5;
            m.set(i, j, 1.0);
            m.set(j, i, 1.0);
        }
        m
    }

    #[test]
    fn fw_on_ring() {
        let mut m = ring5();
        m.floyd_warshall_in_place();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 3), 2.0); // around the other side
        assert_eq!(m.get(1, 4), 2.0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn fw_disconnected_stays_infinite() {
        let mut m = Matrix::identity(4);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(2, 3, 1.0);
        m.set(3, 2, 1.0);
        m.floyd_warshall_in_place();
        assert_eq!(m.get(0, 2), INF);
        assert_eq!(m.get(1, 3), INF);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 3), 1.0);
    }

    #[test]
    fn block_roundtrip_exact_division() {
        let m = Matrix::from_fn(8, |i, j| if i == j { 0.0 } else { (i * 8 + j) as f64 });
        let blocks = m.to_blocks(4);
        assert_eq!(blocks.len(), 4);
        let back = Matrix::from_blocks(
            8,
            4,
            blocks
                .into_iter()
                .enumerate()
                .map(|(idx, blk)| ((idx / 2, idx % 2), blk)),
        );
        assert_eq!(back, m);
    }

    #[test]
    fn block_roundtrip_with_padding() {
        let m = Matrix::from_fn(7, |i, j| if i == j { 0.0 } else { (i + 10 * j) as f64 });
        let b = 3;
        let q = 3;
        let blocks = m.to_blocks(b);
        assert_eq!(blocks.len(), q * q);
        // Padded vertices are isolated.
        let last = &blocks[q * q - 1];
        assert_eq!(last.get(2, 2), 0.0);
        assert_eq!(last.get(2, 1), INF);
        let back = Matrix::from_blocks(
            7,
            b,
            blocks
                .into_iter()
                .enumerate()
                .map(|(idx, blk)| ((idx / q, idx % q), blk)),
        );
        assert_eq!(back, m);
    }

    #[test]
    fn padding_does_not_disturb_fw() {
        // Solve FW on the padded blocked form (via dense reassembly) and
        // compare against FW on the original matrix.
        let mut g = Matrix::identity(5);
        for (i, j, w) in [(0usize, 1usize, 2.0), (1, 2, 2.0), (2, 3, 2.0), (3, 4, 2.0)] {
            g.set(i, j, w);
            g.set(j, i, w);
        }
        let blocks = g.to_blocks(3);
        let padded = Matrix::from_blocks(
            6,
            3,
            blocks
                .into_iter()
                .enumerate()
                .map(|(idx, blk)| ((idx / 2, idx % 2), blk)),
        );
        let mut padded_fw = padded.clone();
        padded_fw.floyd_warshall_in_place();
        let mut direct = g.clone();
        direct.floyd_warshall_in_place();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(padded_fw.get(i, j), direct.get(i, j));
            }
        }
        // Padded vertex remains isolated.
        assert_eq!(padded_fw.get(5, 0), INF);
        assert_eq!(padded_fw.get(5, 5), 0.0);
    }

    #[test]
    fn approx_eq_reports_divergence() {
        let a = Matrix::identity(3);
        let mut b = a.clone();
        b.set(1, 2, 5.0);
        match a.approx_eq(&b, 1e-9) {
            Err((1, 2, x, y)) => {
                assert_eq!(x, INF);
                assert_eq!(y, 5.0);
            }
            other => panic!("expected mismatch at (1,2), got {other:?}"),
        }
    }

    #[test]
    fn approx_eq_scalar_semantics() {
        assert!(approx_eq_scalar(INF, INF, 1e-9));
        assert!(!approx_eq_scalar(INF, 1.0, 1e9));
        assert!(approx_eq_scalar(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq_scalar(1.0, 1.1, 1e-9));
    }
}
