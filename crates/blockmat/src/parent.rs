//! Parent (argmin) tracking: the per-cell payload side of the path-algebra
//! engine.
//!
//! The paper computes only path *lengths* (§3). This module provides the
//! payload storage for the standard argmin augmentation: alongside every
//! distance entry, record **which `k` produced the winning relaxation**
//! `d(i,j) = d(i,k) + d(k,j)`. The recorded `k` is a *global* vertex id —
//! an interior vertex of one shortest `i → j` path — so a full path is
//! recovered by recursively expanding `(i, j)` into `(i, k)` and `(k, j)`
//! until a cell says "direct edge" ([`NO_VIA`]).
//!
//! In path-algebra terms (see [`crate::algebra`]) the tracked stack is the
//! tropical semiring *tensored with an argmin payload*: [`PayBlock`] is the
//! generic payload plane, [`ParentBlock`] its `u32`-via instantiation, and
//! `TrackedBlock` (= [`crate::AlgBlock`] over [`crate::TrackedTropical`])
//! the combined record the tracking solvers move through the engine.
//!
//! # Why a "via" vertex rather than a predecessor
//!
//! The textbook predecessor matrix (`pred[i][j]` = vertex before `j`)
//! needs the *operand's* parent entries at relaxation time
//! (`pred[i][j] ← pred[k][j]`), which the distributed solvers cannot
//! provide: their right operands are staged *distance* snapshots, and the
//! symmetric upper-triangle storage (paper §4) cannot even orient a
//! predecessor block for a transposed operand. The via entry depends only
//! on the winning `k` itself, so tracked blocks update from plain distance
//! operands, survive `transpose()` (an interior vertex of a shortest
//! `i → j` path is interior to the reversed `j → i` path on an undirected
//! graph), and cost one `u32` per cell.
//!
//! # Correctness invariant
//!
//! A recorded win `d_new = a(i,k) + b(k,j)` uses operand entries that are
//! (a) lengths of real paths and (b) upper bounds of the final distances.
//! At convergence `D(i,k) + D(k,j) ≥ D(i,j) = d_new ≥ D(i,k) + D(k,j)`,
//! so the recursion `(i,j) → (i,k) + (k,j)` splits against *final*
//! distances exactly.
//!
//! # Degenerate terms and the seeding contract
//!
//! A via equal to `i` or `j` would make the expansion loop forever, so the
//! tracked product kernels **skip** terms whose global `k` equals the
//! target's global row or column. Such terms always pass through a
//! diagonal cell (exactly `0.0` on APSP inputs) and therefore merely
//! *restate* an estimate of the output cell `(i, j)` that one operand
//! already holds. Skipping them is lossless **provided the fold target is
//! seeded with the current estimate of its own cells** — which every
//! solver update shape satisfies: the blocked phases fold into the live
//! block, the Kleene steps seed with the current `C` rows, and repeated
//! squaring seeds each sweep target with its own stored record. An
//! *unseeded* tracked product over overlapping index ranges is the one
//! shape that would lose these restatements; don't build one.

use std::fmt::Debug;

/// "No intermediate vertex": the best known path is the direct edge
/// (or the cell is the diagonal / unreachable).
pub const NO_VIA: u32 = u32::MAX;

/// A square `b × b` plane of per-cell payloads — the companion of an
/// element block. For the tracked tropical algebra the payload is a `u32`
/// via (see [`ParentBlock`]); algebras without tracking use the zero-sized
/// `()` payload, making the plane free.
pub struct PayBlock<P> {
    b: usize,
    data: Box<[P]>,
}

/// A square `b × b` matrix of via entries, the companion of a distance
/// [`crate::Block`]: `via(i, j)` is the global id of an interior vertex on
/// a shortest path for cell `(i, j)`, or [`NO_VIA`].
pub type ParentBlock = PayBlock<u32>;

impl<P: Clone> Clone for PayBlock<P> {
    fn clone(&self) -> Self {
        PayBlock {
            b: self.b,
            data: self.data.clone(),
        }
    }
}

impl<P: PartialEq> PartialEq for PayBlock<P> {
    fn eq(&self, other: &Self) -> bool {
        self.b == other.b && self.data == other.data
    }
}

impl<P: Eq> Eq for PayBlock<P> {}

impl<P: Debug> Debug for PayBlock<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PayBlock(b={}, data={:?})",
            self.b,
            &self.data[..self.data.len().min(16)]
        )
    }
}

impl<P: Copy> PayBlock<P> {
    /// Creates a payload plane filled with a constant value.
    pub fn filled(b: usize, value: P) -> Self {
        PayBlock {
            b,
            data: vec![value; b * b].into_boxed_slice(),
        }
    }

    /// Side length `b` of the block.
    #[inline(always)]
    pub fn side(&self) -> usize {
        self.b
    }

    /// Immutable view of the raw row-major buffer.
    #[inline(always)]
    pub fn data(&self) -> &[P] {
        &self.data
    }

    /// Mutable view of the raw row-major buffer.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [P] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> P {
        debug_assert!(i < self.b && j < self.b);
        self.data[i * self.b + j]
    }

    /// Entry mutator.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: P) {
        debug_assert!(i < self.b && j < self.b);
        self.data[i * self.b + j] = v;
    }

    /// Returns the transposed payload plane.
    ///
    /// Valid as a parent block for the transposed *distance* block only on
    /// symmetric (undirected) instances, where an interior vertex of a
    /// shortest `i → j` path is interior to a shortest `j → i` path.
    pub fn transpose(&self) -> PayBlock<P> {
        let b = self.b;
        let mut out = self.data.to_vec();
        for i in 0..b {
            for j in 0..b {
                out[j * b + i] = self.data[i * b + j];
            }
        }
        PayBlock {
            b,
            data: out.into_boxed_slice(),
        }
    }

    /// In-memory footprint of the block payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<P>()
    }
}

impl ParentBlock {
    /// Creates an all-[`NO_VIA`] parent block (every known path direct).
    pub fn none(b: usize) -> Self {
        Self::filled(b, NO_VIA)
    }

    /// Number of cells carrying an intermediate vertex (i.e. whose best
    /// known path is not a direct edge).
    pub fn count_tracked(&self) -> usize {
        self.data.iter().filter(|&&v| v != NO_VIA).count()
    }
}

/// Global-coordinate context for a tracked product or fold: translates the
/// block-local indices a kernel sees into global vertex ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Offsets {
    /// Global id of the contraction index `k = 0` (the first column of the
    /// left operand / first row of the right operand).
    pub k: usize,
    /// Global id of the target's row `0`.
    pub row: usize,
    /// Global id of the target's column `0`.
    pub col: usize,
}

impl Offsets {
    /// Offsets for a `q × q` grid of side-`b` blocks: pivot block `k`,
    /// target block `(row, col)`.
    pub fn blocks(b: usize, k: usize, row: usize, col: usize) -> Self {
        Offsets {
            k: k * b,
            row: row * b,
            col: col * b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_block_basics() {
        let mut p = ParentBlock::none(3);
        assert_eq!(p.count_tracked(), 0);
        p.set(0, 2, 11);
        assert_eq!(p.get(0, 2), 11);
        assert_eq!(p.count_tracked(), 1);
        assert_eq!(p.size_bytes(), 9 * 4);
        assert_eq!(p.transpose().get(2, 0), 11);
    }

    #[test]
    fn unit_payload_plane_is_free() {
        let p = PayBlock::<()>::filled(8, ());
        assert_eq!(p.size_bytes(), 0);
        assert_eq!(p.transpose(), p);
    }

    #[test]
    fn offsets_blocks_scale_by_side() {
        let o = Offsets::blocks(16, 2, 0, 3);
        assert_eq!(
            o,
            Offsets {
                k: 32,
                row: 0,
                col: 48
            }
        );
    }
}
