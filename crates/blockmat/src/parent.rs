//! Parent (argmin) tracking: the path-reconstruction sibling of [`Block`].
//!
//! The paper computes only path *lengths* (§3). This module extends the
//! blocked min-plus engine with the standard argmin augmentation: alongside
//! every distance entry, record **which `k` produced the winning
//! relaxation** `d(i,j) = d(i,k) + d(k,j)`. The recorded `k` is a *global*
//! vertex id — an interior vertex of one shortest `i → j` path — so a full
//! path is recovered by recursively expanding `(i, j)` into `(i, k)` and
//! `(k, j)` until a cell says "direct edge" ([`NO_VIA`]).
//!
//! # Why a "via" vertex rather than a predecessor
//!
//! The textbook predecessor matrix (`pred[i][j]` = vertex before `j`)
//! needs the *operand's* parent entries at relaxation time
//! (`pred[i][j] ← pred[k][j]`), which the distributed solvers cannot
//! provide: their right operands are staged *distance* snapshots, and the
//! symmetric upper-triangle storage (paper §4) cannot even orient a
//! predecessor block for a transposed operand. The via entry depends only
//! on the winning `k` itself, so tracked blocks update from plain distance
//! operands, survive `transpose()` (an interior vertex of a shortest
//! `i → j` path is interior to the reversed `j → i` path on an undirected
//! graph), and cost one `u32` per cell.
//!
//! # Correctness invariant
//!
//! A recorded win `d_new = a(i,k) + b(k,j)` uses operand entries that are
//! (a) lengths of real paths and (b) upper bounds of the final distances.
//! At convergence `D(i,k) + D(k,j) ≥ D(i,j) = d_new ≥ D(i,k) + D(k,j)`,
//! so the recursion `(i,j) → (i,k) + (k,j)` splits against *final*
//! distances exactly.
//!
//! # Degenerate terms and the seeding contract
//!
//! A via equal to `i` or `j` would make the expansion loop forever, so the
//! tracked product kernels **skip** terms whose global `k` equals the
//! target's global row or column. Such terms always pass through a
//! diagonal cell (exactly `0.0` on APSP inputs) and therefore merely
//! *restate* an estimate of the output cell `(i, j)` that one operand
//! already holds. Skipping them is lossless **provided the fold target is
//! seeded with the current estimate of its own cells** — which every
//! solver update shape satisfies: the blocked phases fold into the live
//! block, the Kleene steps seed with the current `C` rows, and repeated
//! squaring seeds each sweep target with its own stored record. An
//! *unseeded* tracked product over overlapping index ranges is the one
//! shape that would lose these restatements; don't build one.

use crate::{kernels, Block, INF};

/// "No intermediate vertex": the best known path is the direct edge
/// (or the cell is the diagonal / unreachable).
pub const NO_VIA: u32 = u32::MAX;

/// A square `b × b` matrix of via entries, the companion of a distance
/// [`Block`]: `via(i, j)` is the global id of an interior vertex on a
/// shortest path for cell `(i, j)`, or [`NO_VIA`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParentBlock {
    b: usize,
    data: Box<[u32]>,
}

impl ParentBlock {
    /// Creates an all-[`NO_VIA`] parent block (every known path direct).
    pub fn none(b: usize) -> Self {
        ParentBlock {
            b,
            data: vec![NO_VIA; b * b].into_boxed_slice(),
        }
    }

    /// Side length `b` of the block.
    #[inline(always)]
    pub fn side(&self) -> usize {
        self.b
    }

    /// Immutable view of the raw row-major buffer.
    #[inline(always)]
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Mutable view of the raw row-major buffer.
    #[inline(always)]
    pub fn data_mut(&mut self) -> &mut [u32] {
        &mut self.data
    }

    /// Entry accessor.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i < self.b && j < self.b);
        self.data[i * self.b + j]
    }

    /// Entry mutator.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: u32) {
        debug_assert!(i < self.b && j < self.b);
        self.data[i * self.b + j] = v;
    }

    /// Returns the transposed parent block.
    ///
    /// Valid as a parent block for the transposed *distance* block only on
    /// symmetric (undirected) instances, where an interior vertex of a
    /// shortest `i → j` path is interior to a shortest `j → i` path.
    pub fn transpose(&self) -> ParentBlock {
        let b = self.b;
        let mut out = vec![NO_VIA; b * b];
        for i in 0..b {
            for j in 0..b {
                out[j * b + i] = self.data[i * b + j];
            }
        }
        ParentBlock {
            b,
            data: out.into_boxed_slice(),
        }
    }

    /// Number of cells carrying an intermediate vertex (i.e. whose best
    /// known path is not a direct edge).
    pub fn count_tracked(&self) -> usize {
        self.data.iter().filter(|&&v| v != NO_VIA).count()
    }

    /// In-memory footprint of the block payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }
}

/// Global-coordinate context for a tracked product or fold: translates the
/// block-local indices a kernel sees into global vertex ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Offsets {
    /// Global id of the contraction index `k = 0` (the first column of the
    /// left operand / first row of the right operand).
    pub k: usize,
    /// Global id of the target's row `0`.
    pub row: usize,
    /// Global id of the target's column `0`.
    pub col: usize,
}

impl Offsets {
    /// Offsets for a `q × q` grid of side-`b` blocks: pivot block `k`,
    /// target block `(row, col)`.
    pub fn blocks(b: usize, k: usize, row: usize, col: usize) -> Self {
        Offsets {
            k: k * b,
            row: row * b,
            col: col * b,
        }
    }
}

/// A distance [`Block`] paired with its [`ParentBlock`]: the record type
/// the path-tracking solvers move through the engine.
///
/// All mutating operations mirror the untracked [`Block`] entry points and
/// take the [`Offsets`] needed to translate block-local indices into
/// global vertex ids (and to suppress degenerate terms — see the module
/// docs for the seeding contract).
#[derive(Clone, PartialEq, Debug)]
pub struct TrackedBlock {
    dist: Block,
    via: ParentBlock,
}

impl TrackedBlock {
    /// Wraps a distance block with an all-[`NO_VIA`] parent block — the
    /// correct initial state for an adjacency block, whose finite entries
    /// are all direct edges.
    pub fn from_dist(dist: Block) -> Self {
        let via = ParentBlock::none(dist.side());
        TrackedBlock { dist, via }
    }

    /// Side length `b`.
    #[inline(always)]
    pub fn side(&self) -> usize {
        self.dist.side()
    }

    /// The distance block.
    #[inline(always)]
    pub fn dist(&self) -> &Block {
        &self.dist
    }

    /// The parent block.
    #[inline(always)]
    pub fn via(&self) -> &ParentBlock {
        &self.via
    }

    /// Splits into the distance and parent blocks.
    pub fn into_parts(self) -> (Block, ParentBlock) {
        (self.dist, self.via)
    }

    /// Transposes both halves. Valid only on symmetric (undirected)
    /// instances — see [`ParentBlock::transpose`].
    pub fn transpose(&self) -> TrackedBlock {
        TrackedBlock {
            dist: self.dist.transpose(),
            via: self.via.transpose(),
        }
    }

    /// Combined in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.dist.size_bytes() + self.via.size_bytes()
    }

    /// Tracked pure product `a ⊗ b` (both plain distance blocks): returns
    /// a fresh tracked block whose vias are the winning global `k`s.
    ///
    /// The result is **unseeded** (all-`INF`): per the module-level
    /// seeding contract, the caller must eventually `min`-merge it with a
    /// seeded estimate of the same cells (as the repeated-squaring reduce
    /// does) when the index ranges overlap.
    pub fn min_plus_product(
        kernel: kernels::MinPlusKernel,
        a: &Block,
        b: &Block,
        offsets: Offsets,
    ) -> TrackedBlock {
        let mut out = TrackedBlock {
            dist: Block::infinity(a.side()),
            via: ParentBlock::none(a.side()),
        };
        kernels::min_plus_into_tracked_with(kernel, a, b, &mut out.dist, &mut out.via, offsets);
        out
    }

    /// Tracked zero-copy fold `self = min(self, a ⊗ b)` — the Phase-3
    /// update of the blocked solvers. `a` and `b` are plain distance
    /// blocks (staged copies); only `self` carries vias.
    pub fn min_plus_into_self(
        &mut self,
        kernel: kernels::MinPlusKernel,
        a: &Block,
        b: &Block,
        offsets: Offsets,
    ) {
        kernels::min_plus_into_tracked_with(kernel, a, b, &mut self.dist, &mut self.via, offsets);
    }

    /// Tracked `self = min(self, self ⊗ other)` (pivot-column update).
    ///
    /// Like [`Block::min_plus_assign`], the product is built in reused
    /// thread-local scratch (distances *and* vias) and folded in under
    /// strict `<`, so a tie never replaces an established via.
    pub fn min_plus_assign(
        &mut self,
        kernel: kernels::MinPlusKernel,
        other: &Block,
        offsets: Offsets,
    ) {
        let n = self.side();
        let (dist, via) = (&mut self.dist, &mut self.via);
        kernels::with_scratch(n * n, |sd| {
            kernels::with_via_scratch(n * n, |sv| {
                sd.fill(INF);
                sv.fill(NO_VIA);
                kernels::min_plus_slices_tracked_with(
                    kernel,
                    dist.data(),
                    other.data(),
                    sd,
                    sv,
                    n,
                    offsets,
                );
                fold_tracked(dist.data_mut(), via.data_mut(), sd, sv);
            });
        });
    }

    /// Tracked `self = min(self, other ⊗ self)` (pivot-row update), the
    /// left-operand mirror of [`TrackedBlock::min_plus_assign`].
    pub fn min_plus_left_assign(
        &mut self,
        kernel: kernels::MinPlusKernel,
        other: &Block,
        offsets: Offsets,
    ) {
        let n = self.side();
        let (dist, via) = (&mut self.dist, &mut self.via);
        kernels::with_scratch(n * n, |sd| {
            kernels::with_via_scratch(n * n, |sv| {
                sd.fill(INF);
                sv.fill(NO_VIA);
                kernels::min_plus_slices_tracked_with(
                    kernel,
                    other.data(),
                    dist.data(),
                    sd,
                    sv,
                    n,
                    offsets,
                );
                fold_tracked(dist.data_mut(), via.data_mut(), sd, sv);
            });
        });
    }

    /// Tracked element-wise minimum: cells where `other` is strictly
    /// smaller take `other`'s distance *and* via (the paper's `MatMin`,
    /// used by the repeated-squaring reduce).
    pub fn mat_min_assign(&mut self, other: &TrackedBlock) {
        assert_eq!(self.side(), other.side(), "block sides must match");
        fold_tracked(
            self.dist.data_mut(),
            self.via.data_mut(),
            other.dist.data(),
            other.via.data(),
        );
    }

    /// Tracked in-place Floyd-Warshall closure of a diagonal block whose
    /// row/column `0` is global vertex `diag_offset`.
    pub fn floyd_warshall_in_place(&mut self, diag_offset: usize) {
        kernels::floyd_warshall_in_place_tracked(&mut self.dist, &mut self.via, diag_offset);
    }

    /// Tracked rank-1 Floyd-Warshall update through global pivot
    /// `k_global` (the paper's `FloydWarshallUpdate`).
    pub fn fw_update_outer(&mut self, col_i: &[f64], col_j: &[f64], k_global: usize) {
        kernels::fw_update_outer_tracked(&mut self.dist, &mut self.via, col_i, col_j, k_global);
    }
}

/// `dist/via = (sd, sv)` where `sd` is strictly smaller — the shared fold
/// of the tracked two-step updates.
fn fold_tracked(dist: &mut [f64], via: &mut [u32], sd: &[f64], sv: &[u32]) {
    for ((d, v), (&s, &p)) in dist.iter_mut().zip(via.iter_mut()).zip(sd.iter().zip(sv)) {
        if s < *d {
            *d = s;
            *v = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::MinPlusKernel;

    fn path4() -> Block {
        // 0 -1- 1 -1- 2 -1- 3 (identity diagonal).
        let mut a = Block::identity(4);
        for i in 0..3 {
            a.set(i, i + 1, 1.0);
            a.set(i + 1, i, 1.0);
        }
        a
    }

    #[test]
    fn from_dist_has_no_vias() {
        let t = TrackedBlock::from_dist(path4());
        assert_eq!(t.via().count_tracked(), 0);
        assert_eq!(t.dist().get(0, 1), 1.0);
    }

    #[test]
    fn fw_records_interior_vertices() {
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(0);
        assert_eq!(t.dist().get(0, 3), 3.0);
        // The via of (0, 3) must be an interior vertex: 1 or 2.
        let v = t.via().get(0, 3);
        assert!(v == 1 || v == 2, "via(0,3) = {v}");
        // Direct edges keep NO_VIA.
        assert_eq!(t.via().get(0, 1), NO_VIA);
        assert_eq!(t.via().get(0, 0), NO_VIA);
    }

    #[test]
    fn fw_offset_shifts_vias_globally() {
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(100);
        let v = t.via().get(0, 3);
        assert!(v == 101 || v == 102, "via must be global, got {v}");
    }

    const O0: Offsets = Offsets {
        k: 0,
        row: 0,
        col: 0,
    };

    #[test]
    fn seeded_assign_matches_untracked_distances() {
        let a = path4();
        let b = path4();
        for kernel in [
            MinPlusKernel::Auto,
            MinPlusKernel::Naive,
            MinPlusKernel::Branchless,
            MinPlusKernel::Tiled,
            MinPlusKernel::Packed,
            MinPlusKernel::Parallel,
        ] {
            let mut t = TrackedBlock::from_dist(a.clone());
            t.min_plus_assign(kernel, &b, O0);
            let mut want = a.clone();
            want.min_plus_assign(&b);
            assert_eq!(t.dist(), &want, "kernel {kernel:?}");
            // (0,2) closes through 1.
            assert_eq!(t.via().get(0, 2), 1, "kernel {kernel:?}");
            // The direct edge keeps NO_VIA.
            assert_eq!(t.via().get(0, 1), NO_VIA, "kernel {kernel:?}");
        }
    }

    #[test]
    fn unseeded_product_skips_degenerate_terms_and_merge_recovers_them() {
        // Unseeded product of a block against itself: the k == i and
        // k == j terms (through exact-zero diagonal cells) would record
        // vias the path expansion cannot terminate on; the guards must
        // drop them, and min-merging with the seeded estimate (the
        // repeated-squaring reduce shape) must recover the full result.
        let a = path4();
        let prod = TrackedBlock::min_plus_product(MinPlusKernel::Naive, &a, &a, O0);
        for i in 0..4 {
            for j in 0..4 {
                let v = prod.via().get(i, j);
                assert!(
                    v == NO_VIA || (v as usize != i && v as usize != j),
                    "degenerate via {v} at ({i},{j})"
                );
            }
        }
        let mut merged = TrackedBlock::from_dist(a.clone());
        merged.mat_min_assign(&prod);
        let mut want = a.clone();
        want.mat_min_assign(&a.min_plus(&a));
        assert_eq!(merged.dist(), &want);
        assert_eq!(merged.dist().get(0, 2), 2.0);
    }

    #[test]
    fn assign_folds_under_strict_less() {
        // min_plus_assign must not replace the via when the product only
        // ties the current distance.
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(0);
        let before = t.clone();
        // Squaring a closed block changes nothing.
        t.min_plus_assign(MinPlusKernel::Auto, &before.dist().clone(), O0);
        assert_eq!(t, before);
    }

    #[test]
    fn left_and_right_assign_match_manual_products() {
        let a = path4();
        let mut closed = a.clone();
        closed.floyd_warshall_in_place();

        let mut right = TrackedBlock::from_dist(a.clone());
        right.min_plus_assign(MinPlusKernel::Auto, &closed, O0);
        let mut manual = a.clone();
        manual.min_plus_assign(&closed);
        assert_eq!(right.dist(), &manual);

        let mut left = TrackedBlock::from_dist(a.clone());
        left.min_plus_left_assign(MinPlusKernel::Auto, &closed, O0);
        let mut manual = a.clone();
        manual.min_plus_left_assign(&closed);
        assert_eq!(left.dist(), &manual);
    }

    #[test]
    fn mat_min_takes_strictly_smaller_with_via() {
        let mut x = TrackedBlock::from_dist(Block::filled(2, 5.0));
        let mut y = TrackedBlock::from_dist(Block::filled(2, 5.0));
        y.dist.set(0, 1, 3.0);
        y.via.set(0, 1, 7);
        y.dist.set(1, 0, 5.0); // tie: must NOT move the via
        y.via.set(1, 0, 9);
        x.mat_min_assign(&y);
        assert_eq!(x.dist().get(0, 1), 3.0);
        assert_eq!(x.via().get(0, 1), 7);
        assert_eq!(x.via().get(1, 0), NO_VIA, "tie must keep the old via");
    }

    #[test]
    fn fw_update_outer_tracks_pivot() {
        let mut t = TrackedBlock::from_dist(Block::filled(2, 10.0));
        t.fw_update_outer(&[1.0, 4.0], &[2.0, 3.0], 42);
        assert_eq!(t.dist().get(0, 0), 3.0);
        assert_eq!(t.via().get(0, 0), 42);
        // No improvement, no via.
        let before = t.clone();
        t.fw_update_outer(&[INF, INF], &[0.0, 0.0], 7);
        assert_eq!(t, before);
    }

    #[test]
    fn transpose_mirrors_both_halves() {
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(0);
        let tt = t.transpose();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(tt.dist().get(i, j), t.dist().get(j, i));
                assert_eq!(tt.via().get(i, j), t.via().get(j, i));
            }
        }
    }

    #[test]
    fn parent_block_basics() {
        let mut p = ParentBlock::none(3);
        assert_eq!(p.count_tracked(), 0);
        p.set(0, 2, 11);
        assert_eq!(p.get(0, 2), 11);
        assert_eq!(p.count_tracked(), 1);
        assert_eq!(p.size_bytes(), 9 * 4);
        assert_eq!(p.transpose().get(2, 0), 11);
    }
}
