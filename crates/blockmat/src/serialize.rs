//! Binary (de)serialization of blocks and matrices.
//!
//! The paper's impure solvers write matrix blocks to a shared file system
//! ("`block.tofile()`", Algorithms 1 and 4) in NumPy's C-contiguous
//! row-major layout. This module provides the equivalent wire format:
//! a little-endian `u64` side length followed by `b²` little-endian `f64`
//! entries. Used by the file-backed side channel and by graph/matrix I/O.

use crate::{Block, Matrix};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors raised while decoding a serialized block or matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header demands.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes present.
        actual: usize,
    },
    /// The header declares an implausible dimension.
    BadDimension(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated payload: expected {expected} bytes, got {actual}"
                )
            }
            DecodeError::BadDimension(d) => write!(f, "implausible dimension {d}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on accepted dimensions (guards against corrupt headers
/// causing huge allocations).
const MAX_DIM: u64 = 1 << 20;

impl Block {
    /// Serializes to the row-major wire format.
    pub fn to_bytes(&self) -> Bytes {
        let b = self.side();
        let mut buf = BytesMut::with_capacity(8 + b * b * 8);
        buf.put_u64_le(b as u64);
        for &v in self.data() {
            buf.put_f64_le(v);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Block, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated {
                expected: 8,
                actual: bytes.len(),
            });
        }
        let b = bytes.get_u64_le();
        if b > MAX_DIM {
            return Err(DecodeError::BadDimension(b));
        }
        let b = b as usize;
        let need = b * b * 8;
        if bytes.remaining() < need {
            return Err(DecodeError::Truncated {
                expected: 8 + need,
                actual: 8 + bytes.remaining(),
            });
        }
        let mut data = Vec::with_capacity(b * b);
        for _ in 0..b * b {
            data.push(bytes.get_f64_le());
        }
        Ok(Block::from_vec(b, data))
    }
}

impl Matrix {
    /// Serializes to the row-major wire format.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.order();
        let mut buf = BytesMut::with_capacity(8 + n * n * 8);
        buf.put_u64_le(n as u64);
        for &v in self.data() {
            buf.put_f64_le(v);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Matrix, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated {
                expected: 8,
                actual: bytes.len(),
            });
        }
        let n = bytes.get_u64_le();
        if n > MAX_DIM {
            return Err(DecodeError::BadDimension(n));
        }
        let n = n as usize;
        let need = n * n * 8;
        if bytes.remaining() < need {
            return Err(DecodeError::Truncated {
                expected: 8 + need,
                actual: 8 + bytes.remaining(),
            });
        }
        let mut data = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            data.push(bytes.get_f64_le());
        }
        Ok(Matrix::from_vec(n, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INF;

    #[test]
    fn block_roundtrip_including_inf() {
        let mut blk = Block::identity(5);
        blk.set(0, 3, 2.5);
        blk.set(4, 1, INF);
        let bytes = blk.to_bytes();
        assert_eq!(bytes.len(), 8 + 25 * 8);
        let back = Block::from_bytes(&bytes).unwrap();
        assert_eq!(back, blk);
        assert_eq!(back.get(4, 1), INF);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_fn(7, |i, j| if i == j { 0.0 } else { (i * 7 + j) as f64 });
        let back = Matrix::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn truncated_payload_rejected() {
        let blk = Block::identity(4);
        let bytes = blk.to_bytes();
        let err = Block::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
        let err2 = Block::from_bytes(&bytes[..4]).unwrap_err();
        assert!(matches!(err2, DecodeError::Truncated { .. }));
    }

    #[test]
    fn corrupt_header_rejected() {
        let mut bytes = Block::identity(2).to_bytes().to_vec();
        bytes[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Block::from_bytes(&bytes),
            Err(DecodeError::BadDimension(_))
        ));
    }

    #[test]
    fn zero_sized_block() {
        let blk = Block::infinity(0);
        let back = Block::from_bytes(&blk.to_bytes()).unwrap();
        assert_eq!(back.side(), 0);
    }
}
