//! Binary (de)serialization of blocks and matrices.
//!
//! The paper's impure solvers write matrix blocks to a shared file system
//! ("`block.tofile()`", Algorithms 1 and 4) in NumPy's C-contiguous
//! row-major layout. This module provides the equivalent wire format:
//! a little-endian `u64` side length followed by `b²` little-endian `f64`
//! entries. Used by the file-backed side channel and by graph/matrix I/O.

use crate::{Block, Matrix};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors raised while decoding a serialized block or matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header demands.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes present.
        actual: usize,
    },
    /// The header declares an implausible dimension.
    BadDimension(u64),
    /// A framed payload does not start with [`FRAME_MAGIC`].
    BadMagic,
    /// A framed payload was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// A framed payload's body does not hash to the checksum in its
    /// header — the blob was corrupted at rest or in flight.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the body as read.
        actual: u64,
    },
    /// A framed payload carries an unknown kind tag.
    BadKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated payload: expected {expected} bytes, got {actual}"
                )
            }
            DecodeError::BadDimension(d) => write!(f, "implausible dimension {d}"),
            DecodeError::BadMagic => write!(f, "payload lacks the APSPCKPT frame magic"),
            DecodeError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "frame version {found} is not supported (this build reads version {supported})"
                )
            }
            DecodeError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header says {expected:#018x}, body hashes to {actual:#018x}"
                )
            }
            DecodeError::BadKind(k) => write!(f, "unknown frame kind tag {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on accepted dimensions (guards against corrupt headers
/// causing huge allocations).
pub(crate) const MAX_DIM: u64 = 1 << 20;

impl Block {
    /// Serializes to the row-major wire format.
    pub fn to_bytes(&self) -> Bytes {
        let b = self.side();
        let mut buf = BytesMut::with_capacity(8 + b * b * 8);
        buf.put_u64_le(b as u64);
        for &v in self.data() {
            buf.put_f64_le(v);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Block, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated {
                expected: 8,
                actual: bytes.len(),
            });
        }
        let b = bytes.get_u64_le();
        if b > MAX_DIM {
            return Err(DecodeError::BadDimension(b));
        }
        let b = b as usize;
        let need = b * b * 8;
        if bytes.remaining() < need {
            return Err(DecodeError::Truncated {
                expected: 8 + need,
                actual: 8 + bytes.remaining(),
            });
        }
        let mut data = Vec::with_capacity(b * b);
        for _ in 0..b * b {
            data.push(bytes.get_f64_le());
        }
        Ok(Block::from_vec(b, data))
    }
}

impl Matrix {
    /// Serializes to the row-major wire format.
    pub fn to_bytes(&self) -> Bytes {
        let n = self.order();
        let mut buf = BytesMut::with_capacity(8 + n * n * 8);
        buf.put_u64_le(n as u64);
        for &v in self.data() {
            buf.put_f64_le(v);
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Matrix, DecodeError> {
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated {
                expected: 8,
                actual: bytes.len(),
            });
        }
        let n = bytes.get_u64_le();
        if n > MAX_DIM {
            return Err(DecodeError::BadDimension(n));
        }
        let n = n as usize;
        let need = n * n * 8;
        if bytes.remaining() < need {
            return Err(DecodeError::Truncated {
                expected: 8 + need,
                actual: 8 + bytes.remaining(),
            });
        }
        let mut data = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            data.push(bytes.get_f64_le());
        }
        Ok(Matrix::from_vec(n, data))
    }
}

// ---------------------------------------------------------------------------
// Framed container: versioned, checksummed envelopes for blobs at rest.
// ---------------------------------------------------------------------------

/// Magic prefix of every framed payload.
pub const FRAME_MAGIC: [u8; 8] = *b"APSPCKPT";
/// Current frame format version; bump on any layout change.
pub const FRAME_VERSION: u32 = 1;
/// Size of the frame header: magic (8) + version (4) + kind (1) +
/// body length (8) + checksum (8).
pub const FRAME_HEADER_LEN: usize = 29;
/// Kind tag for a serialized matrix block.
pub const FRAME_KIND_BLOCK: u8 = 1;
/// Kind tag for a checkpoint manifest.
pub const FRAME_KIND_MANIFEST: u8 = 2;
/// Kind tag for a closure-store manifest (the store's commit record).
pub const FRAME_KIND_STORE_MANIFEST: u8 = 3;

/// FNV-1a over `bytes` — the integrity checksum for framed payloads
/// (stable, dependency-free; not cryptographic, which is fine for
/// detecting storage corruption).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Wraps `body` in a versioned, checksummed frame.
pub fn frame(kind: u8, body: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + body.len());
    buf.put_slice(&FRAME_MAGIC);
    buf.put_u32_le(FRAME_VERSION);
    buf.put_u8(kind);
    buf.put_u64_le(body.len() as u64);
    buf.put_u64_le(fnv1a64(body));
    buf.put_slice(body);
    buf.freeze()
}

/// Validates a frame and returns `(kind, body)`. Rejects bad magic,
/// unsupported versions, truncation, and checksum mismatches with a
/// typed [`DecodeError`].
pub fn unframe(bytes: &[u8]) -> Result<(u8, &[u8]), DecodeError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(DecodeError::Truncated {
            expected: FRAME_HEADER_LEN,
            actual: bytes.len(),
        });
    }
    if bytes[..8] != FRAME_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut header = &bytes[8..FRAME_HEADER_LEN];
    let version = header.get_u32_le();
    if version != FRAME_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            found: version,
            supported: FRAME_VERSION,
        });
    }
    let kind = header.get_u8();
    let body_len = header.get_u64_le();
    let expected_checksum = header.get_u64_le();
    let body = &bytes[FRAME_HEADER_LEN..];
    if (body.len() as u64) < body_len {
        return Err(DecodeError::Truncated {
            expected: FRAME_HEADER_LEN + body_len as usize,
            actual: bytes.len(),
        });
    }
    let body = &body[..body_len as usize];
    let actual_checksum = fnv1a64(body);
    if actual_checksum != expected_checksum {
        return Err(DecodeError::ChecksumMismatch {
            expected: expected_checksum,
            actual: actual_checksum,
        });
    }
    Ok((kind, body))
}

// ---------------------------------------------------------------------------
// Element codec: fixed-width little-endian encoding per plane element.
// ---------------------------------------------------------------------------

/// Fixed-width little-endian wire codec for plane elements. Implemented
/// for every semiring element and payload type the path algebras use, so
/// checkpointing stays generic over [`crate::algebra::PathAlgebra`].
///
/// `get` assumes the caller has already length-checked the input (as
/// [`decode_plane`] does) and may panic on short slices.
pub trait Wire: Copy {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Appends the encoding of `self` to `buf`.
    fn put(self, buf: &mut BytesMut);
    /// Reads one value, advancing `bytes`.
    fn get(bytes: &mut &[u8]) -> Self;
}

impl Wire for f64 {
    const WIDTH: usize = 8;
    fn put(self, buf: &mut BytesMut) {
        buf.put_f64_le(self);
    }
    fn get(bytes: &mut &[u8]) -> Self {
        bytes.get_f64_le()
    }
}

impl Wire for f32 {
    const WIDTH: usize = 4;
    fn put(self, buf: &mut BytesMut) {
        buf.put_f32_le(self);
    }
    fn get(bytes: &mut &[u8]) -> Self {
        bytes.get_f32_le()
    }
}

impl Wire for i64 {
    const WIDTH: usize = 8;
    fn put(self, buf: &mut BytesMut) {
        buf.put_i64_le(self);
    }
    fn get(bytes: &mut &[u8]) -> Self {
        bytes.get_i64_le()
    }
}

impl Wire for u64 {
    const WIDTH: usize = 8;
    fn put(self, buf: &mut BytesMut) {
        buf.put_u64_le(self);
    }
    fn get(bytes: &mut &[u8]) -> Self {
        bytes.get_u64_le()
    }
}

impl Wire for u32 {
    const WIDTH: usize = 4;
    fn put(self, buf: &mut BytesMut) {
        buf.put_u32_le(self);
    }
    fn get(bytes: &mut &[u8]) -> Self {
        bytes.get_u32_le()
    }
}

impl Wire for bool {
    const WIDTH: usize = 1;
    fn put(self, buf: &mut BytesMut) {
        buf.put_u8(self as u8);
    }
    fn get(bytes: &mut &[u8]) -> Self {
        bytes.get_u8() != 0
    }
}

impl Wire for () {
    const WIDTH: usize = 0;
    fn put(self, _buf: &mut BytesMut) {}
    fn get(_bytes: &mut &[u8]) -> Self {}
}

/// Appends the fixed-width encodings of `vals` to `buf`.
pub fn encode_plane<T: Wire>(vals: &[T], buf: &mut BytesMut) {
    for &v in vals {
        v.put(buf);
    }
}

/// Decodes `count` fixed-width values, advancing `bytes`.
pub fn decode_plane<T: Wire>(bytes: &mut &[u8], count: usize) -> Result<Vec<T>, DecodeError> {
    let need = count
        .checked_mul(T::WIDTH)
        .ok_or(DecodeError::BadDimension(count as u64))?;
    if bytes.len() < need {
        return Err(DecodeError::Truncated {
            expected: need,
            actual: bytes.len(),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(T::get(bytes));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INF;

    #[test]
    fn block_roundtrip_including_inf() {
        let mut blk = Block::identity(5);
        blk.set(0, 3, 2.5);
        blk.set(4, 1, INF);
        let bytes = blk.to_bytes();
        assert_eq!(bytes.len(), 8 + 25 * 8);
        let back = Block::from_bytes(&bytes).unwrap();
        assert_eq!(back, blk);
        assert_eq!(back.get(4, 1), INF);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_fn(7, |i, j| if i == j { 0.0 } else { (i * 7 + j) as f64 });
        let back = Matrix::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn truncated_payload_rejected() {
        let blk = Block::identity(4);
        let bytes = blk.to_bytes();
        let err = Block::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
        let err2 = Block::from_bytes(&bytes[..4]).unwrap_err();
        assert!(matches!(err2, DecodeError::Truncated { .. }));
    }

    #[test]
    fn corrupt_header_rejected() {
        let mut bytes = Block::identity(2).to_bytes().to_vec();
        bytes[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Block::from_bytes(&bytes),
            Err(DecodeError::BadDimension(_))
        ));
    }

    #[test]
    fn zero_sized_block() {
        let blk = Block::infinity(0);
        let back = Block::from_bytes(&blk.to_bytes()).unwrap();
        assert_eq!(back.side(), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let body = b"the quick brown fox";
        let framed = frame(FRAME_KIND_BLOCK, body);
        assert_eq!(framed.len(), FRAME_HEADER_LEN + body.len());
        let (kind, got) = unframe(&framed).unwrap();
        assert_eq!(kind, FRAME_KIND_BLOCK);
        assert_eq!(got, body);
    }

    #[test]
    fn frame_empty_body() {
        let framed = frame(FRAME_KIND_MANIFEST, &[]);
        let (kind, got) = unframe(&framed).unwrap();
        assert_eq!(kind, FRAME_KIND_MANIFEST);
        assert!(got.is_empty());
    }

    #[test]
    fn corrupted_body_fails_checksum() {
        let framed = frame(FRAME_KIND_BLOCK, &[1, 2, 3, 4]);
        let mut raw = framed.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        assert!(matches!(
            unframe(&raw),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let framed = frame(FRAME_KIND_BLOCK, &[9; 8]);
        let mut raw = framed.to_vec();
        raw[0] = b'X';
        assert_eq!(unframe(&raw), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let framed = frame(FRAME_KIND_BLOCK, &[9; 8]);
        let mut raw = framed.to_vec();
        raw[8..12].copy_from_slice(&(FRAME_VERSION + 1).to_le_bytes());
        assert_eq!(
            unframe(&raw),
            Err(DecodeError::UnsupportedVersion {
                found: FRAME_VERSION + 1,
                supported: FRAME_VERSION,
            })
        );
    }

    #[test]
    fn truncated_frame_rejected() {
        let framed = frame(FRAME_KIND_BLOCK, &[7; 100]);
        assert!(matches!(
            unframe(&framed[..FRAME_HEADER_LEN + 50]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            unframe(&framed[..10]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn wire_roundtrips_every_element_type() {
        let mut buf = BytesMut::new();
        encode_plane(&[1.5f64, INF, -0.0], &mut buf);
        encode_plane(&[2.5f32], &mut buf);
        encode_plane(&[-7i64, i64::MAX], &mut buf);
        encode_plane(&[u32::MAX, 0], &mut buf);
        encode_plane(&[true, false], &mut buf);
        encode_plane(&[(), ()], &mut buf);
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(
            decode_plane::<f64>(&mut cur, 3).unwrap(),
            vec![1.5, INF, -0.0]
        );
        assert_eq!(decode_plane::<f32>(&mut cur, 1).unwrap(), vec![2.5]);
        assert_eq!(
            decode_plane::<i64>(&mut cur, 2).unwrap(),
            vec![-7, i64::MAX]
        );
        assert_eq!(decode_plane::<u32>(&mut cur, 2).unwrap(), vec![u32::MAX, 0]);
        assert_eq!(
            decode_plane::<bool>(&mut cur, 2).unwrap(),
            vec![true, false]
        );
        assert_eq!(decode_plane::<()>(&mut cur, 2).unwrap(), vec![(), ()]);
        assert_eq!(cur.len(), 0);
    }

    #[test]
    fn decode_plane_rejects_short_input() {
        let mut cur: &[u8] = &[0u8; 15];
        assert!(matches!(
            decode_plane::<f64>(&mut cur, 2),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn negative_zero_survives_bit_exactly() {
        let mut buf = BytesMut::new();
        encode_plane(&[-0.0f64], &mut buf);
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        let back = decode_plane::<f64>(&mut cur, 1).unwrap()[0];
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }
}
