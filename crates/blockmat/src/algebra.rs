//! The path-algebra layer: a [`Semiring`] plus an optional per-cell
//! payload, with bulk kernels dispatched per algebra.
//!
//! The paper (§2) poses APSP as matrix algebra over *(min, +)*; the same
//! blocked machinery solves all-pairs bottleneck/widest paths by swapping
//! in *(max, min)* (Shinn & Takaoka) and boolean transitive closure by
//! swapping in *(∨, ∧)* (Katz et al., cited as \[10\]). This module makes
//! the algebra a **type parameter** instead of a hard-coded `f64`:
//!
//! * [`PathAlgebra`] — the dispatch trait: an element [`Semiring`], a
//!   per-cell payload type, and the bulk block operations the solvers
//!   drive (`⊕⊗` fold-product, in-block closure, rank-1 update,
//!   element-wise join). Every operation has a generic fallback loop;
//!   algebras with a specialized kernel tier override them.
//! * [`Tropical`] — plain *(min, +)* over `f64` with the zero-sized `()`
//!   payload. Overrides every hook with the packed/branchless/parallel
//!   engine in [`crate::kernels`], so the APSP hot path is **bit-exact**
//!   with (and exactly as fast as) the dedicated `f64` stack.
//! * [`TrackedTropical`] — tropical ⊗ argmin payload: each cell carries
//!   the `u32` global id of the winning intermediate vertex. What used to
//!   be a parallel `TrackedBlock` type hierarchy is this algebra riding
//!   the same generic records. Overrides the hooks with the tracked
//!   kernel tier.
//! * [`Widest`] — the bottleneck *(max, min)* algebra over capacities
//!   ([`BottleneckF64`]). Overrides the hooks with the packed *(max, min)*
//!   twin of the tropical engine (`vmaxpd`/`vminpd` in place of
//!   `vminpd`/`vaddpd`), sharing the same 4×8 register blocking, scratch
//!   pools, and size-tier dispatch ([`kernels::select_maxmin`]).
//! * [`Reachability`] — boolean transitive closure ([`BoolSemiring`]).
//!   Overrides the hooks with the bitset engine: booleans packed 64 per
//!   `u64` word ([`crate::BitBlock`]) so the *(∨, ∧)* product is a
//!   word-wide `|` of rows selected by set bits.
//!
//! [`AlgBlock<A>`] is the block record the generic solvers move through
//! the engine: an element block plus its payload plane. For `()` payloads
//! the plane is zero bytes, so `AlgBlock<Tropical>` *is* a distance
//! [`crate::Block`] plus nothing.

use crate::block::ElemBlock;
use crate::kernels::{self, MinPlusKernel};
use crate::parent::{Offsets, PayBlock, NO_VIA};
use crate::semiring::{BoolSemiring, BottleneckF64, Semiring, TropicalF64};
#[cfg(test)]
use crate::Block;
use crate::INF;
use std::fmt::Debug;

/// Element type of a path algebra (shorthand for the semiring's element).
pub type Elem<A> = <<A as PathAlgebra>::Semi as Semiring>::Elem;

/// A path algebra: the element [`Semiring`] the block values live in, an
/// optional per-cell payload recorded on strict improvements, and the bulk
/// block operations the blocked solvers are written against.
///
/// The provided method bodies are the generic fallback loops — correct for
/// any algebra whose `⊕` is selective (returns one of its operands), which
/// all path problems here satisfy. Implementations with a tuned kernel
/// tier (the `f64` tropical fast path, the tracked tier) override them;
/// the solvers never know the difference.
///
/// All bulk operations work on row-major `n × n` slices so they can run
/// against block storage and scratch buffers alike.
///
/// The `where` clauses require every element and payload type to carry a
/// fixed-width wire encoding ([`crate::serialize::Wire`]) so that any
/// algebra's block planes can be checkpointed; the bound is implied at
/// use sites, so generic solver code never has to restate it.
pub trait PathAlgebra: Copy + Send + Sync + 'static
where
    <Self::Semi as Semiring>::Elem: crate::serialize::Wire,
    Self::Payload: crate::serialize::Wire,
{
    /// The element semiring.
    type Semi: Semiring;

    /// Per-cell payload carried beside each element (`()` when nothing is
    /// tracked; `u32` argmin vias for the tracked tropical algebra).
    type Payload: Copy + PartialEq + Debug + Send + Sync + 'static;

    /// Whether the payload is meaningful. When `true`, the generic loops
    /// skip degenerate terms (global `k` equal to the target's global row
    /// or column — see the seeding contract in [`crate::parent`]) and
    /// record [`PathAlgebra::payload_for`] on every strict improvement.
    const TRACKS: bool;

    /// Human-readable algebra name (for diagnostics and benches).
    const NAME: &'static str;

    /// The payload of a cell with no recorded witness.
    fn empty_payload() -> Self::Payload;

    /// The payload recorded when the term through global vertex `k` wins.
    fn payload_for(k_global: usize) -> Self::Payload;

    /// Fold-product `c = c ⊕ (a ⊗ b)` — the paper's `MatProd`+`MatMin`
    /// composition, seeded (folds into the live `c`).
    fn fold_product(
        kernel: MinPlusKernel,
        ad: &[Elem<Self>],
        bd: &[Elem<Self>],
        cd: &mut [Elem<Self>],
        cp: &mut [Self::Payload],
        n: usize,
        o: Offsets,
    ) {
        let _ = kernel;
        let zero = Self::Semi::zero();
        for i in 0..n {
            let ig = o.row + i;
            for k in 0..n {
                let kg = o.k + k;
                if Self::TRACKS && kg == ig {
                    continue;
                }
                let aik = ad[i * n + k];
                if aik == zero {
                    continue;
                }
                let pay = Self::payload_for(kg);
                for j in 0..n {
                    if Self::TRACKS && kg == o.col + j {
                        continue;
                    }
                    let cand = Self::Semi::mul(aik, bd[k * n + j]);
                    let cur = cd[i * n + j];
                    let new = Self::Semi::add(cur, cand);
                    if new != cur {
                        cd[i * n + j] = new;
                        cp[i * n + j] = pay;
                    }
                }
            }
        }
    }

    /// `c = c ⊕ (c ⊗ other)` — the pivot-column update. The default
    /// builds the product in freshly allocated scratch; specialized
    /// algebras use the thread-local scratch pools instead.
    fn product_assign(
        kernel: MinPlusKernel,
        cd: &mut [Elem<Self>],
        cp: &mut [Self::Payload],
        other: &[Elem<Self>],
        n: usize,
        o: Offsets,
    ) {
        let mut sd = vec![Self::Semi::zero(); n * n];
        let mut sp = vec![Self::empty_payload(); n * n];
        Self::fold_product(kernel, cd, other, &mut sd, &mut sp, n, o);
        Self::join(cd, cp, &sd, &sp);
    }

    /// `c = c ⊕ (other ⊗ c)` — the pivot-row mirror of
    /// [`PathAlgebra::product_assign`].
    fn product_left_assign(
        kernel: MinPlusKernel,
        cd: &mut [Elem<Self>],
        cp: &mut [Self::Payload],
        other: &[Elem<Self>],
        n: usize,
        o: Offsets,
    ) {
        let mut sd = vec![Self::Semi::zero(); n * n];
        let mut sp = vec![Self::empty_payload(); n * n];
        Self::fold_product(kernel, other, cd, &mut sd, &mut sp, n, o);
        Self::join(cd, cp, &sd, &sp);
    }

    /// In-block Kleene/Floyd-Warshall closure of a diagonal block whose
    /// row/column `0` is global vertex `diag_offset`.
    fn closure_in_place(
        cd: &mut [Elem<Self>],
        cp: &mut [Self::Payload],
        n: usize,
        diag_offset: usize,
    ) {
        let zero = Self::Semi::zero();
        for k in 0..n {
            let pay = Self::payload_for(diag_offset + k);
            for i in 0..n {
                if Self::TRACKS && i == k {
                    continue;
                }
                let dik = cd[i * n + k];
                if dik == zero {
                    continue;
                }
                for j in 0..n {
                    let cand = Self::Semi::mul(dik, cd[k * n + j]);
                    let cur = cd[i * n + j];
                    let new = Self::Semi::add(cur, cand);
                    if new != cur {
                        cd[i * n + j] = new;
                        cp[i * n + j] = pay;
                    }
                }
            }
        }
    }

    /// Rank-1 update through the single global pivot `k_global` (the
    /// paper's `FloydWarshallUpdate`): `c[i][j] = c[i][j] ⊕ (col_i[i] ⊗
    /// col_j[j])`.
    fn rank1_update(
        cd: &mut [Elem<Self>],
        cp: &mut [Self::Payload],
        col_i: &[Elem<Self>],
        col_j: &[Elem<Self>],
        n: usize,
        k_global: usize,
    ) {
        assert_eq!(col_i.len(), n, "col_i length must equal block side");
        assert_eq!(col_j.len(), n, "col_j length must equal block side");
        let zero = Self::Semi::zero();
        let pay = Self::payload_for(k_global);
        for (i, &ci) in col_i.iter().enumerate() {
            if ci == zero {
                continue;
            }
            for (j, &cj) in col_j.iter().enumerate() {
                let cand = Self::Semi::mul(ci, cj);
                let cur = cd[i * n + j];
                let new = Self::Semi::add(cur, cand);
                if new != cur {
                    cd[i * n + j] = new;
                    cp[i * n + j] = pay;
                }
            }
        }
    }

    /// Element-wise join `c = c ⊕ o` (the paper's `MatMin` / the
    /// reduce-by-key merge), taking `o`'s payload exactly where `o`
    /// strictly improves `c` — ties keep the established payload.
    fn join(
        cd: &mut [Elem<Self>],
        cp: &mut [Self::Payload],
        od: &[Elem<Self>],
        op: &[Self::Payload],
    ) {
        for (((c, p), &o), &q) in cd.iter_mut().zip(cp.iter_mut()).zip(od).zip(op) {
            let new = Self::Semi::add(*c, o);
            if new != *c {
                *c = new;
                *p = q;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Algebra instances
// ---------------------------------------------------------------------------

/// Plain tropical *(min, +)* over `f64` — APSP distances, no payload.
///
/// Every hook forwards to the packed/branchless/parallel kernel engine,
/// so a solve over this algebra is bit-exact with (and as fast as) the
/// dedicated `f64` stack it replaced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tropical;

impl PathAlgebra for Tropical {
    type Semi = TropicalF64;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "tropical";

    #[inline(always)]
    fn empty_payload() {}
    #[inline(always)]
    fn payload_for(_k_global: usize) {}

    fn fold_product(
        kernel: MinPlusKernel,
        ad: &[f64],
        bd: &[f64],
        cd: &mut [f64],
        _cp: &mut [()],
        n: usize,
        _o: Offsets,
    ) {
        kernels::min_plus_slices_with(kernel, ad, bd, cd, n);
    }

    fn product_assign(
        kernel: MinPlusKernel,
        cd: &mut [f64],
        _cp: &mut [()],
        other: &[f64],
        n: usize,
        _o: Offsets,
    ) {
        kernels::with_scratch(n * n, |scratch| {
            scratch.fill(INF);
            kernels::min_plus_slices_with(kernel, cd, other, scratch, n);
            for (d, &s) in cd.iter_mut().zip(scratch.iter()) {
                *d = kernels::tmin(s, *d);
            }
        });
    }

    fn product_left_assign(
        kernel: MinPlusKernel,
        cd: &mut [f64],
        _cp: &mut [()],
        other: &[f64],
        n: usize,
        _o: Offsets,
    ) {
        kernels::with_scratch(n * n, |scratch| {
            scratch.fill(INF);
            kernels::min_plus_slices_with(kernel, other, cd, scratch, n);
            for (d, &s) in cd.iter_mut().zip(scratch.iter()) {
                *d = kernels::tmin(s, *d);
            }
        });
    }

    fn closure_in_place(cd: &mut [f64], _cp: &mut [()], n: usize, _diag_offset: usize) {
        kernels::fw_in_place_slices(cd, n);
    }

    fn rank1_update(
        cd: &mut [f64],
        _cp: &mut [()],
        col_i: &[f64],
        col_j: &[f64],
        n: usize,
        _k_global: usize,
    ) {
        kernels::fw_update_outer_slices(cd, col_i, col_j, n);
    }

    fn join(cd: &mut [f64], _cp: &mut [()], od: &[f64], _op: &[()]) {
        for (d, &o) in cd.iter_mut().zip(od) {
            *d = kernels::tmin(o, *d);
        }
    }
}

/// Tropical ⊗ argmin payload: `f64` distances plus a `u32` via per cell.
///
/// The algebra behind `SolverConfig::with_paths`: hooks forward to the
/// tracked kernel tier, which records the winning global `k` under strict
/// `<` and skips degenerate terms (see [`crate::parent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackedTropical;

impl PathAlgebra for TrackedTropical {
    type Semi = TropicalF64;
    type Payload = u32;
    const TRACKS: bool = true;
    const NAME: &'static str = "tropical+argmin";

    #[inline(always)]
    fn empty_payload() -> u32 {
        NO_VIA
    }
    #[inline(always)]
    fn payload_for(k_global: usize) -> u32 {
        k_global as u32
    }

    fn fold_product(
        kernel: MinPlusKernel,
        ad: &[f64],
        bd: &[f64],
        cd: &mut [f64],
        cp: &mut [u32],
        n: usize,
        o: Offsets,
    ) {
        kernels::min_plus_slices_tracked_with(kernel, ad, bd, cd, cp, n, o);
    }

    fn product_assign(
        kernel: MinPlusKernel,
        cd: &mut [f64],
        cp: &mut [u32],
        other: &[f64],
        n: usize,
        o: Offsets,
    ) {
        kernels::with_scratch(n * n, |sd| {
            kernels::with_via_scratch(n * n, |sv| {
                sd.fill(INF);
                sv.fill(NO_VIA);
                kernels::min_plus_slices_tracked_with(kernel, cd, other, sd, sv, n, o);
                kernels::fold_tracked(cd, cp, sd, sv);
            });
        });
    }

    fn product_left_assign(
        kernel: MinPlusKernel,
        cd: &mut [f64],
        cp: &mut [u32],
        other: &[f64],
        n: usize,
        o: Offsets,
    ) {
        kernels::with_scratch(n * n, |sd| {
            kernels::with_via_scratch(n * n, |sv| {
                sd.fill(INF);
                sv.fill(NO_VIA);
                kernels::min_plus_slices_tracked_with(kernel, other, cd, sd, sv, n, o);
                kernels::fold_tracked(cd, cp, sd, sv);
            });
        });
    }

    fn closure_in_place(cd: &mut [f64], cp: &mut [u32], n: usize, diag_offset: usize) {
        kernels::fw_in_place_tracked_slices(cd, cp, n, diag_offset);
    }

    fn rank1_update(
        cd: &mut [f64],
        cp: &mut [u32],
        col_i: &[f64],
        col_j: &[f64],
        n: usize,
        k_global: usize,
    ) {
        kernels::fw_update_outer_tracked_slices(cd, cp, col_i, col_j, n, k_global);
    }

    fn join(cd: &mut [f64], cp: &mut [u32], od: &[f64], op: &[u32]) {
        kernels::fold_tracked(cd, cp, od, op);
    }
}

/// The bottleneck / widest-path algebra *(max, min)* over `f64`
/// capacities — all-pairs bottleneck paths (Shinn & Takaoka).
///
/// Every hook forwards to the packed *(max, min)* engine in
/// [`crate::kernels`]: the same 4×8 register-blocked micro-kernel,
/// scratch-pooled fold entry points, and size-tier dispatch as the
/// tropical fast path ([`kernels::select_maxmin`]), with `vmaxpd`/`vminpd`
/// standing in for `vminpd`/`vaddpd` and `0.0` (no pipe) as the inert
/// pad/skip value. Pin [`MinPlusKernel::Naive`] to run the branchy oracle
/// loop instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Widest;

impl PathAlgebra for Widest {
    type Semi = BottleneckF64;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "bottleneck";

    #[inline(always)]
    fn empty_payload() {}
    #[inline(always)]
    fn payload_for(_k_global: usize) {}

    fn fold_product(
        kernel: MinPlusKernel,
        ad: &[f64],
        bd: &[f64],
        cd: &mut [f64],
        _cp: &mut [()],
        n: usize,
        _o: Offsets,
    ) {
        kernels::maxmin_slices_with(kernel, ad, bd, cd, n);
    }

    fn product_assign(
        kernel: MinPlusKernel,
        cd: &mut [f64],
        _cp: &mut [()],
        other: &[f64],
        n: usize,
        _o: Offsets,
    ) {
        kernels::with_scratch(n * n, |scratch| {
            scratch.fill(0.0);
            kernels::maxmin_slices_with(kernel, cd, other, scratch, n);
            for (d, &s) in cd.iter_mut().zip(scratch.iter()) {
                *d = kernels::bmax(s, *d);
            }
        });
    }

    fn product_left_assign(
        kernel: MinPlusKernel,
        cd: &mut [f64],
        _cp: &mut [()],
        other: &[f64],
        n: usize,
        _o: Offsets,
    ) {
        kernels::with_scratch(n * n, |scratch| {
            scratch.fill(0.0);
            kernels::maxmin_slices_with(kernel, other, cd, scratch, n);
            for (d, &s) in cd.iter_mut().zip(scratch.iter()) {
                *d = kernels::bmax(s, *d);
            }
        });
    }

    fn closure_in_place(cd: &mut [f64], _cp: &mut [()], n: usize, _diag_offset: usize) {
        kernels::maxmin_fw_in_place_slices(cd, n);
    }

    fn rank1_update(
        cd: &mut [f64],
        _cp: &mut [()],
        col_i: &[f64],
        col_j: &[f64],
        n: usize,
        _k_global: usize,
    ) {
        kernels::maxmin_rank1_slices(cd, col_i, col_j, n);
    }

    fn join(cd: &mut [f64], _cp: &mut [()], od: &[f64], _op: &[()]) {
        for (d, &o) in cd.iter_mut().zip(od) {
            *d = kernels::bmax(o, *d);
        }
    }
}

/// Boolean transitive closure *(∨, ∧)* — reachability (Katz et al.
/// \[10\]).
///
/// Every hook forwards to the bitset kernels in [`crate::kernels`]: the
/// boolean plane is packed 64 cells per `u64` word at the block boundary
/// (see [`crate::BitBlock`]), so the `(∨, ∧)` product becomes a word-wide
/// `|` of `b`-rows selected by `a`'s set bits — 64 column relaxations per
/// instruction, with sparse rows costing only their popcount. There is no
/// size crossover ([`kernels::select_boolean`]): the bitset tier wins at
/// every side. Pin [`MinPlusKernel::Naive`] to run the element-at-a-time
/// oracle loop instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reachability;

impl PathAlgebra for Reachability {
    type Semi = BoolSemiring;
    type Payload = ();
    const TRACKS: bool = false;
    const NAME: &'static str = "boolean";

    #[inline(always)]
    fn empty_payload() {}
    #[inline(always)]
    fn payload_for(_k_global: usize) {}

    fn fold_product(
        kernel: MinPlusKernel,
        ad: &[bool],
        bd: &[bool],
        cd: &mut [bool],
        _cp: &mut [()],
        n: usize,
        _o: Offsets,
    ) {
        if kernel == MinPlusKernel::Naive {
            kernels::bool_naive_fold_slices(ad, bd, cd, n);
        } else {
            kernels::bool_fold_slices(ad, bd, cd, n);
        }
    }

    fn product_assign(
        kernel: MinPlusKernel,
        cd: &mut [bool],
        _cp: &mut [()],
        other: &[bool],
        n: usize,
        _o: Offsets,
    ) {
        if kernel == MinPlusKernel::Naive {
            // Oracle path: the trait-default two-step shape (product in
            // fresh scratch, then join) with the naive loop.
            let mut sd = vec![false; n * n];
            kernels::bool_naive_fold_slices(cd, other, &mut sd, n);
            for (c, &s) in cd.iter_mut().zip(sd.iter()) {
                *c |= s;
            }
        } else {
            kernels::bool_product_assign_slices(cd, other, n);
        }
    }

    fn product_left_assign(
        kernel: MinPlusKernel,
        cd: &mut [bool],
        _cp: &mut [()],
        other: &[bool],
        n: usize,
        _o: Offsets,
    ) {
        if kernel == MinPlusKernel::Naive {
            let mut sd = vec![false; n * n];
            kernels::bool_naive_fold_slices(other, cd, &mut sd, n);
            for (c, &s) in cd.iter_mut().zip(sd.iter()) {
                *c |= s;
            }
        } else {
            kernels::bool_product_left_assign_slices(cd, other, n);
        }
    }

    fn closure_in_place(cd: &mut [bool], _cp: &mut [()], n: usize, _diag_offset: usize) {
        kernels::bool_closure_slices(cd, n);
    }

    fn rank1_update(
        cd: &mut [bool],
        _cp: &mut [()],
        col_i: &[bool],
        col_j: &[bool],
        n: usize,
        _k_global: usize,
    ) {
        kernels::bool_rank1_slices(cd, col_i, col_j, n);
    }

    fn join(cd: &mut [bool], _cp: &mut [()], od: &[bool], _op: &[()]) {
        for (c, &o) in cd.iter_mut().zip(od) {
            *c |= o;
        }
    }
}

/// Bottleneck *(max, min)* ⊗ argmax payload: `f64` capacities plus the
/// `u32` via of the winning relaxation per cell — widest paths with
/// witness reconstruction, on the generic tracked loops.
///
/// Witness soundness follows the same argument as the tropical tracked
/// tier: a via is recorded only on a **strict** improvement, and a cell's
/// operands already carried (at record time) widths at least as large as
/// the improved value, so expanding `(i, j) → (i, k), (k, j)` walks a
/// well-founded order of improvement events and terminates on direct
/// edges. The degenerate-term guards (`k == i`, `k == j`) apply unchanged
/// because the `(max, min)` identity `+∞` sits on the diagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackedWidest;

impl PathAlgebra for TrackedWidest {
    type Semi = BottleneckF64;
    type Payload = u32;
    const TRACKS: bool = true;
    const NAME: &'static str = "bottleneck+argmax";

    #[inline(always)]
    fn empty_payload() -> u32 {
        NO_VIA
    }
    #[inline(always)]
    fn payload_for(k_global: usize) -> u32 {
        k_global as u32
    }
}

/// Boolean closure ⊗ via payload: reachability plus, per reachable pair,
/// an interior vertex of one connecting walk. A cell flips `false → true`
/// exactly once, and its operands flipped strictly earlier, so via
/// expansion is well-founded by flip order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackedReachability;

impl PathAlgebra for TrackedReachability {
    type Semi = BoolSemiring;
    type Payload = u32;
    const TRACKS: bool = true;
    const NAME: &'static str = "boolean+via";

    #[inline(always)]
    fn empty_payload() -> u32 {
        NO_VIA
    }
    #[inline(always)]
    fn payload_for(k_global: usize) -> u32 {
        k_global as u32
    }
}

// ---------------------------------------------------------------------------
// The combined block record
// ---------------------------------------------------------------------------

/// An element block paired with its payload plane: the record type the
/// generic solvers move through the engine.
///
/// All mutating operations take the [`Offsets`] needed to translate
/// block-local indices into global vertex ids (and, for tracking
/// algebras, to suppress degenerate terms — see [`crate::parent`] for the
/// seeding contract). For `()` payloads the plane occupies zero bytes and
/// every payload write compiles away.
pub struct AlgBlock<A: PathAlgebra> {
    dist: ElemBlock<A::Semi>,
    pay: PayBlock<A::Payload>,
}

/// A distance [`crate::Block`] paired with its `u32` via plane — the record type
/// of the path-tracking solvers, now simply the [`TrackedTropical`]
/// instantiation of the generic block.
pub type TrackedBlock = AlgBlock<TrackedTropical>;

impl<A: PathAlgebra> Clone for AlgBlock<A> {
    fn clone(&self) -> Self {
        AlgBlock {
            dist: self.dist.clone(),
            pay: self.pay.clone(),
        }
    }
}

impl<A: PathAlgebra> PartialEq for AlgBlock<A> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.pay == other.pay
    }
}

impl<A: PathAlgebra> Debug for AlgBlock<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlgBlock<{}> {{ dist: {:?} }}", A::NAME, self.dist)
    }
}

impl<A: PathAlgebra> AlgBlock<A> {
    /// Wraps an element block with an all-empty payload plane — the
    /// correct initial state for an adjacency block, whose finite entries
    /// are all direct edges.
    pub fn from_dist(dist: ElemBlock<A::Semi>) -> Self {
        let pay = PayBlock::filled(dist.side(), A::empty_payload());
        AlgBlock { dist, pay }
    }

    /// Side length `b`.
    #[inline(always)]
    pub fn side(&self) -> usize {
        self.dist.side()
    }

    /// The element (distance/capacity/reachability) block.
    #[inline(always)]
    pub fn dist(&self) -> &ElemBlock<A::Semi> {
        &self.dist
    }

    /// Mutable access to the element block (tests and adapters).
    #[inline(always)]
    pub fn dist_mut(&mut self) -> &mut ElemBlock<A::Semi> {
        &mut self.dist
    }

    /// The payload plane (the parent block, for tracking algebras).
    #[inline(always)]
    pub fn via(&self) -> &PayBlock<A::Payload> {
        &self.pay
    }

    /// Mutable access to the payload plane (tests and adapters).
    #[inline(always)]
    pub fn via_mut(&mut self) -> &mut PayBlock<A::Payload> {
        &mut self.pay
    }

    /// Splits into the element block and the payload plane.
    pub fn into_parts(self) -> (ElemBlock<A::Semi>, PayBlock<A::Payload>) {
        (self.dist, self.pay)
    }

    /// Transposes both planes. Valid only on symmetric (undirected)
    /// instances — see [`PayBlock::transpose`].
    pub fn transpose(&self) -> Self {
        AlgBlock {
            dist: self.dist.transpose(),
            pay: self.pay.transpose(),
        }
    }

    /// Combined in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.dist.size_bytes() + self.pay.size_bytes()
    }

    /// Serializes both planes to the fixed-width wire format: a
    /// little-endian `u64` side length, the element plane, then the
    /// payload plane (zero bytes for `()` payloads). Bit-exact for
    /// floats — `NaN` payloads and `-0.0` survive unchanged — which is
    /// what makes checkpoint/resume reproduce an uninterrupted solve
    /// exactly.
    pub fn to_wire_bytes(&self) -> bytes::Bytes {
        use crate::serialize::Wire;
        let b = self.side();
        let mut buf = bytes::BytesMut::with_capacity(
            8 + b * b * (<Elem<A> as Wire>::WIDTH + <A::Payload as Wire>::WIDTH),
        );
        bytes::BufMut::put_u64_le(&mut buf, b as u64);
        crate::serialize::encode_plane(self.dist.data(), &mut buf);
        crate::serialize::encode_plane(self.pay.data(), &mut buf);
        buf.freeze()
    }

    /// Decodes both planes from the wire format of
    /// [`AlgBlock::to_wire_bytes`].
    pub fn from_wire_bytes(mut bytes: &[u8]) -> Result<Self, crate::serialize::DecodeError> {
        use crate::serialize::DecodeError;
        if bytes.len() < 8 {
            return Err(DecodeError::Truncated {
                expected: 8,
                actual: bytes.len(),
            });
        }
        let side = bytes::Buf::get_u64_le(&mut bytes);
        if side > crate::serialize::MAX_DIM {
            return Err(DecodeError::BadDimension(side));
        }
        let side = side as usize;
        let elems = crate::serialize::decode_plane::<Elem<A>>(&mut bytes, side * side)?;
        let pays = crate::serialize::decode_plane::<A::Payload>(&mut bytes, side * side)?;
        let mut blk = Self::from_dist(ElemBlock::from_vec(side, elems));
        blk.pay.data_mut().copy_from_slice(&pays);
        Ok(blk)
    }

    /// Pure product `a ⊗ b` (both plain element blocks): returns a fresh
    /// record whose payloads are the winning global `k`s.
    ///
    /// The result is **unseeded** (all-`0̄`): per the seeding contract in
    /// [`crate::parent`], the caller must eventually `⊕`-merge it with a
    /// seeded estimate of the same cells (as the repeated-squaring reduce
    /// does) when the index ranges overlap.
    pub fn min_plus_product(
        kernel: MinPlusKernel,
        a: &ElemBlock<A::Semi>,
        b: &ElemBlock<A::Semi>,
        offsets: Offsets,
    ) -> Self {
        let mut out = Self::from_dist(ElemBlock::zeros(a.side()));
        out.min_plus_into_self(kernel, a, b, offsets);
        out
    }

    /// Fold `self = self ⊕ (a ⊗ b)` — the Phase-3 update of the blocked
    /// solvers. `a` and `b` are plain element blocks (staged copies);
    /// only `self` carries payloads.
    pub fn min_plus_into_self(
        &mut self,
        kernel: MinPlusKernel,
        a: &ElemBlock<A::Semi>,
        b: &ElemBlock<A::Semi>,
        offsets: Offsets,
    ) {
        let n = self.side();
        assert_eq!(n, a.side());
        assert_eq!(n, b.side());
        A::fold_product(
            kernel,
            a.data(),
            b.data(),
            self.dist.data_mut(),
            self.pay.data_mut(),
            n,
            offsets,
        );
    }

    /// `self = self ⊕ (self ⊗ other)` (pivot-column update), built in
    /// scratch and folded in under strict improvement, so a tie never
    /// replaces an established payload.
    pub fn min_plus_assign(
        &mut self,
        kernel: MinPlusKernel,
        other: &ElemBlock<A::Semi>,
        offsets: Offsets,
    ) {
        let n = self.side();
        assert_eq!(n, other.side());
        A::product_assign(
            kernel,
            self.dist.data_mut(),
            self.pay.data_mut(),
            other.data(),
            n,
            offsets,
        );
    }

    /// `self = self ⊕ (other ⊗ self)` (pivot-row update), the left-operand
    /// mirror of [`AlgBlock::min_plus_assign`].
    pub fn min_plus_left_assign(
        &mut self,
        kernel: MinPlusKernel,
        other: &ElemBlock<A::Semi>,
        offsets: Offsets,
    ) {
        let n = self.side();
        assert_eq!(n, other.side());
        A::product_left_assign(
            kernel,
            self.dist.data_mut(),
            self.pay.data_mut(),
            other.data(),
            n,
            offsets,
        );
    }

    /// Element-wise join: cells where `other` strictly improves take
    /// `other`'s element *and* payload (the paper's `MatMin`, used by the
    /// repeated-squaring reduce).
    pub fn mat_min_assign(&mut self, other: &AlgBlock<A>) {
        assert_eq!(self.side(), other.side(), "block sides must match");
        A::join(
            self.dist.data_mut(),
            self.pay.data_mut(),
            other.dist.data(),
            other.pay.data(),
        );
    }

    /// In-place closure of a diagonal block whose row/column `0` is global
    /// vertex `diag_offset` (Floyd-Warshall for tropical algebras).
    pub fn floyd_warshall_in_place(&mut self, diag_offset: usize) {
        let n = self.side();
        A::closure_in_place(self.dist.data_mut(), self.pay.data_mut(), n, diag_offset);
    }

    /// Rank-1 update through global pivot `k_global` (the paper's
    /// `FloydWarshallUpdate`).
    pub fn fw_update_outer(&mut self, col_i: &[Elem<A>], col_j: &[Elem<A>], k_global: usize) {
        let n = self.side();
        A::rank1_update(
            self.dist.data_mut(),
            self.pay.data_mut(),
            col_i,
            col_j,
            n,
            k_global,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parent::NO_VIA;

    fn path4() -> Block {
        // 0 -1- 1 -1- 2 -1- 3 (identity diagonal).
        let mut a = Block::identity(4);
        for i in 0..3 {
            a.set(i, i + 1, 1.0);
            a.set(i + 1, i, 1.0);
        }
        a
    }

    #[test]
    fn from_dist_has_no_vias() {
        let t = TrackedBlock::from_dist(path4());
        assert_eq!(t.via().count_tracked(), 0);
        assert_eq!(t.dist().get(0, 1), 1.0);
    }

    #[test]
    fn fw_records_interior_vertices() {
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(0);
        assert_eq!(t.dist().get(0, 3), 3.0);
        // The via of (0, 3) must be an interior vertex: 1 or 2.
        let v = t.via().get(0, 3);
        assert!(v == 1 || v == 2, "via(0,3) = {v}");
        // Direct edges keep NO_VIA.
        assert_eq!(t.via().get(0, 1), NO_VIA);
        assert_eq!(t.via().get(0, 0), NO_VIA);
    }

    #[test]
    fn fw_offset_shifts_vias_globally() {
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(100);
        let v = t.via().get(0, 3);
        assert!(v == 101 || v == 102, "via must be global, got {v}");
    }

    const O0: Offsets = Offsets {
        k: 0,
        row: 0,
        col: 0,
    };

    #[test]
    fn seeded_assign_matches_untracked_distances() {
        let a = path4();
        let b = path4();
        for kernel in [
            MinPlusKernel::Auto,
            MinPlusKernel::Naive,
            MinPlusKernel::Branchless,
            MinPlusKernel::Tiled,
            MinPlusKernel::Packed,
            MinPlusKernel::Parallel,
        ] {
            let mut t = TrackedBlock::from_dist(a.clone());
            t.min_plus_assign(kernel, &b, O0);
            let mut want = a.clone();
            want.min_plus_assign(&b);
            assert_eq!(t.dist(), &want, "kernel {kernel:?}");
            // (0,2) closes through 1.
            assert_eq!(t.via().get(0, 2), 1, "kernel {kernel:?}");
            // The direct edge keeps NO_VIA.
            assert_eq!(t.via().get(0, 1), NO_VIA, "kernel {kernel:?}");
        }
    }

    #[test]
    fn unseeded_product_skips_degenerate_terms_and_merge_recovers_them() {
        // Unseeded product of a block against itself: the k == i and
        // k == j terms (through exact-zero diagonal cells) would record
        // vias the path expansion cannot terminate on; the guards must
        // drop them, and min-merging with the seeded estimate (the
        // repeated-squaring reduce shape) must recover the full result.
        let a = path4();
        let prod = TrackedBlock::min_plus_product(MinPlusKernel::Naive, &a, &a, O0);
        for i in 0..4 {
            for j in 0..4 {
                let v = prod.via().get(i, j);
                assert!(
                    v == NO_VIA || (v as usize != i && v as usize != j),
                    "degenerate via {v} at ({i},{j})"
                );
            }
        }
        let mut merged = TrackedBlock::from_dist(a.clone());
        merged.mat_min_assign(&prod);
        let mut want = a.clone();
        want.mat_min_assign(&a.min_plus(&a));
        assert_eq!(merged.dist(), &want);
        assert_eq!(merged.dist().get(0, 2), 2.0);
    }

    #[test]
    fn assign_folds_under_strict_less() {
        // min_plus_assign must not replace the via when the product only
        // ties the current distance.
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(0);
        let before = t.clone();
        // Squaring a closed block changes nothing.
        t.min_plus_assign(MinPlusKernel::Auto, &before.dist().clone(), O0);
        assert_eq!(t, before);
    }

    #[test]
    fn left_and_right_assign_match_manual_products() {
        let a = path4();
        let mut closed = a.clone();
        closed.floyd_warshall_in_place();

        let mut right = TrackedBlock::from_dist(a.clone());
        right.min_plus_assign(MinPlusKernel::Auto, &closed, O0);
        let mut manual = a.clone();
        manual.min_plus_assign(&closed);
        assert_eq!(right.dist(), &manual);

        let mut left = TrackedBlock::from_dist(a.clone());
        left.min_plus_left_assign(MinPlusKernel::Auto, &closed, O0);
        let mut manual = a.clone();
        manual.min_plus_left_assign(&closed);
        assert_eq!(left.dist(), &manual);
    }

    #[test]
    fn mat_min_takes_strictly_smaller_with_via() {
        let mut x = TrackedBlock::from_dist(Block::filled(2, 5.0));
        let mut y = TrackedBlock::from_dist(Block::filled(2, 5.0));
        y.dist_mut().set(0, 1, 3.0);
        y.via_mut().set(0, 1, 7);
        y.dist_mut().set(1, 0, 5.0); // tie: must NOT move the via
        y.via_mut().set(1, 0, 9);
        x.mat_min_assign(&y);
        assert_eq!(x.dist().get(0, 1), 3.0);
        assert_eq!(x.via().get(0, 1), 7);
        assert_eq!(x.via().get(1, 0), NO_VIA, "tie must keep the old via");
    }

    #[test]
    fn fw_update_outer_tracks_pivot() {
        let mut t = TrackedBlock::from_dist(Block::filled(2, 10.0));
        t.fw_update_outer(&[1.0, 4.0], &[2.0, 3.0], 42);
        assert_eq!(t.dist().get(0, 0), 3.0);
        assert_eq!(t.via().get(0, 0), 42);
        // No improvement, no via.
        let before = t.clone();
        t.fw_update_outer(&[INF, INF], &[0.0, 0.0], 7);
        assert_eq!(t, before);
    }

    #[test]
    fn transpose_mirrors_both_halves() {
        let mut t = TrackedBlock::from_dist(path4());
        t.floyd_warshall_in_place(0);
        let tt = t.transpose();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(tt.dist().get(i, j), t.dist().get(j, i));
                assert_eq!(tt.via().get(i, j), t.via().get(j, i));
            }
        }
    }

    #[test]
    fn tropical_algblock_matches_plain_block_bit_exactly() {
        // The Tropical algebra must be indistinguishable from the plain
        // f64 fast path on every entry point.
        let a = path4();
        let mut closed = a.clone();
        closed.floyd_warshall_in_place();

        let mut alg = AlgBlock::<Tropical>::from_dist(a.clone());
        alg.floyd_warshall_in_place(0);
        assert_eq!(alg.dist(), &closed);

        let mut alg = AlgBlock::<Tropical>::from_dist(a.clone());
        alg.min_plus_assign(MinPlusKernel::Auto, &closed, O0);
        let mut plain = a.clone();
        plain.min_plus_assign(&closed);
        assert_eq!(alg.dist(), &plain);

        let mut alg = AlgBlock::<Tropical>::from_dist(a.clone());
        alg.min_plus_into_self(MinPlusKernel::Auto, &closed, &closed, O0);
        let mut plain = a.clone();
        plain.min_plus_into_self(&closed, &closed);
        assert_eq!(alg.dist(), &plain);
    }

    #[test]
    fn widest_closure_picks_fattest_route() {
        // 0 -5- 1 -3- 2 with a thin 0 -1- 2 pipe.
        let mut blk = ElemBlock::<BottleneckF64>::identity(3);
        blk.set(0, 1, 5.0);
        blk.set(1, 0, 5.0);
        blk.set(1, 2, 3.0);
        blk.set(2, 1, 3.0);
        blk.set(0, 2, 1.0);
        blk.set(2, 0, 1.0);
        let mut alg = AlgBlock::<Widest>::from_dist(blk);
        alg.floyd_warshall_in_place(0);
        assert_eq!(alg.dist().get(0, 2), 3.0);
        assert_eq!(alg.dist().get(2, 0), 3.0);
    }

    #[test]
    fn reachability_closure_is_transitive() {
        let mut blk = ElemBlock::<BoolSemiring>::identity(4);
        blk.set(0, 1, true);
        blk.set(1, 2, true);
        let mut alg = AlgBlock::<Reachability>::from_dist(blk);
        alg.floyd_warshall_in_place(0);
        assert!(alg.dist().get(0, 2));
        assert!(!alg.dist().get(2, 0));
        assert!(!alg.dist().get(0, 3));
    }

    #[test]
    fn tracked_widest_records_interior_vertex_and_matches_untracked() {
        // 0 -5- 1 -3- 2 with a thin 0 -1- 2 pipe: widest 0↔2 route is via 1.
        let mut blk = ElemBlock::<BottleneckF64>::identity(3);
        blk.set(0, 1, 5.0);
        blk.set(1, 0, 5.0);
        blk.set(1, 2, 3.0);
        blk.set(2, 1, 3.0);
        blk.set(0, 2, 1.0);
        blk.set(2, 0, 1.0);
        let mut plain = AlgBlock::<Widest>::from_dist(blk.clone());
        plain.floyd_warshall_in_place(0);
        let mut tracked = AlgBlock::<TrackedWidest>::from_dist(blk);
        tracked.floyd_warshall_in_place(0);
        assert_eq!(tracked.dist().data(), plain.dist().data());
        assert_eq!(tracked.dist().get(0, 2), 3.0);
        assert_eq!(tracked.via().get(0, 2), 1);
        assert_eq!(tracked.via().get(0, 1), NO_VIA, "direct edge keeps NO_VIA");
    }

    #[test]
    fn tracked_reachability_records_interior_vertex() {
        let mut blk = ElemBlock::<BoolSemiring>::identity(4);
        blk.set(0, 1, true);
        blk.set(1, 0, true);
        blk.set(1, 2, true);
        blk.set(2, 1, true);
        let mut tracked = AlgBlock::<TrackedReachability>::from_dist(blk);
        tracked.floyd_warshall_in_place(0);
        assert!(tracked.dist().get(0, 2));
        assert_eq!(tracked.via().get(0, 2), 1);
        assert_eq!(tracked.via().get(0, 1), NO_VIA);
        assert!(!tracked.dist().get(0, 3));
        assert_eq!(tracked.via().get(0, 3), NO_VIA);
    }

    #[test]
    fn generic_default_hooks_match_tracked_kernels_on_tropical() {
        // Run the trait's *default* loops over a tracked-like shim algebra
        // and compare with the specialized tracked kernels: same
        // distances, same strict-< via discipline.
        #[derive(Clone, Copy)]
        struct SlowTracked;
        impl PathAlgebra for SlowTracked {
            type Semi = TropicalF64;
            type Payload = u32;
            const TRACKS: bool = true;
            const NAME: &'static str = "tropical+argmin (generic loops)";
            fn empty_payload() -> u32 {
                NO_VIA
            }
            fn payload_for(k_global: usize) -> u32 {
                k_global as u32
            }
            // No overrides: exercise every default body.
        }

        let a = path4();
        let o = Offsets {
            k: 8,
            row: 0,
            col: 4,
        };
        let mut fast = TrackedBlock::from_dist(a.clone());
        fast.min_plus_into_self(MinPlusKernel::Naive, &a, &a, o);
        let mut slow = AlgBlock::<SlowTracked>::from_dist(a.clone());
        slow.min_plus_into_self(MinPlusKernel::Naive, &a, &a, o);
        assert_eq!(fast.dist(), slow.dist());
        assert_eq!(fast.via().data(), slow.via().data());

        let mut fast = TrackedBlock::from_dist(a.clone());
        fast.floyd_warshall_in_place(12);
        let mut slow = AlgBlock::<SlowTracked>::from_dist(a.clone());
        slow.floyd_warshall_in_place(12);
        assert_eq!(fast.dist(), slow.dist());
        assert_eq!(fast.via().data(), slow.via().data());
    }

    fn random_cap_block(b: usize, seed: u64, density: f64) -> ElemBlock<BottleneckF64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        ElemBlock::from_fn(b, |i, j| {
            if i == j {
                INF
            } else if next() < density {
                1.0 + next() * 9.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn tracked_widest_distances_match_packed_widest() {
        // The degenerate-term audit for the (max, min) algebra: the
        // tracked generic loops and the packed untracked engine must
        // agree bit-exactly on capacities at a packed-tier side.
        for &b in &[7usize, 64, 129] {
            let caps = random_cap_block(b, 77, 0.3);
            let mut packed = AlgBlock::<Widest>::from_dist(caps.clone());
            packed.min_plus_assign(MinPlusKernel::Packed, &caps, O0);
            let mut tracked = AlgBlock::<TrackedWidest>::from_dist(caps.clone());
            tracked.min_plus_assign(MinPlusKernel::Naive, &caps, O0);
            assert_eq!(packed.dist().data(), tracked.dist().data(), "b={b}");

            let mut packed = AlgBlock::<Widest>::from_dist(caps.clone());
            packed.floyd_warshall_in_place(0);
            let mut tracked = AlgBlock::<TrackedWidest>::from_dist(caps);
            tracked.floyd_warshall_in_place(0);
            assert_eq!(packed.dist().data(), tracked.dist().data(), "fw b={b}");
        }
    }

    #[test]
    fn tracked_widest_tie_keeps_established_via() {
        // Reapplying a closed block only produces ties (max is
        // idempotent): neither widths nor vias may move.
        let caps = random_cap_block(16, 5, 0.4);
        let mut t = AlgBlock::<TrackedWidest>::from_dist(caps);
        t.floyd_warshall_in_place(0);
        let before = t.clone();
        let closed = before.dist().clone();
        t.min_plus_assign(MinPlusKernel::Auto, &closed, O0);
        assert_eq!(t, before, "tie via product must not rewrite vias");
        let mut again = before.clone();
        again.floyd_warshall_in_place(0);
        assert_eq!(again, before, "re-closing must be a fixpoint");
    }

    #[test]
    fn tracked_widest_join_tie_keeps_old_via() {
        let mut x = AlgBlock::<TrackedWidest>::from_dist(ElemBlock::filled(2, 5.0));
        let mut y = AlgBlock::<TrackedWidest>::from_dist(ElemBlock::filled(2, 5.0));
        y.dist_mut().set(0, 1, 7.0); // strictly wider: must take value + via
        y.via_mut().set(0, 1, 3);
        y.via_mut().set(1, 0, 9); // tie on 5.0: must NOT move the via
        x.mat_min_assign(&y);
        assert_eq!(x.dist().get(0, 1), 7.0);
        assert_eq!(x.via().get(0, 1), 3);
        assert_eq!(x.via().get(1, 0), NO_VIA, "tie must keep the old via");
    }

    #[test]
    fn tracked_widest_unseeded_product_skips_degenerate_terms() {
        // Same seeding contract as tropical (crate::parent): an unseeded
        // product must never record a via equal to the target's own row
        // or column vertex, and merging with the seeded estimate recovers
        // the two-hop widths.
        let caps = random_cap_block(8, 9, 0.4);
        let prod =
            AlgBlock::<TrackedWidest>::min_plus_product(MinPlusKernel::Naive, &caps, &caps, O0);
        for i in 0..8 {
            for j in 0..8 {
                let v = prod.via().get(i, j);
                assert!(
                    v == NO_VIA || (v as usize != i && v as usize != j),
                    "degenerate via {v} at ({i},{j})"
                );
            }
        }
        let mut merged = AlgBlock::<TrackedWidest>::from_dist(caps.clone());
        merged.mat_min_assign(&prod);
        let mut want = AlgBlock::<Widest>::from_dist(caps.clone());
        want.min_plus_assign(MinPlusKernel::Auto, &caps, O0);
        assert_eq!(merged.dist().data(), want.dist().data());
    }

    #[test]
    fn widest_algblock_hooks_match_generic_shim() {
        // The specialized (max, min) hooks must be bit-exact with the
        // trait's generic default loops on every entry point.
        #[derive(Clone, Copy)]
        struct SlowWidest;
        impl PathAlgebra for SlowWidest {
            type Semi = BottleneckF64;
            type Payload = ();
            const TRACKS: bool = false;
            const NAME: &'static str = "bottleneck (generic loops)";
            fn empty_payload() {}
            fn payload_for(_k_global: usize) {}
        }

        for &b in &[7usize, 64, 129] {
            let caps = random_cap_block(b, 33, 0.35);
            let other = random_cap_block(b, 34, 0.35);

            let mut fast = AlgBlock::<Widest>::from_dist(caps.clone());
            fast.min_plus_assign(MinPlusKernel::Auto, &other, O0);
            let mut slow = AlgBlock::<SlowWidest>::from_dist(caps.clone());
            slow.min_plus_assign(MinPlusKernel::Naive, &other, O0);
            assert_eq!(fast.dist().data(), slow.dist().data(), "assign b={b}");

            let mut fast = AlgBlock::<Widest>::from_dist(caps.clone());
            fast.floyd_warshall_in_place(0);
            let mut slow = AlgBlock::<SlowWidest>::from_dist(caps.clone());
            slow.floyd_warshall_in_place(0);
            assert_eq!(fast.dist().data(), slow.dist().data(), "fw b={b}");
        }
    }

    #[test]
    fn reachability_algblock_hooks_match_generic_shim() {
        #[derive(Clone, Copy)]
        struct SlowReach;
        impl PathAlgebra for SlowReach {
            type Semi = BoolSemiring;
            type Payload = ();
            const TRACKS: bool = false;
            const NAME: &'static str = "boolean (generic loops)";
            fn empty_payload() {}
            fn payload_for(_k_global: usize) {}
        }

        for &b in &[7usize, 63, 64, 65, 129] {
            let adj =
                ElemBlock::<BoolSemiring>::from_fn(b, |i, j| i == j || (i * 31 + j * 17) % 13 == 0);
            let other =
                ElemBlock::<BoolSemiring>::from_fn(b, |i, j| i == j || (i * 7 + j * 5) % 11 == 0);

            let mut fast = AlgBlock::<Reachability>::from_dist(adj.clone());
            fast.min_plus_assign(MinPlusKernel::Auto, &other, O0);
            let mut slow = AlgBlock::<SlowReach>::from_dist(adj.clone());
            slow.min_plus_assign(MinPlusKernel::Naive, &other, O0);
            assert_eq!(fast.dist().data(), slow.dist().data(), "assign b={b}");

            let mut fast = AlgBlock::<Reachability>::from_dist(adj.clone());
            fast.floyd_warshall_in_place(0);
            let mut slow = AlgBlock::<SlowReach>::from_dist(adj.clone());
            slow.floyd_warshall_in_place(0);
            assert_eq!(fast.dist().data(), slow.dist().data(), "fw b={b}");
        }
    }
}
