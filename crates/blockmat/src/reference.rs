//! Whole-matrix reference algorithms: slow, obviously-correct versions of
//! the operations the solvers distribute. Used as independent oracles in
//! tests and available to users for small instances.

use crate::{Matrix, INF};

impl Matrix {
    /// Whole-matrix min-plus product `self ⊗ other` (naive `O(n³)`).
    pub fn min_plus(&self, other: &Matrix) -> Matrix {
        let n = self.order();
        assert_eq!(n, other.order(), "matrix orders must match");
        let mut out = Matrix::filled(n, INF);
        for i in 0..n {
            for k in 0..n {
                let aik = self.get(i, k);
                if aik == INF {
                    continue;
                }
                for j in 0..n {
                    let v = aik + other.get(k, j);
                    if v < out.get(i, j) {
                        out.set(i, j, v);
                    }
                }
            }
        }
        out
    }

    /// Element-wise minimum with `other`, in place.
    pub fn mat_min_assign(&mut self, other: &Matrix) {
        let n = self.order();
        assert_eq!(n, other.order(), "matrix orders must match");
        for i in 0..n {
            for j in 0..n {
                let o = other.get(i, j);
                if o < self.get(i, j) {
                    self.set(i, j, o);
                }
            }
        }
    }

    /// APSP by repeated squaring — the whole-matrix reference of the
    /// paper's Algorithm 1 (`⌈log₂ n⌉` squarings of `A ← min(A, A ⊗ A)`).
    pub fn closure_by_squaring(&self) -> Matrix {
        let n = self.order();
        let mut a = self.clone();
        let squarings = (n.max(2) as f64).log2().ceil() as usize;
        for _ in 0..squarings {
            let sq = a.min_plus(&a);
            a.mat_min_assign(&sq);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_adjacency(n: usize, seed: u64, density: f64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut m = Matrix::identity(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if next() < density {
                    let w = 1.0 + (next() * 9.0 * 64.0).round() / 64.0;
                    m.set(i, j, w);
                    m.set(j, i, w);
                }
            }
        }
        m
    }

    #[test]
    fn squaring_reference_equals_floyd_warshall() {
        for seed in [1u64, 2, 3, 4] {
            let a = random_adjacency(30, seed, 0.15);
            let by_squaring = a.closure_by_squaring();
            let mut by_fw = a.clone();
            by_fw.floyd_warshall_in_place();
            assert!(
                by_squaring.approx_eq(&by_fw, 1e-12).is_ok(),
                "seed {seed}: repeated squaring diverged from FW"
            );
        }
    }

    #[test]
    fn min_plus_identity_law() {
        let a = random_adjacency(12, 7, 0.4);
        let e = Matrix::identity(12);
        assert_eq!(a.min_plus(&e), a);
        assert_eq!(e.min_plus(&a), a);
    }

    #[test]
    fn min_plus_associativity() {
        let a = random_adjacency(10, 11, 0.5);
        let b = random_adjacency(10, 12, 0.5);
        let c = random_adjacency(10, 13, 0.5);
        let lhs = a.min_plus(&b).min_plus(&c);
        let rhs = a.min_plus(&b.min_plus(&c));
        assert!(lhs.approx_eq(&rhs, 1e-12).is_ok());
    }

    #[test]
    fn single_squaring_bounds_two_hops() {
        // A ⊗ A covers exactly paths of ≤ 2 edges.
        let mut a = Matrix::identity(4);
        for (i, j) in [(0usize, 1usize), (1, 2), (2, 3)] {
            a.set(i, j, 1.0);
            a.set(j, i, 1.0);
        }
        let sq = a.min_plus(&a);
        assert_eq!(sq.get(0, 2), 2.0);
        assert_eq!(sq.get(0, 3), INF); // 3 hops: not yet
    }
}
