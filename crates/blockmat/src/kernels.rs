//! Low-level compute kernels: the bare-metal analogue of the paper's
//! NumPy / SciPy / Numba offloads, rebuilt as a small GEMM-style engine.
//!
//! Five implementations of the min-plus product are provided, selected
//! through [`MinPlusKernel`] / [`select`]:
//!
//! * [`min_plus_into_naive`] — textbook `i,k,j` loop; the correctness oracle,
//! * [`min_plus_into_branchless`] — same loop with a branchless
//!   `f64::min` inner body (maps to `vminpd`); the small-block fast path,
//! * [`min_plus_into_tiled`] — the legacy cache-tiled branchy kernel, kept
//!   as the pre-engine ablation baseline,
//! * [`min_plus_into_packed`] — register-blocked micro-kernel over a packed
//!   B-panel (the default for mid/large blocks),
//! * [`min_plus_into_parallel`] — rayon-parallel row bands, each running
//!   the packed micro-kernel.
//!
//! # Why branchless `min` is safe here
//!
//! The tropical semiring over `[0, ∞]` never produces NaN: weights are
//! non-negative, `INF + x = INF`, and `-∞` cannot appear, so `a + b` is
//! always ordered and `f64::min` is exact. Replacing the branchy
//! `if v < *cv { *cv = v }` (a conditional *store*, which blocks LLVM's
//! auto-vectorizer) with `cv.min(v)` (an unconditional store of a `min`)
//! lets the inner loops compile to packed `vminpd`/`vaddpd`. The kernels
//! are bit-exact against the naive oracle because `min` over a set of
//! non-NaN, non-`-0.0` values is order-independent.
//!
//! All product kernels *fold into* `c`: `c = min(c, a ⊗ b)`, matching the
//! `MatProd`-then-`MatMin` composition the paper's algorithms rely on.
//! Passing an all-[`INF`] `c` yields the pure product.
//!
//! # Zero-allocation hot paths
//!
//! The engine keeps three thread-local scratch pools (product scratch,
//! packed B-panels, Floyd-Warshall pivot rows) so that steady-state solver
//! iterations perform no heap allocation: see [`with_scratch`] and the
//! fold entry points on [`Block`] (`min_plus_into_self`,
//! `min_plus_assign`, `min_plus_left_assign`).

use crate::block::BitBlock;
use crate::parent::{Offsets, ParentBlock, NO_VIA};
use crate::{Block, INF};
use rayon::prelude::*;
use std::cell::RefCell;

/// Tile side for the cache-blocked kernels. 64×64 f64 tiles (32 KiB) fit L1
/// on the paper's Skylake nodes and on most contemporary x86-64 cores.
pub const TILE: usize = 64;

/// Register-block rows of the packed micro-kernel.
const MR: usize = 4;
/// Register-block columns of the packed micro-kernel (two AVX2 `f64×4`
/// vectors). `MR × NR` accumulators fill 8 of the 16 ymm registers.
const NR: usize = 8;

/// Block side below which packing overhead outweighs its benefit and the
/// plain branchless kernel wins (measured crossover on AVX2 hosts:
/// branchless and packed tie at side 128, branchless leads below).
const SMALL_SIDE: usize = 128;

/// Block side at or above which the auto-dispatch goes parallel (the
/// paper's per-executor multicore BLAS regime, `b ≈ 1024–2048`).
const PARALLEL_SIDE: usize = 1024;

/// Branchless tropical minimum — an alias of [`crate::tropical_add`],
/// named for what it does to the inner loops.
///
/// The select form (`if a < b { a } else { b }`) is used rather than
/// `f64::min` deliberately: `f64::min` is IEEE `minNum`, whose NaN
/// handling costs LLVM a compare+blend on top of `vminpd`, while the
/// select is *exactly* the x86 `minpd(b, a)` semantics and compiles to
/// the single instruction — correct here because tropical arithmetic over
/// `[0, ∞]` never produces NaN (`INF + x = INF`, and `-∞` cannot appear).
#[inline(always)]
pub(crate) fn tmin(a: f64, b: f64) -> f64 {
    crate::tropical_add(a, b)
}

/// Branchless bottleneck "addition" (`max`) — the select form compiles to
/// a single `vmaxpd`, exactly as [`tmin`] compiles to `vminpd`. Safe for
/// the same reason: capacities live in `[0, ∞]` and neither `min` nor
/// `max` of such values can produce NaN.
#[inline(always)]
pub(crate) fn bmax(a: f64, b: f64) -> f64 {
    if a < b {
        b
    } else {
        a
    }
}

/// Branchless bottleneck "multiplication" (`min`) — the capacity of a
/// concatenated route is its thinnest pipe.
#[inline(always)]
pub(crate) fn bmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Which min-plus product implementation to run.
///
/// `Auto` resolves by block side via [`select`]; the explicit variants are
/// for benchmarks, ablations, and `SolverConfig` overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinPlusKernel {
    /// Choose by block side: branchless below 128, packed up to 1024,
    /// parallel beyond.
    #[default]
    Auto,
    /// Textbook `i,k,j` triple loop (the correctness oracle).
    Naive,
    /// Branchless `i,k,j` loop (`f64::min` inner body).
    Branchless,
    /// Legacy cache-tiled branchy kernel (pre-engine baseline).
    Tiled,
    /// Register-blocked micro-kernel over packed B-panels.
    Packed,
    /// Rayon-parallel row bands over the packed micro-kernel.
    Parallel,
}

/// Resolves the kernel the auto-dispatch runs for a given block side.
pub fn select(side: usize) -> MinPlusKernel {
    if side < SMALL_SIDE {
        MinPlusKernel::Branchless
    } else if side < PARALLEL_SIDE {
        MinPlusKernel::Packed
    } else {
        MinPlusKernel::Parallel
    }
}

/// Resolves the kernel tier the *tracked* (argmin-recording) dispatch
/// runs for a given block side.
///
/// Tracking an argmin forces a conditional store per improvement, which
/// defeats the packed micro-kernel's register accumulation (packing `u32`
/// argmins alongside the `f64` accumulators costs more than it saves), so
/// the tracked engine has no packed/parallel sibling and falls back to
/// simpler loops. Between those, `bench_kernels` measures the plain
/// row-streaming loop ahead of the cache-tiled one at every side ≥ 128
/// (the branchy argmin update, not memory traffic, is the bottleneck) and
/// within ~10% below it, so the auto-dispatch always picks the
/// row-streaming loop; the tiled tracked loop remains reachable as an
/// explicit ablation choice.
pub fn select_tracked(_side: usize) -> MinPlusKernel {
    MinPlusKernel::Branchless
}

/// Resolves the kernel tier the *(max, min)* bottleneck dispatch runs for
/// a given block side.
///
/// `vmaxpd`/`vminpd` are instruction-for-instruction symmetric to the
/// tropical `vminpd`/`vaddpd` pair, so the crossovers match [`select`]:
/// branchless below 128, the packed register-blocked micro-kernel up to
/// 1024, rayon-parallel row bands beyond. (There is no tiled *(max, min)*
/// twin — the legacy tiled kernel predates the engine and was never worth
/// porting; an explicit `Tiled` pin runs the branchless loop.)
pub fn select_maxmin(side: usize) -> MinPlusKernel {
    if side < SMALL_SIDE {
        MinPlusKernel::Branchless
    } else if side < PARALLEL_SIDE {
        MinPlusKernel::Packed
    } else {
        MinPlusKernel::Parallel
    }
}

/// Which boolean (reachability) product implementation to run.
///
/// Unlike the `f64` algebras there is no size crossover to arbitrate: the
/// bitset kernel packs 64 reachability bits per `u64` word, so the `(∨, ∧)`
/// product is a word-wide `|`/`&` that beats the element loop at *every*
/// side. The fallback loop remains reachable as the correctness oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BooleanKernel {
    /// Generic element-at-a-time fallback loop (the correctness oracle).
    Fallback,
    /// Word-packed bitset kernel: 64 booleans per `u64`, `|`/`&` products.
    #[default]
    Bitset,
}

/// Resolves the kernel the boolean (reachability) auto-dispatch runs for a
/// given block side: the bitset kernel, at every side.
pub fn select_boolean(_side: usize) -> BooleanKernel {
    BooleanKernel::Bitset
}

// ---------------------------------------------------------------------------
// Thread-local scratch pools (zero steady-state allocation)
// ---------------------------------------------------------------------------

thread_local! {
    /// Product scratch for the `Block` fold entry points.
    static SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Packed B-panel storage for the packed/parallel kernels.
    static PACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Pivot-row copy for in-place Floyd-Warshall.
    static KROW: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Via scratch for the tracked fold entry points.
    static VIA_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

fn with_pool<R>(
    pool: &'static std::thread::LocalKey<RefCell<Vec<f64>>>,
    len: usize,
    f: impl FnOnce(&mut [f64]) -> R,
) -> R {
    pool.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, INF);
            }
            f(&mut buf[..len])
        }
        // Reentrant use (shouldn't happen, but stay correct): fall back to
        // a one-off allocation rather than panicking on the double borrow.
        Err(_) => f(&mut vec![INF; len]),
    })
}

/// Runs `f` with a thread-local `f64` scratch buffer of at least `len`
/// elements. Contents are **unspecified on entry**; the caller must
/// initialize what it reads. The buffer persists per thread, so repeated
/// same-size calls perform no allocation.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    with_pool(&SCRATCH, len, f)
}

/// The `u32` twin of [`with_scratch`], used for via scratch by the tracked
/// fold entry points. Contents are likewise **unspecified on entry**.
pub fn with_via_scratch<R>(len: usize, f: impl FnOnce(&mut [u32]) -> R) -> R {
    VIA_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, NO_VIA);
            }
            f(&mut buf[..len])
        }
        Err(_) => f(&mut vec![NO_VIA; len]),
    })
}

// ---------------------------------------------------------------------------
// Public Block-level entry points
// ---------------------------------------------------------------------------

/// `c = min(c, a ⊗ b)` with the kernel chosen by [`select`].
pub fn min_plus_into(a: &Block, b: &Block, c: &mut Block) {
    min_plus_into_with(MinPlusKernel::Auto, a, b, c);
}

/// `c = min(c, a ⊗ b)` with an explicit kernel choice.
pub fn min_plus_into_with(kernel: MinPlusKernel, a: &Block, b: &Block, c: &mut Block) {
    let n = a.side();
    assert_eq!(n, b.side());
    assert_eq!(n, c.side());
    min_plus_slices_with(kernel, a.data(), b.data(), c.data_mut(), n);
}

/// Reference `c = min(c, a ⊗ b)`, naive triple loop (`i,k,j` order so the
/// inner loop streams rows of `b` and `c`).
pub fn min_plus_into_naive(a: &Block, b: &Block, c: &mut Block) {
    min_plus_into_with(MinPlusKernel::Naive, a, b, c);
}

/// Branchless `c = min(c, a ⊗ b)`: naive loop order, `f64::min` body.
pub fn min_plus_into_branchless(a: &Block, b: &Block, c: &mut Block) {
    min_plus_into_with(MinPlusKernel::Branchless, a, b, c);
}

/// Legacy cache-tiled `c = min(c, a ⊗ b)` (branchy inner loop).
///
/// Tiles the `k` and `j` loops by [`TILE`] so the working set of the inner
/// kernel stays cache-resident. Kept as the ablation baseline the packed
/// engine is measured against (`cargo bench --bench fig2_kernels`).
pub fn min_plus_into_tiled(a: &Block, b: &Block, c: &mut Block) {
    min_plus_into_with(MinPlusKernel::Tiled, a, b, c);
}

/// Register-blocked `c = min(c, a ⊗ b)` over packed B-panels.
///
/// For each `TILE`-row band of `b`, the band is packed once into
/// `NR`-wide column panels (contiguous per `k`), then `MR × NR`
/// register-resident accumulator blocks sweep the `k` range before folding
/// into `c` — the GEMM treatment applied to *(min, +)*. Rows of `a` whose
/// `k`-segment is entirely [`INF`] skip their micro-kernels (the sparsity
/// fast path that keeps early sparse iterations cheap).
pub fn min_plus_into_packed(a: &Block, b: &Block, c: &mut Block) {
    min_plus_into_with(MinPlusKernel::Packed, a, b, c);
}

/// Rayon-parallel `c = min(c, a ⊗ b)`: rows of `c` are partitioned into
/// bands processed independently (no write sharing, so no synchronization),
/// each running the packed micro-kernel.
pub fn min_plus_into_parallel(a: &Block, b: &Block, c: &mut Block) {
    min_plus_into_with(MinPlusKernel::Parallel, a, b, c);
}

// ---------------------------------------------------------------------------
// Slice-level implementations
// ---------------------------------------------------------------------------

/// Slice-level dispatch: `cd = min(cd, ad ⊗ bd)` over `n × n` row-major
/// buffers. Used by the `Block` fold entry points to run against scratch
/// buffers without constructing a `Block`.
pub(crate) fn min_plus_slices_with(
    kernel: MinPlusKernel,
    ad: &[f64],
    bd: &[f64],
    cd: &mut [f64],
    n: usize,
) {
    let kernel = if kernel == MinPlusKernel::Auto {
        select(n)
    } else {
        kernel
    };
    match kernel {
        MinPlusKernel::Naive => naive_rows(ad, bd, cd, n),
        MinPlusKernel::Branchless => branchless_rows(ad, bd, cd, n),
        MinPlusKernel::Tiled => tiled_rows(ad, bd, cd, n, 0, n),
        MinPlusKernel::Packed => packed_rows(ad, bd, cd, n, 0, n),
        MinPlusKernel::Parallel => parallel_rows(ad, bd, cd, n),
        MinPlusKernel::Auto => unreachable!("Auto resolved above"),
    }
}

fn naive_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize) {
    for i in 0..n {
        for k in 0..n {
            let aik = ad[i * n + k];
            if aik == INF {
                continue;
            }
            let brow = &bd[k * n..k * n + n];
            let crow = &mut cd[i * n..i * n + n];
            for j in 0..n {
                let v = aik + brow[j];
                if v < crow[j] {
                    crow[j] = v;
                }
            }
        }
    }
}

fn branchless_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize) {
    for i in 0..n {
        for k in 0..n {
            let aik = ad[i * n + k];
            if aik == INF {
                continue;
            }
            let brow = &bd[k * n..k * n + n];
            let crow = &mut cd[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = tmin(aik + bv, *cv);
            }
        }
    }
}

/// Legacy tiled kernel over absolute row range `[i_lo, i_hi)` of `c`.
fn tiled_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize, i_lo: usize, i_hi: usize) {
    for kk in (0..n).step_by(TILE) {
        let k_hi = (kk + TILE).min(n);
        for jj in (0..n).step_by(TILE) {
            let j_hi = (jj + TILE).min(n);
            for i in i_lo..i_hi {
                let arow = &ad[i * n..i * n + n];
                let crow = &mut cd[i * n + jj..i * n + j_hi];
                for k in kk..k_hi {
                    let aik = arow[k];
                    if aik == INF {
                        continue;
                    }
                    let brow = &bd[k * n + jj..k * n + j_hi];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        let v = aik + bv;
                        if v < *cv {
                            *cv = v;
                        }
                    }
                }
            }
        }
    }
}

/// The packed register-blocked kernel over rows `[i_lo, i_hi)`. `crows`
/// starts at absolute row `i_lo` (re-based, so parallel bands can pass
/// their disjoint chunks).
fn packed_rows(ad: &[f64], bd: &[f64], crows: &mut [f64], n: usize, i_lo: usize, i_hi: usize) {
    let panels = n.div_ceil(NR);
    with_pool(&PACK, panels * TILE * NR, |bp| {
        for kk in (0..n).step_by(TILE) {
            let k_len = (n - kk).min(TILE);
            pack_panels(bd, bp, n, kk, k_len, panels, INF);
            let mut i = i_lo;
            while i < i_hi {
                let m = (i_hi - i).min(MR);
                // Sparsity fast path: if every `a` row of this block is
                // all-INF over the k-range, no micro-kernel can tighten c.
                let any_finite = (0..m).any(|r| {
                    ad[(i + r) * n + kk..(i + r) * n + kk + k_len]
                        .iter()
                        .any(|v| *v != INF)
                });
                if any_finite {
                    match m {
                        4 => row_block::<4>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                        3 => row_block::<3>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                        2 => row_block::<2>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                        _ => row_block::<1>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                    }
                }
                i += m;
            }
        }
    });
}

/// Packs `b[kk..kk+k_len][0..n]` into `panels` NR-wide column panels:
/// panel `p` holds columns `p*NR..p*NR+NR` with the `NR` entries of each
/// `k` contiguous. Tail columns are padded with `pad` — the algebra's
/// additive identity ([`INF`] for tropical `min`, `0.0` for bottleneck
/// `max`), so padding lanes never win a fold.
fn pack_panels(
    bd: &[f64],
    bp: &mut [f64],
    n: usize,
    kk: usize,
    k_len: usize,
    panels: usize,
    pad: f64,
) {
    for p in 0..panels {
        let j0 = p * NR;
        let w = (n - j0).min(NR);
        let panel = &mut bp[p * k_len * NR..(p + 1) * k_len * NR];
        for k in 0..k_len {
            let src = &bd[(kk + k) * n + j0..(kk + k) * n + j0 + w];
            let dst = &mut panel[k * NR..k * NR + NR];
            dst[..w].copy_from_slice(src);
            for d in dst[w..].iter_mut() {
                *d = pad;
            }
        }
    }
}

/// Runs the `M × NR` micro-kernel for rows `i..i+M` against every packed
/// panel of the current `k`-band, folding the accumulators into `c`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn row_block<const M: usize>(
    ad: &[f64],
    bp: &[f64],
    crows: &mut [f64],
    n: usize,
    i: usize,
    i_lo: usize,
    kk: usize,
    k_len: usize,
    panels: usize,
) {
    let arows: [&[f64]; M] =
        std::array::from_fn(|r| &ad[(i + r) * n + kk..(i + r) * n + kk + k_len]);
    for p in 0..panels {
        let j0 = p * NR;
        let w = (n - j0).min(NR);
        let panel = &bp[p * k_len * NR..(p + 1) * k_len * NR];

        // Accumulate the k-range entirely in registers: M×NR f64 fits the
        // AVX2 register file for M = 4, NR = 8.
        let mut acc = [[INF; NR]; M];
        for k in 0..k_len {
            let bk: &[f64; NR] = panel[k * NR..k * NR + NR].try_into().unwrap();
            for r in 0..M {
                let aik = arows[r][k];
                for c in 0..NR {
                    acc[r][c] = tmin(aik + bk[c], acc[r][c]);
                }
            }
        }
        // Fold into c (only the w real columns of the tail panel).
        for (r, accr) in acc.iter().enumerate() {
            let row0 = (i - i_lo + r) * n + j0;
            let crow = &mut crows[row0..row0 + w];
            for (cv, &av) in crow.iter_mut().zip(accr[..w].iter()) {
                *cv = tmin(av, *cv);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tracked (argmin-recording) kernels
// ---------------------------------------------------------------------------

/// Tracked `c = min(c, a ⊗ b)`: wherever a term `a(i,k) + b(k,j)` wins
/// under strict `<`, `cvia(i,j)` records the **global** id of the winning
/// intermediate vertex, `offsets.k + k`.
///
/// Terms whose global `k` equals the target's global row or column are
/// skipped entirely: they pass through a diagonal cell (exactly `0.0` on
/// APSP inputs), so they only restate an estimate of `(i, j)` one operand
/// already holds, and recording them would produce a degenerate via the
/// path expansion cannot terminate on. See the `parent` module docs for
/// the seeding contract this relies on.
///
/// Explicit [`MinPlusKernel`] choices map onto the tracked tiers:
/// `Naive`/`Branchless` run the row-streaming loop, everything else the
/// cache-tiled loop ([`select_tracked`] explains why packed/parallel have
/// no tracked sibling).
pub fn min_plus_into_tracked_with(
    kernel: MinPlusKernel,
    a: &Block,
    b: &Block,
    c: &mut Block,
    cvia: &mut ParentBlock,
    offsets: Offsets,
) {
    let n = a.side();
    assert_eq!(n, b.side());
    assert_eq!(n, c.side());
    assert_eq!(n, cvia.side());
    min_plus_slices_tracked_with(
        kernel,
        a.data(),
        b.data(),
        c.data_mut(),
        cvia.data_mut(),
        n,
        offsets,
    );
}

/// Slice-level tracked dispatch (see [`min_plus_into_tracked_with`]).
pub(crate) fn min_plus_slices_tracked_with(
    kernel: MinPlusKernel,
    ad: &[f64],
    bd: &[f64],
    cd: &mut [f64],
    cv: &mut [u32],
    n: usize,
    offsets: Offsets,
) {
    let kernel = if kernel == MinPlusKernel::Auto {
        select_tracked(n)
    } else {
        kernel
    };
    match kernel {
        MinPlusKernel::Naive | MinPlusKernel::Branchless => {
            tracked_rows(ad, bd, cd, cv, n, offsets)
        }
        _ => tracked_tiled_rows(ad, bd, cd, cv, n, offsets),
    }
}

/// The shared tracked inner loop: relax one contiguous column span of one
/// row of `c` against `brow`, recording `kg` on strict improvement.
#[inline(always)]
fn relax_span(crow: &mut [f64], vrow: &mut [u32], brow: &[f64], aik: f64, kg: u32) {
    for ((cval, vval), &bv) in crow.iter_mut().zip(vrow.iter_mut()).zip(brow) {
        let v = aik + bv;
        if v < *cval {
            *cval = v;
            *vval = kg;
        }
    }
}

/// Relax columns `[j_lo, j_hi)` of row `i`, skipping the single column
/// whose global id equals `k_global` (the degenerate `k == j` term).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn relax_row_guarded(
    crow: &mut [f64],
    vrow: &mut [u32],
    brow: &[f64],
    aik: f64,
    k_global: usize,
    col_offset: usize,
    j_lo: usize,
    j_hi: usize,
) {
    let kg = k_global as u32;
    // Local index of the degenerate column, if it falls in this span.
    match k_global
        .checked_sub(col_offset)
        .filter(|&jb| jb >= j_lo && jb < j_hi)
    {
        None => relax_span(
            &mut crow[j_lo..j_hi],
            &mut vrow[j_lo..j_hi],
            &brow[j_lo..j_hi],
            aik,
            kg,
        ),
        Some(jb) => {
            relax_span(
                &mut crow[j_lo..jb],
                &mut vrow[j_lo..jb],
                &brow[j_lo..jb],
                aik,
                kg,
            );
            relax_span(
                &mut crow[jb + 1..j_hi],
                &mut vrow[jb + 1..j_hi],
                &brow[jb + 1..j_hi],
                aik,
                kg,
            );
        }
    }
}

fn tracked_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], cv: &mut [u32], n: usize, o: Offsets) {
    for i in 0..n {
        let i_global = o.row + i;
        for k in 0..n {
            let k_global = o.k + k;
            if k_global == i_global {
                continue;
            }
            let aik = ad[i * n + k];
            if aik == INF {
                continue;
            }
            let brow = &bd[k * n..k * n + n];
            let crow = &mut cd[i * n..i * n + n];
            let vrow = &mut cv[i * n..i * n + n];
            relax_row_guarded(crow, vrow, brow, aik, k_global, o.col, 0, n);
        }
    }
}

fn tracked_tiled_rows(
    ad: &[f64],
    bd: &[f64],
    cd: &mut [f64],
    cv: &mut [u32],
    n: usize,
    o: Offsets,
) {
    for kk in (0..n).step_by(TILE) {
        let k_hi = (kk + TILE).min(n);
        for jj in (0..n).step_by(TILE) {
            let j_hi = (jj + TILE).min(n);
            for i in 0..n {
                let i_global = o.row + i;
                let arow = &ad[i * n..i * n + n];
                for k in kk..k_hi {
                    let k_global = o.k + k;
                    if k_global == i_global {
                        continue;
                    }
                    let aik = arow[k];
                    if aik == INF {
                        continue;
                    }
                    let brow = &bd[k * n..k * n + n];
                    let crow = &mut cd[i * n..i * n + n];
                    let vrow = &mut cv[i * n..i * n + n];
                    relax_row_guarded(crow, vrow, brow, aik, k_global, o.col, jj, j_hi);
                }
            }
        }
    }
}

/// Tracked in-place Floyd-Warshall: like [`floyd_warshall_in_place`], but
/// every strict improvement through pivot `k` records the global via
/// `diag_offset + k`. The block must sit on the global diagonal (rows and
/// columns both start at `diag_offset`).
pub fn floyd_warshall_in_place_tracked(
    block: &mut Block,
    via: &mut ParentBlock,
    diag_offset: usize,
) {
    let n = block.side();
    assert_eq!(n, via.side());
    fw_in_place_tracked_slices(block.data_mut(), via.data_mut(), n, diag_offset);
}

/// Slice-level [`floyd_warshall_in_place_tracked`] — the entry point the
/// tracked path-algebra dispatch uses.
pub(crate) fn fw_in_place_tracked_slices(
    d: &mut [f64],
    vd: &mut [u32],
    n: usize,
    diag_offset: usize,
) {
    with_pool(&KROW, n, |krow| {
        for k in 0..n {
            krow.copy_from_slice(&d[k * n..k * n + n]);
            let kg = (diag_offset + k) as u32;
            for i in 0..n {
                if i == k {
                    continue;
                }
                let dik = d[i * n + k];
                if dik == INF {
                    continue;
                }
                let row = &mut d[i * n..i * n + n];
                let vrow = &mut vd[i * n..i * n + n];
                for ((rv, vv), &kv) in row.iter_mut().zip(vrow.iter_mut()).zip(krow.iter()) {
                    let v = dik + kv;
                    if v < *rv {
                        *rv = v;
                        *vv = kg;
                    }
                }
            }
        }
    });
}

/// Tracked rank-1 Floyd-Warshall update: strict improvements through the
/// (single, global) pivot `k_global` record it as the via.
pub fn fw_update_outer_tracked(
    block: &mut Block,
    via: &mut ParentBlock,
    col_i: &[f64],
    col_j: &[f64],
    k_global: usize,
) {
    let n = block.side();
    assert_eq!(n, via.side());
    fw_update_outer_tracked_slices(block.data_mut(), via.data_mut(), col_i, col_j, n, k_global);
}

/// Slice-level [`fw_update_outer_tracked`] — the entry point the tracked
/// path-algebra dispatch uses.
pub(crate) fn fw_update_outer_tracked_slices(
    d: &mut [f64],
    vd: &mut [u32],
    col_i: &[f64],
    col_j: &[f64],
    n: usize,
    k_global: usize,
) {
    assert_eq!(col_i.len(), n, "col_i length must equal block side");
    assert_eq!(col_j.len(), n, "col_j length must equal block side");
    let kg = k_global as u32;
    for (i, &ci) in col_i.iter().enumerate() {
        if ci == INF {
            continue;
        }
        let row = &mut d[i * n..i * n + n];
        let vrow = &mut vd[i * n..i * n + n];
        for ((rv, vv), &cj) in row.iter_mut().zip(vrow.iter_mut()).zip(col_j) {
            let v = ci + cj;
            if v < *rv {
                *rv = v;
                *vv = kg;
            }
        }
    }
}

/// `dist/via = (sd, sv)` where `sd` is strictly smaller — the shared fold
/// of the tracked two-step updates and the tracked `MatMin`.
pub(crate) fn fold_tracked(dist: &mut [f64], via: &mut [u32], sd: &[f64], sv: &[u32]) {
    for ((d, v), (&s, &p)) in dist.iter_mut().zip(via.iter_mut()).zip(sd.iter().zip(sv)) {
        if s < *d {
            *d = s;
            *v = p;
        }
    }
}

fn parallel_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize) {
    let band = bands_for(n);
    cd.par_chunks_mut(band * n)
        .enumerate()
        .for_each(|(chunk, crows)| {
            let i0 = chunk * band;
            let i1 = i0 + crows.len() / n;
            packed_rows(ad, bd, crows, n, i0, i1);
        });
}

fn bands_for(n: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    n.div_ceil(threads * 4).max(1)
}

// ---------------------------------------------------------------------------
// Floyd-Warshall kernels
// ---------------------------------------------------------------------------

/// In-place Floyd-Warshall over a square block.
///
/// The `k`-loop cannot be reordered, but each `k` step is a rank-1 min-plus
/// update, so rows are independent. The pivot row is copied into a
/// thread-local scratch buffer (reused across `k` and across calls — no
/// per-`k` allocation) both to break the `i == k` aliasing and to let the
/// branchless inner loop vectorize.
pub fn floyd_warshall_in_place(block: &mut Block) {
    let n = block.side();
    fw_in_place_slices(block.data_mut(), n);
}

/// Slice-level [`floyd_warshall_in_place`] over an `n × n` row-major
/// buffer — the entry point the path-algebra dispatch uses.
pub(crate) fn fw_in_place_slices(d: &mut [f64], n: usize) {
    with_pool(&KROW, n, |krow| {
        for k in 0..n {
            krow.copy_from_slice(&d[k * n..k * n + n]);
            for i in 0..n {
                let dik = d[i * n + k];
                if dik == INF {
                    continue;
                }
                let row = &mut d[i * n..i * n + n];
                for (rv, &kv) in row.iter_mut().zip(krow.iter()) {
                    *rv = tmin(dik + kv, *rv);
                }
            }
        }
    });
}

/// Rayon-parallel in-place Floyd-Warshall (rows parallel within each `k`),
/// sharing the same reused pivot-row scratch as the sequential variant.
pub fn floyd_warshall_in_place_parallel(block: &mut Block) {
    let n = block.side();
    let d = block.data_mut();
    with_pool(&KROW, n, |krow| {
        for k in 0..n {
            krow.copy_from_slice(&d[k * n..k * n + n]);
            let krow = &*krow;
            d.par_chunks_mut(n).for_each(|row| {
                let dik = row[k];
                if dik == INF {
                    return;
                }
                for (rv, &kv) in row.iter_mut().zip(krow.iter()) {
                    *rv = tmin(dik + kv, *rv);
                }
            });
        }
    });
}

/// The paper's `FloydWarshallUpdate`: `block[i][j] = min(block[i][j],
/// col_i[i] + col_j[j])` — a rank-1 min-plus product folded in place.
pub fn fw_update_outer(block: &mut Block, col_i: &[f64], col_j: &[f64]) {
    let n = block.side();
    fw_update_outer_slices(block.data_mut(), col_i, col_j, n);
}

/// Slice-level [`fw_update_outer`] — the entry point the path-algebra
/// dispatch uses.
pub(crate) fn fw_update_outer_slices(d: &mut [f64], col_i: &[f64], col_j: &[f64], n: usize) {
    assert_eq!(col_i.len(), n, "col_i length must equal block side");
    assert_eq!(col_j.len(), n, "col_j length must equal block side");
    for (i, &ci) in col_i.iter().enumerate() {
        if ci == INF {
            continue;
        }
        let row = &mut d[i * n..i * n + n];
        for (rv, &cj) in row.iter_mut().zip(col_j) {
            *rv = tmin(ci + cj, *rv);
        }
    }
}

// ---------------------------------------------------------------------------
// (max, min) bottleneck kernels
// ---------------------------------------------------------------------------

/// `c = max(c, a ⊗ b)` over the bottleneck *(max, min)* algebra, with an
/// explicit kernel choice (`Auto` resolves via [`select_maxmin`]).
///
/// The engine mirrors the tropical family member for member — branchless
/// rows, the packed 4×8 register-blocked micro-kernel over `NR`-wide
/// B-panels, and rayon-parallel row bands — with the roles of the
/// identities swapped: `0.0` (no pipe) is the additive identity/annihilator
/// that pads panels and drives the sparsity skip, where the tropical engine
/// uses [`INF`].
pub fn maxmin_into_with(
    kernel: MinPlusKernel,
    a: &crate::block::ElemBlock<crate::semiring::BottleneckF64>,
    b: &crate::block::ElemBlock<crate::semiring::BottleneckF64>,
    c: &mut crate::block::ElemBlock<crate::semiring::BottleneckF64>,
) {
    let n = a.side();
    assert_eq!(n, b.side());
    assert_eq!(n, c.side());
    maxmin_slices_with(kernel, a.data(), b.data(), c.data_mut(), n);
}

/// Slice-level *(max, min)* dispatch: `cd = max(cd, ad ⊗ bd)` over `n × n`
/// row-major capacity buffers (the entry point the [`crate::algebra::Widest`]
/// hooks use).
pub(crate) fn maxmin_slices_with(
    kernel: MinPlusKernel,
    ad: &[f64],
    bd: &[f64],
    cd: &mut [f64],
    n: usize,
) {
    let kernel = if kernel == MinPlusKernel::Auto {
        select_maxmin(n)
    } else {
        kernel
    };
    match kernel {
        MinPlusKernel::Naive => maxmin_naive_rows(ad, bd, cd, n),
        // No tiled (max, min) twin; the pin maps to the branchless loop.
        MinPlusKernel::Branchless | MinPlusKernel::Tiled => maxmin_branchless_rows(ad, bd, cd, n),
        MinPlusKernel::Packed => maxmin_packed_rows(ad, bd, cd, n, 0, n),
        MinPlusKernel::Parallel => maxmin_parallel_rows(ad, bd, cd, n),
        MinPlusKernel::Auto => unreachable!("Auto resolved above"),
    }
}

/// Reference branchy loop — bit-identical to the generic fallback loop a
/// hook-free `PathAlgebra` over [`crate::semiring::BottleneckF64`] runs.
fn maxmin_naive_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize) {
    for i in 0..n {
        for k in 0..n {
            let aik = ad[i * n + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..k * n + n];
            let crow = &mut cd[i * n..i * n + n];
            for j in 0..n {
                let v = bmin(aik, brow[j]);
                if v > crow[j] {
                    crow[j] = v;
                }
            }
        }
    }
}

fn maxmin_branchless_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize) {
    for i in 0..n {
        for k in 0..n {
            let aik = ad[i * n + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[k * n..k * n + n];
            let crow = &mut cd[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = bmax(bmin(aik, bv), *cv);
            }
        }
    }
}

/// The packed *(max, min)* register-blocked kernel over rows
/// `[i_lo, i_hi)` — the structural twin of [`packed_rows`] with `0.0` as
/// the inert pad/skip value.
fn maxmin_packed_rows(
    ad: &[f64],
    bd: &[f64],
    crows: &mut [f64],
    n: usize,
    i_lo: usize,
    i_hi: usize,
) {
    let panels = n.div_ceil(NR);
    with_pool(&PACK, panels * TILE * NR, |bp| {
        for kk in (0..n).step_by(TILE) {
            let k_len = (n - kk).min(TILE);
            pack_panels(bd, bp, n, kk, k_len, panels, 0.0);
            let mut i = i_lo;
            while i < i_hi {
                let m = (i_hi - i).min(MR);
                // Sparsity fast path: a zero-capacity `a` segment is the
                // annihilator — min(0, b) = 0 never raises any max.
                let any_capacity = (0..m).any(|r| {
                    ad[(i + r) * n + kk..(i + r) * n + kk + k_len]
                        .iter()
                        .any(|v| *v != 0.0)
                });
                if any_capacity {
                    match m {
                        4 => maxmin_row_block::<4>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                        3 => maxmin_row_block::<3>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                        2 => maxmin_row_block::<2>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                        _ => maxmin_row_block::<1>(ad, bp, crows, n, i, i_lo, kk, k_len, panels),
                    }
                }
                i += m;
            }
        }
    });
}

/// The `M × NR` *(max, min)* micro-kernel: register accumulation under
/// `acc = max(acc, min(aik, b))` maps to one `vminpd` + one `vmaxpd` per
/// step, symmetric to the tropical `vaddpd` + `vminpd` pair.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn maxmin_row_block<const M: usize>(
    ad: &[f64],
    bp: &[f64],
    crows: &mut [f64],
    n: usize,
    i: usize,
    i_lo: usize,
    kk: usize,
    k_len: usize,
    panels: usize,
) {
    let arows: [&[f64]; M] =
        std::array::from_fn(|r| &ad[(i + r) * n + kk..(i + r) * n + kk + k_len]);
    for p in 0..panels {
        let j0 = p * NR;
        let w = (n - j0).min(NR);
        let panel = &bp[p * k_len * NR..(p + 1) * k_len * NR];

        let mut acc = [[0.0; NR]; M];
        for k in 0..k_len {
            let bk: &[f64; NR] = panel[k * NR..k * NR + NR].try_into().unwrap();
            for r in 0..M {
                let aik = arows[r][k];
                for c in 0..NR {
                    acc[r][c] = bmax(bmin(aik, bk[c]), acc[r][c]);
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let row0 = (i - i_lo + r) * n + j0;
            let crow = &mut crows[row0..row0 + w];
            for (cv, &av) in crow.iter_mut().zip(accr[..w].iter()) {
                *cv = bmax(av, *cv);
            }
        }
    }
}

fn maxmin_parallel_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize) {
    let band = bands_for(n);
    cd.par_chunks_mut(band * n)
        .enumerate()
        .for_each(|(chunk, crows)| {
            let i0 = chunk * band;
            let i1 = i0 + crows.len() / n;
            maxmin_packed_rows(ad, bd, crows, n, i0, i1);
        });
}

/// Slice-level in-place *(max, min)* closure (widest-path Floyd-Warshall):
/// `d[i][j] = max(d[i][j], min(d[i][k], d[k][j]))` with the pivot row
/// copied into the reused scratch buffer, exactly like the tropical
/// [`fw_in_place_slices`].
pub(crate) fn maxmin_fw_in_place_slices(d: &mut [f64], n: usize) {
    with_pool(&KROW, n, |krow| {
        for k in 0..n {
            krow.copy_from_slice(&d[k * n..k * n + n]);
            for i in 0..n {
                let dik = d[i * n + k];
                if dik == 0.0 {
                    continue;
                }
                let row = &mut d[i * n..i * n + n];
                for (rv, &kv) in row.iter_mut().zip(krow.iter()) {
                    *rv = bmax(bmin(dik, kv), *rv);
                }
            }
        }
    });
}

/// Slice-level rank-1 *(max, min)* update: `d[i][j] = max(d[i][j],
/// min(col_i[i], col_j[j]))`.
pub(crate) fn maxmin_rank1_slices(d: &mut [f64], col_i: &[f64], col_j: &[f64], n: usize) {
    assert_eq!(col_i.len(), n, "col_i length must equal block side");
    assert_eq!(col_j.len(), n, "col_j length must equal block side");
    for (i, &ci) in col_i.iter().enumerate() {
        if ci == 0.0 {
            continue;
        }
        let row = &mut d[i * n..i * n + n];
        for (rv, &cj) in row.iter_mut().zip(col_j) {
            *rv = bmax(bmin(ci, cj), *rv);
        }
    }
}

// ---------------------------------------------------------------------------
// Bitset boolean (reachability) kernels
// ---------------------------------------------------------------------------

thread_local! {
    /// Word scratch for the bitset boolean kernels (packed operand and
    /// product planes).
    static BITS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a thread-local `u64` word-scratch buffer of at least
/// `len` words. Contents are **unspecified on entry**, like
/// [`with_scratch`].
pub(crate) fn with_word_scratch<R>(len: usize, f: impl FnOnce(&mut [u64]) -> R) -> R {
    BITS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            if buf.len() < len {
                buf.resize(len, 0);
            }
            f(&mut buf[..len])
        }
        Err(_) => f(&mut vec![0u64; len]),
    })
}

/// The word-level `(∨, ∧)` product core: `cw |= aw ⊗ bw`, all three packed
/// `n`-row planes of `wpr` words per row.
///
/// For each set bit `a(i, k)` (found via `trailing_zeros`, so sparse rows
/// cost only their popcount), row `k` of `b` is OR-ed word-wide into row
/// `i` of `c` — 64 column relaxations per instruction. Tail bits past
/// column `n` are zero in every packed row (the [`BitBlock`] invariant),
/// so they stay zero in `c`.
fn bool_mul_words(aw: &[u64], bw: &[u64], cw: &mut [u64], n: usize, wpr: usize) {
    for i in 0..n {
        let arow = &aw[i * wpr..(i + 1) * wpr];
        let crow = &mut cw[i * wpr..(i + 1) * wpr];
        for (wi, &word) in arow.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let k = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let brow = &bw[k * wpr..(k + 1) * wpr];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv |= bv;
                }
            }
        }
    }
}

/// `c = c ∨ (a ⊗ b)` over packed [`BitBlock`] planes — the public
/// bitset-product entry point.
pub fn bool_or_product_into(a: &BitBlock, b: &BitBlock, c: &mut BitBlock) {
    let n = a.side();
    assert_eq!(n, b.side());
    assert_eq!(n, c.side());
    let wpr = a.words_per_row();
    bool_mul_words(a.words(), b.words(), c.words_mut(), n, wpr);
}

/// In-place boolean transitive closure of a packed [`BitBlock`]: the
/// word-level Floyd-Warshall. For each pivot `k`, its row is copied out
/// (breaking the `i == k` alias exactly like the tropical pivot-row
/// scratch) and OR-ed into every row `i` with bit `(i, k)` set.
pub fn bool_closure_in_place(c: &mut BitBlock) {
    let n = c.side();
    let wpr = c.words_per_row();
    let cw = c.words_mut();
    with_word_scratch(wpr.max(1), |krow| {
        for k in 0..n {
            krow[..wpr].copy_from_slice(&cw[k * wpr..(k + 1) * wpr]);
            let (kw, kbit) = (k / 64, k % 64);
            for i in 0..n {
                if cw[i * wpr + kw] >> kbit & 1 == 1 {
                    let crow = &mut cw[i * wpr..(i + 1) * wpr];
                    for (cv, &kv) in crow.iter_mut().zip(krow.iter()) {
                        *cv |= kv;
                    }
                }
            }
        }
    });
}

/// Reference element-at-a-time boolean fold — bit-identical to the
/// generic fallback loop a hook-free `PathAlgebra` over
/// [`crate::semiring::BoolSemiring`] runs; the oracle the bitset kernels
/// are validated against.
pub(crate) fn bool_naive_fold_slices(ad: &[bool], bd: &[bool], cd: &mut [bool], n: usize) {
    for i in 0..n {
        for k in 0..n {
            if !ad[i * n + k] {
                continue;
            }
            let brow = &bd[k * n..k * n + n];
            let crow = &mut cd[i * n..i * n + n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv |= bv;
            }
        }
    }
}

/// Slice-level bitset fold `cd = cd ∨ (ad ⊗ bd)` over `n × n` boolean
/// planes: pack at the block boundary, run the word kernel, unpack. The
/// packed planes live in the thread-local word pool, so steady-state calls
/// allocate nothing.
pub(crate) fn bool_fold_slices(ad: &[bool], bd: &[bool], cd: &mut [bool], n: usize) {
    let wpr = BitBlock::words_per_row_for(n);
    with_word_scratch(3 * n * wpr, |words| {
        let (aw, rest) = words.split_at_mut(n * wpr);
        let (bw, cw) = rest.split_at_mut(n * wpr);
        BitBlock::pack_slice(ad, n, aw);
        BitBlock::pack_slice(bd, n, bw);
        BitBlock::pack_slice(cd, n, cw);
        bool_mul_words(aw, bw, cw, n, wpr);
        BitBlock::unpack_slice(cw, n, cd);
    });
}

/// Slice-level bitset pivot-column update `cd = cd ∨ (cd ⊗ other)`. The
/// product reads the packed snapshot of `cd`, so the result matches the
/// two-step scratch-product-then-join contract bit for bit (no
/// Gauss-Seidel early propagation).
pub(crate) fn bool_product_assign_slices(cd: &mut [bool], other: &[bool], n: usize) {
    let wpr = BitBlock::words_per_row_for(n);
    with_word_scratch(3 * n * wpr, |words| {
        let (aw, rest) = words.split_at_mut(n * wpr);
        let (bw, pw) = rest.split_at_mut(n * wpr);
        BitBlock::pack_slice(cd, n, aw);
        BitBlock::pack_slice(other, n, bw);
        pw.fill(0);
        bool_mul_words(aw, bw, pw, n, wpr);
        for (p, &a) in pw.iter_mut().zip(aw.iter()) {
            *p |= a;
        }
        BitBlock::unpack_slice(pw, n, cd);
    });
}

/// Slice-level bitset pivot-row update `cd = cd ∨ (other ⊗ cd)` — the
/// left-operand mirror of [`bool_product_assign_slices`].
pub(crate) fn bool_product_left_assign_slices(cd: &mut [bool], other: &[bool], n: usize) {
    let wpr = BitBlock::words_per_row_for(n);
    with_word_scratch(3 * n * wpr, |words| {
        let (aw, rest) = words.split_at_mut(n * wpr);
        let (bw, pw) = rest.split_at_mut(n * wpr);
        BitBlock::pack_slice(other, n, aw);
        BitBlock::pack_slice(cd, n, bw);
        pw.fill(0);
        bool_mul_words(aw, bw, pw, n, wpr);
        for (p, &b) in pw.iter_mut().zip(bw.iter()) {
            *p |= b;
        }
        BitBlock::unpack_slice(pw, n, cd);
    });
}

/// Slice-level bitset in-place closure over an `n × n` boolean plane.
pub(crate) fn bool_closure_slices(cd: &mut [bool], n: usize) {
    let wpr = BitBlock::words_per_row_for(n);
    with_word_scratch(n * wpr + wpr.max(1), |words| {
        let (cw, krow) = words.split_at_mut(n * wpr);
        BitBlock::pack_slice(cd, n, cw);
        for k in 0..n {
            krow[..wpr].copy_from_slice(&cw[k * wpr..(k + 1) * wpr]);
            let (kw, kbit) = (k / 64, k % 64);
            for i in 0..n {
                if cw[i * wpr + kw] >> kbit & 1 == 1 {
                    let crow = &mut cw[i * wpr..(i + 1) * wpr];
                    for (cv, &kv) in crow.iter_mut().zip(krow.iter()) {
                        *cv |= kv;
                    }
                }
            }
        }
        BitBlock::unpack_slice(cw, n, cd);
    });
}

/// Slice-level boolean rank-1 update: `cd[i][j] |= col_i[i] ∧ col_j[j]` —
/// a row-wide OR of `col_j` into every row whose `col_i` bit is set.
pub(crate) fn bool_rank1_slices(cd: &mut [bool], col_i: &[bool], col_j: &[bool], n: usize) {
    assert_eq!(col_i.len(), n, "col_i length must equal block side");
    assert_eq!(col_j.len(), n, "col_j length must equal block side");
    for (i, &ci) in col_i.iter().enumerate() {
        if !ci {
            continue;
        }
        let row = &mut cd[i * n..i * n + n];
        for (rv, &cj) in row.iter_mut().zip(col_j) {
            *rv |= cj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Block;

    fn random_block(b: usize, seed: u64, density: f64) -> Block {
        // Tiny xorshift so the crate's unit tests don't need `rand`.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        Block::from_fn(b, |i, j| {
            if i == j {
                0.0
            } else if next() < density {
                1.0 + next() * 9.0
            } else {
                INF
            }
        })
    }

    const ALL_KERNELS: [MinPlusKernel; 5] = [
        MinPlusKernel::Branchless,
        MinPlusKernel::Tiled,
        MinPlusKernel::Packed,
        MinPlusKernel::Parallel,
        MinPlusKernel::Auto,
    ];

    #[test]
    fn every_kernel_matches_naive_bit_exactly() {
        for &b in &[1usize, 2, 7, 31, 32, 63, 64, 65, 129, 130] {
            let a = random_block(b, 42, 0.3);
            let x = random_block(b, 43, 0.3);
            let mut oracle = Block::infinity(b);
            min_plus_into_naive(&a, &x, &mut oracle);
            for kernel in ALL_KERNELS {
                let mut c = Block::infinity(b);
                min_plus_into_with(kernel, &a, &x, &mut c);
                assert_eq!(oracle, c, "b={b} kernel={kernel:?}");
            }
        }
    }

    #[test]
    fn tiled_matches_naive() {
        for &b in &[1, 2, 7, 64, 65, 130] {
            let a = random_block(b, 42, 0.3);
            let x = random_block(b, 43, 0.3);
            let mut c1 = Block::infinity(b);
            let mut c2 = Block::infinity(b);
            min_plus_into_naive(&a, &x, &mut c1);
            min_plus_into_tiled(&a, &x, &mut c2);
            assert_eq!(c1, c2, "b={b}");
        }
    }

    #[test]
    fn parallel_matches_naive() {
        for &b in &[1, 3, 64, 100, 129] {
            let a = random_block(b, 7, 0.4);
            let x = random_block(b, 8, 0.4);
            let mut c1 = Block::infinity(b);
            let mut c2 = Block::infinity(b);
            min_plus_into_naive(&a, &x, &mut c1);
            min_plus_into_parallel(&a, &x, &mut c2);
            assert_eq!(c1, c2, "b={b}");
        }
    }

    #[test]
    fn packed_handles_all_inf_operands() {
        for &b in &[1usize, 9, 64, 65] {
            let z = Block::infinity(b);
            let r = random_block(b, 3, 0.5);
            for (a, x) in [(&z, &r), (&r, &z), (&z, &z)] {
                let mut c = r.clone();
                min_plus_into_packed(a, x, &mut c);
                assert_eq!(c, r, "all-INF operand must leave c untouched, b={b}");
            }
        }
    }

    #[test]
    fn select_tiers_by_side() {
        assert_eq!(select(1), MinPlusKernel::Branchless);
        assert_eq!(select(SMALL_SIDE - 1), MinPlusKernel::Branchless);
        assert_eq!(select(SMALL_SIDE), MinPlusKernel::Packed);
        assert_eq!(select(PARALLEL_SIDE - 1), MinPlusKernel::Packed);
        assert_eq!(select(PARALLEL_SIDE), MinPlusKernel::Parallel);
    }

    #[test]
    fn scratch_is_reused_and_reentrant_safe() {
        let got = with_scratch(16, |outer| {
            outer.fill(1.0);
            // Nested use must not panic (falls back to a fresh buffer).
            let inner_sum = with_scratch(8, |inner| {
                inner.fill(2.0);
                inner.iter().sum::<f64>()
            });
            outer.iter().sum::<f64>() + inner_sum
        });
        assert_eq!(got, 32.0);
    }

    #[test]
    fn fold_semantics_accumulate() {
        let b = 16;
        let a = random_block(b, 11, 0.5);
        let x = random_block(b, 12, 0.5);
        // Folding into a copy of `a` equals min(a, a⊗x).
        let mut folded = a.clone();
        min_plus_into(&a, &x, &mut folded);
        let mut pure = Block::infinity(b);
        min_plus_into(&a, &x, &mut pure);
        let mut manual = a.clone();
        manual.mat_min_assign(&pure);
        assert_eq!(folded, manual);
    }

    #[test]
    fn fw_parallel_matches_sequential() {
        for &b in &[1, 2, 33, 96] {
            let mut s = random_block(b, 99, 0.25);
            let mut p = s.clone();
            floyd_warshall_in_place(&mut s);
            floyd_warshall_in_place_parallel(&mut p);
            assert_eq!(s, p, "b={b}");
        }
    }

    #[test]
    fn fw_triangle_inequality_holds() {
        let b = 48;
        let mut a = random_block(b, 5, 0.2);
        floyd_warshall_in_place(&mut a);
        for i in 0..b {
            for j in 0..b {
                for k in 0..b {
                    assert!(
                        a.get(i, j) <= a.get(i, k) + a.get(k, j) + 1e-9,
                        "triangle inequality violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn fw_update_outer_is_rank1_product() {
        let b = 24;
        let mut blk = random_block(b, 21, 0.6);
        let orig = blk.clone();
        let col_i: Vec<f64> = (0..b)
            .map(|i| if i % 5 == 0 { INF } else { i as f64 })
            .collect();
        let col_j: Vec<f64> = (0..b).map(|j| (j * 2) as f64).collect();
        blk.fw_update_outer(&col_i, &col_j);
        for (i, ci) in col_i.iter().enumerate() {
            for (j, cj) in col_j.iter().enumerate() {
                let expect = orig.get(i, j).min(ci + cj);
                assert_eq!(blk.get(i, j), expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "col_i length")]
    fn fw_update_outer_validates_lengths() {
        let mut blk = Block::infinity(4);
        blk.fw_update_outer(&[0.0; 3], &[0.0; 4]);
    }

    #[test]
    fn tracked_kernels_match_untracked_distances() {
        use crate::parent::{ParentBlock, NO_VIA};
        for &b in &[1usize, 2, 7, 63, 64, 65, 129] {
            let a = random_block(b, 91, 0.3);
            let x = random_block(b, 92, 0.3);
            let mut oracle = Block::infinity(b);
            min_plus_into_naive(&a, &x, &mut oracle);
            for kernel in ALL_KERNELS {
                let mut c = Block::infinity(b);
                let mut v = ParentBlock::none(b);
                // Disjoint k/row/col ranges: the degenerate-term guards
                // never fire, so distances must be bit-exact.
                let o = Offsets {
                    k: 4 * b,
                    row: 0,
                    col: 9 * b,
                };
                min_plus_into_tracked_with(kernel, &a, &x, &mut c, &mut v, o);
                assert_eq!(oracle, c, "b={b} kernel={kernel:?}");
                // Every win recorded a global via inside the k range.
                for i in 0..b {
                    for j in 0..b {
                        let via = v.get(i, j);
                        if via != NO_VIA {
                            assert!((4 * b..5 * b).contains(&(via as usize)));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tracked_fw_matches_untracked_distances() {
        for &b in &[1usize, 2, 33, 96, 130] {
            let mut plain = random_block(b, 17, 0.25);
            let mut tracked = plain.clone();
            let mut via = crate::parent::ParentBlock::none(b);
            floyd_warshall_in_place(&mut plain);
            floyd_warshall_in_place_tracked(&mut tracked, &mut via, 0);
            assert_eq!(plain, tracked, "b={b}");
        }
    }

    #[test]
    fn tracked_fw_update_outer_matches_untracked() {
        let b = 24;
        let mut plain = random_block(b, 21, 0.6);
        let mut tracked = plain.clone();
        let mut via = crate::parent::ParentBlock::none(b);
        let col_i: Vec<f64> = (0..b)
            .map(|i| if i % 5 == 0 { INF } else { i as f64 })
            .collect();
        let col_j: Vec<f64> = (0..b).map(|j| (j * 2) as f64).collect();
        plain.fw_update_outer(&col_i, &col_j);
        fw_update_outer_tracked(&mut tracked, &mut via, &col_i, &col_j, 500);
        assert_eq!(plain, tracked);
    }

    #[test]
    fn select_tracked_always_row_streams() {
        for side in [1, SMALL_SIDE - 1, SMALL_SIDE, PARALLEL_SIDE, 4096] {
            assert_eq!(select_tracked(side), MinPlusKernel::Branchless);
        }
    }

    #[test]
    fn single_element_block() {
        let mut a = Block::identity(1);
        floyd_warshall_in_place(&mut a);
        assert_eq!(a.get(0, 0), 0.0);
        let c = a.min_plus(&a);
        assert_eq!(c.get(0, 0), 0.0);
    }

    // ---- (max, min) kernel family -------------------------------------

    fn random_caps(b: usize, seed: u64, density: f64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..b * b)
            .map(|idx| {
                if idx / b == idx % b {
                    INF
                } else if next() < density {
                    1.0 + next() * 9.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn random_bools(b: usize, seed: u64, density: f64) -> Vec<bool> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..b * b)
            .map(|idx| idx / b == idx % b || next() < density)
            .collect()
    }

    #[test]
    fn maxmin_every_kernel_matches_naive_bit_exactly() {
        for &b in &[1usize, 2, 7, 63, 64, 65, 129, 130] {
            let a = random_caps(b, 42, 0.3);
            let x = random_caps(b, 43, 0.3);
            let mut oracle = vec![0.0; b * b];
            maxmin_slices_with(MinPlusKernel::Naive, &a, &x, &mut oracle, b);
            for kernel in ALL_KERNELS {
                let mut c = vec![0.0; b * b];
                maxmin_slices_with(kernel, &a, &x, &mut c, b);
                assert_eq!(oracle, c, "b={b} kernel={kernel:?}");
            }
        }
    }

    #[test]
    fn maxmin_packed_handles_all_zero_operands() {
        for &b in &[1usize, 9, 64, 65] {
            let z = vec![0.0; b * b];
            let r = random_caps(b, 3, 0.5);
            for (a, x) in [(&z, &r), (&r, &z), (&z, &z)] {
                let mut c = r.clone();
                maxmin_slices_with(MinPlusKernel::Packed, a, x, &mut c, b);
                assert_eq!(c, r, "zero-capacity operand must leave c untouched, b={b}");
            }
        }
    }

    #[test]
    fn maxmin_fold_accumulates_into_seeded_c() {
        let b = 16;
        let a = random_caps(b, 11, 0.5);
        let x = random_caps(b, 12, 0.5);
        let seed = random_caps(b, 13, 0.5);
        let mut folded = seed.clone();
        maxmin_slices_with(MinPlusKernel::Packed, &a, &x, &mut folded, b);
        let mut pure = vec![0.0; b * b];
        maxmin_slices_with(MinPlusKernel::Packed, &a, &x, &mut pure, b);
        let manual: Vec<f64> = seed
            .iter()
            .zip(pure.iter())
            .map(|(&s, &p)| bmax(s, p))
            .collect();
        assert_eq!(folded, manual);
    }

    #[test]
    fn maxmin_fw_matches_reference_loop() {
        for &b in &[1usize, 2, 33, 64, 96] {
            let mut fast = random_caps(b, 99, 0.25);
            let mut slow = fast.clone();
            maxmin_fw_in_place_slices(&mut fast, b);
            for k in 0..b {
                for i in 0..b {
                    let dik = slow[i * b + k];
                    for j in 0..b {
                        let v = bmin(dik, slow[k * b + j]);
                        if v > slow[i * b + j] {
                            slow[i * b + j] = v;
                        }
                    }
                }
            }
            assert_eq!(fast, slow, "b={b}");
        }
    }

    #[test]
    fn maxmin_rank1_matches_reference_loop() {
        let b = 24;
        let mut fast = random_caps(b, 21, 0.6);
        let slow = fast.clone();
        let col_i: Vec<f64> = (0..b)
            .map(|i| if i % 5 == 0 { 0.0 } else { i as f64 + 1.0 })
            .collect();
        let col_j: Vec<f64> = (0..b).map(|j| (j * 2) as f64).collect();
        maxmin_rank1_slices(&mut fast, &col_i, &col_j, b);
        for (i, &ci) in col_i.iter().enumerate() {
            for (j, &cj) in col_j.iter().enumerate() {
                let expect = bmax(slow[i * b + j], bmin(ci, cj));
                assert_eq!(fast[i * b + j], expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn select_maxmin_tiers_by_side() {
        assert_eq!(select_maxmin(1), MinPlusKernel::Branchless);
        assert_eq!(select_maxmin(SMALL_SIDE - 1), MinPlusKernel::Branchless);
        assert_eq!(select_maxmin(SMALL_SIDE), MinPlusKernel::Packed);
        assert_eq!(select_maxmin(PARALLEL_SIDE - 1), MinPlusKernel::Packed);
        assert_eq!(select_maxmin(PARALLEL_SIDE), MinPlusKernel::Parallel);
    }

    // ---- bitset kernel family -----------------------------------------

    #[test]
    fn select_boolean_always_bitset() {
        for side in [1, SMALL_SIDE, PARALLEL_SIDE, 4096] {
            assert_eq!(select_boolean(side), BooleanKernel::Bitset);
        }
    }

    #[test]
    fn bitset_fold_matches_naive_at_word_boundaries() {
        for &b in &[1usize, 2, 63, 64, 65, 127, 128, 129] {
            let a = random_bools(b, 51, 0.2);
            let x = random_bools(b, 52, 0.2);
            let seed = random_bools(b, 53, 0.05);
            let mut oracle = seed.clone();
            bool_naive_fold_slices(&a, &x, &mut oracle, b);
            let mut fast = seed.clone();
            bool_fold_slices(&a, &x, &mut fast, b);
            assert_eq!(oracle, fast, "b={b}");
        }
    }

    #[test]
    fn bitset_fold_handles_constant_planes() {
        for &b in &[1usize, 63, 64, 65] {
            for (av, xv) in [(false, false), (false, true), (true, false), (true, true)] {
                let a = vec![av; b * b];
                let x = vec![xv; b * b];
                let mut oracle = vec![false; b * b];
                bool_naive_fold_slices(&a, &x, &mut oracle, b);
                let mut fast = vec![false; b * b];
                bool_fold_slices(&a, &x, &mut fast, b);
                assert_eq!(oracle, fast, "b={b} a={av} x={xv}");
            }
        }
    }

    #[test]
    fn bitset_product_assigns_match_two_step_contract() {
        for &b in &[1usize, 63, 64, 65, 129] {
            let other = random_bools(b, 61, 0.2);
            let seed = random_bools(b, 62, 0.1);

            // Right-assign: c = c | (c & other-product).
            let mut oracle = seed.clone();
            let mut sd = vec![false; b * b];
            bool_naive_fold_slices(&oracle.clone(), &other, &mut sd, b);
            for (c, &s) in oracle.iter_mut().zip(sd.iter()) {
                *c |= s;
            }
            let mut fast = seed.clone();
            bool_product_assign_slices(&mut fast, &other, b);
            assert_eq!(oracle, fast, "right-assign b={b}");

            // Left-assign: c = c | (other-product & c).
            let mut oracle = seed.clone();
            let mut sd = vec![false; b * b];
            bool_naive_fold_slices(&other, &oracle.clone(), &mut sd, b);
            for (c, &s) in oracle.iter_mut().zip(sd.iter()) {
                *c |= s;
            }
            let mut fast = seed.clone();
            bool_product_left_assign_slices(&mut fast, &other, b);
            assert_eq!(oracle, fast, "left-assign b={b}");
        }
    }

    #[test]
    fn bitset_closure_matches_reference_loop() {
        for &b in &[1usize, 2, 33, 63, 64, 65, 96] {
            let mut fast = random_bools(b, 71, 0.08);
            let mut slow = fast.clone();
            bool_closure_slices(&mut fast, b);
            for k in 0..b {
                for i in 0..b {
                    if !slow[i * b + k] {
                        continue;
                    }
                    for j in 0..b {
                        slow[i * b + j] |= slow[k * b + j];
                    }
                }
            }
            assert_eq!(fast, slow, "b={b}");
        }
    }

    #[test]
    fn bitset_rank1_matches_reference_loop() {
        let b = 65;
        let mut fast = random_bools(b, 81, 0.1);
        let slow = fast.clone();
        let col_i: Vec<bool> = (0..b).map(|i| i % 3 == 0).collect();
        let col_j: Vec<bool> = (0..b).map(|j| j % 2 == 0).collect();
        bool_rank1_slices(&mut fast, &col_i, &col_j, b);
        for (i, &ci) in col_i.iter().enumerate() {
            for (j, &cj) in col_j.iter().enumerate() {
                assert_eq!(fast[i * b + j], slow[i * b + j] || (ci && cj), "({i},{j})");
            }
        }
    }

    #[test]
    fn bitblock_roundtrips_and_counts() {
        for &b in &[1usize, 63, 64, 65, 129] {
            let plane = random_bools(b, 91, 0.3);
            let bb = BitBlock::from_bools(b, &plane);
            assert_eq!(bb.side(), b);
            assert_eq!(bb.to_bools(), plane);
            assert_eq!(bb.count_ones(), plane.iter().filter(|&&v| v).count());
            for i in 0..b {
                for j in 0..b {
                    assert_eq!(bb.get(i, j), plane[i * b + j], "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn bitblock_product_and_closure_match_plane_kernels() {
        for &b in &[1usize, 63, 64, 65] {
            let ap = random_bools(b, 95, 0.2);
            let xp = random_bools(b, 96, 0.2);
            let a = BitBlock::from_bools(b, &ap);
            let x = BitBlock::from_bools(b, &xp);
            let mut c = BitBlock::zeros(b);
            bool_or_product_into(&a, &x, &mut c);
            let mut plane = vec![false; b * b];
            bool_naive_fold_slices(&ap, &xp, &mut plane, b);
            assert_eq!(c.to_bools(), plane, "product b={b}");

            let mut closed_bits = a.clone();
            bool_closure_in_place(&mut closed_bits);
            let mut closed_plane = ap.clone();
            bool_closure_slices(&mut closed_plane, b);
            assert_eq!(closed_bits.to_bools(), closed_plane, "closure b={b}");
        }
    }
}
