//! Low-level compute kernels: the bare-metal analogue of the paper's
//! NumPy / SciPy / Numba offloads.
//!
//! Three implementations of the min-plus product are provided:
//!
//! * [`min_plus_into_naive`] — textbook `i,k,j` loop; the correctness oracle,
//! * [`min_plus_into`] — cache-tiled single-threaded kernel (default),
//! * [`min_plus_into_parallel`] — rayon-parallel over row bands; used when a
//!   solver is configured to emulate the paper's per-executor multicore BLAS.
//!
//! All kernels *fold into* `c`: `c = min(c, a ⊗ b)`, matching the
//! `MatProd`-then-`MatMin` composition the paper's algorithms rely on.
//! Passing an all-[`INF`] `c` yields the pure product.

use crate::{Block, INF};
use rayon::prelude::*;

/// Tile side for the cache-blocked kernels. 64×64 f64 tiles (32 KiB) fit L1
/// on the paper's Skylake nodes and on most contemporary x86-64 cores.
pub const TILE: usize = 64;

/// Reference `c = min(c, a ⊗ b)`, naive triple loop (`i,k,j` order so the
/// inner loop streams rows of `b` and `c`).
pub fn min_plus_into_naive(a: &Block, b: &Block, c: &mut Block) {
    let n = a.side();
    assert_eq!(n, b.side());
    assert_eq!(n, c.side());
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..n {
        for k in 0..n {
            let aik = ad[i * n + k];
            if aik == INF {
                continue;
            }
            let brow = &bd[k * n..k * n + n];
            let crow = &mut cd[i * n..i * n + n];
            for j in 0..n {
                let v = aik + brow[j];
                if v < crow[j] {
                    crow[j] = v;
                }
            }
        }
    }
}

/// Cache-tiled `c = min(c, a ⊗ b)`.
///
/// Tiles the `k` and `j` loops by [`TILE`] so the working set of the inner
/// kernel (one row band of `a`, a `TILE×TILE` panel of `b`, one row band of
/// `c`) stays cache-resident. This is what produces the Fig. 2 "knee": once
/// the whole block stops fitting in LLC the per-element cost rises.
pub fn min_plus_into(a: &Block, b: &Block, c: &mut Block) {
    let n = a.side();
    assert_eq!(n, b.side());
    assert_eq!(n, c.side());
    min_plus_rows(a.data(), b.data(), c.data_mut(), n, 0, n);
}

/// Rayon-parallel `c = min(c, a ⊗ b)`: rows of `c` are partitioned into
/// bands processed independently (no write sharing, so no synchronization).
pub fn min_plus_into_parallel(a: &Block, b: &Block, c: &mut Block) {
    let n = a.side();
    assert_eq!(n, b.side());
    assert_eq!(n, c.side());
    let band = bands_for(n);
    let (ad, bd) = (a.data(), b.data());
    c.data_mut()
        .par_chunks_mut(band * n)
        .enumerate()
        .for_each(|(chunk, crows)| {
            let i0 = chunk * band;
            let i1 = (i0 + crows.len() / n).min(n);
            // Shift the row window: min_plus_rows indexes `c` absolutely, so
            // pass a re-based slice via a local adapter.
            min_plus_rows_rebased(ad, bd, crows, n, i0, i1);
        });
}

fn bands_for(n: usize) -> usize {
    let threads = rayon::current_num_threads().max(1);
    n.div_ceil(threads * 4).max(1)
}

/// Tiled kernel over absolute row range `[i_lo, i_hi)` of `c`.
fn min_plus_rows(ad: &[f64], bd: &[f64], cd: &mut [f64], n: usize, i_lo: usize, i_hi: usize) {
    for kk in (0..n).step_by(TILE) {
        let k_hi = (kk + TILE).min(n);
        for jj in (0..n).step_by(TILE) {
            let j_hi = (jj + TILE).min(n);
            for i in i_lo..i_hi {
                let arow = &ad[i * n..i * n + n];
                let crow = &mut cd[i * n + jj..i * n + j_hi];
                for k in kk..k_hi {
                    let aik = arow[k];
                    if aik == INF {
                        continue;
                    }
                    let brow = &bd[k * n + jj..k * n + j_hi];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        let v = aik + bv;
                        if v < *cv {
                            *cv = v;
                        }
                    }
                }
            }
        }
    }
}

/// Variant of [`min_plus_rows`] where `crows` is a slice starting at absolute
/// row `i_lo` (used by the parallel kernel's disjoint chunks).
fn min_plus_rows_rebased(
    ad: &[f64],
    bd: &[f64],
    crows: &mut [f64],
    n: usize,
    i_lo: usize,
    i_hi: usize,
) {
    for kk in (0..n).step_by(TILE) {
        let k_hi = (kk + TILE).min(n);
        for jj in (0..n).step_by(TILE) {
            let j_hi = (jj + TILE).min(n);
            for i in i_lo..i_hi {
                let arow = &ad[i * n..i * n + n];
                let local = i - i_lo;
                let crow = &mut crows[local * n + jj..local * n + j_hi];
                for k in kk..k_hi {
                    let aik = arow[k];
                    if aik == INF {
                        continue;
                    }
                    let brow = &bd[k * n + jj..k * n + j_hi];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        let v = aik + bv;
                        if v < *cv {
                            *cv = v;
                        }
                    }
                }
            }
        }
    }
}

/// In-place Floyd-Warshall over a square block.
///
/// The `k`-loop cannot be reordered, but each `k` step is a rank-1 min-plus
/// update, so rows are independent; we exploit that for a mild unrolled
/// inner loop. Skipping rows with `d[i][k] == INF` is the standard sparsity
/// shortcut that makes early iterations on sparse inputs cheap.
pub fn floyd_warshall_in_place(block: &mut Block) {
    let n = block.side();
    let d = block.data_mut();
    for k in 0..n {
        // Copy pivot row to break the aliasing between d[k*n..] reads and
        // d[i*n..] writes when i == k (the update is a no-op there anyway,
        // but the copy lets LLVM vectorize the inner loop).
        let krow: Vec<f64> = d[k * n..k * n + n].to_vec();
        for i in 0..n {
            let dik = d[i * n + k];
            if dik == INF {
                continue;
            }
            let row = &mut d[i * n..i * n + n];
            for (rv, &kv) in row.iter_mut().zip(krow.iter()) {
                let v = dik + kv;
                if v < *rv {
                    *rv = v;
                }
            }
        }
    }
}

/// Rayon-parallel in-place Floyd-Warshall (rows parallel within each `k`).
pub fn floyd_warshall_in_place_parallel(block: &mut Block) {
    let n = block.side();
    let d = block.data_mut();
    for k in 0..n {
        let krow: Vec<f64> = d[k * n..k * n + n].to_vec();
        d.par_chunks_mut(n).for_each(|row| {
            let dik = row[k];
            if dik == INF {
                return;
            }
            for (rv, &kv) in row.iter_mut().zip(krow.iter()) {
                let v = dik + kv;
                if v < *rv {
                    *rv = v;
                }
            }
        });
    }
}

/// The paper's `FloydWarshallUpdate`: `block[i][j] = min(block[i][j],
/// col_i[i] + col_j[j])` — a rank-1 min-plus product folded in place.
pub fn fw_update_outer(block: &mut Block, col_i: &[f64], col_j: &[f64]) {
    let n = block.side();
    assert_eq!(col_i.len(), n, "col_i length must equal block side");
    assert_eq!(col_j.len(), n, "col_j length must equal block side");
    let d = block.data_mut();
    for (i, &ci) in col_i.iter().enumerate() {
        if ci == INF {
            continue;
        }
        let row = &mut d[i * n..i * n + n];
        for (rv, &cj) in row.iter_mut().zip(col_j) {
            let v = ci + cj;
            if v < *rv {
                *rv = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Block;

    fn random_block(b: usize, seed: u64, density: f64) -> Block {
        // Tiny xorshift so the crate's unit tests don't need `rand`.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        Block::from_fn(b, |i, j| {
            if i == j {
                0.0
            } else if next() < density {
                1.0 + next() * 9.0
            } else {
                INF
            }
        })
    }

    #[test]
    fn tiled_matches_naive() {
        for &b in &[1, 2, 7, 64, 65, 130] {
            let a = random_block(b, 42, 0.3);
            let x = random_block(b, 43, 0.3);
            let mut c1 = Block::infinity(b);
            let mut c2 = Block::infinity(b);
            min_plus_into_naive(&a, &x, &mut c1);
            min_plus_into(&a, &x, &mut c2);
            assert_eq!(c1, c2, "b={b}");
        }
    }

    #[test]
    fn parallel_matches_naive() {
        for &b in &[1, 3, 64, 100, 129] {
            let a = random_block(b, 7, 0.4);
            let x = random_block(b, 8, 0.4);
            let mut c1 = Block::infinity(b);
            let mut c2 = Block::infinity(b);
            min_plus_into_naive(&a, &x, &mut c1);
            min_plus_into_parallel(&a, &x, &mut c2);
            assert_eq!(c1, c2, "b={b}");
        }
    }

    #[test]
    fn fold_semantics_accumulate() {
        let b = 16;
        let a = random_block(b, 11, 0.5);
        let x = random_block(b, 12, 0.5);
        // Folding into a copy of `a` equals min(a, a⊗x).
        let mut folded = a.clone();
        min_plus_into(&a, &x, &mut folded);
        let mut pure = Block::infinity(b);
        min_plus_into(&a, &x, &mut pure);
        let mut manual = a.clone();
        manual.mat_min_assign(&pure);
        assert_eq!(folded, manual);
    }

    #[test]
    fn fw_parallel_matches_sequential() {
        for &b in &[1, 2, 33, 96] {
            let mut s = random_block(b, 99, 0.25);
            let mut p = s.clone();
            floyd_warshall_in_place(&mut s);
            floyd_warshall_in_place_parallel(&mut p);
            assert_eq!(s, p, "b={b}");
        }
    }

    #[test]
    fn fw_triangle_inequality_holds() {
        let b = 48;
        let mut a = random_block(b, 5, 0.2);
        floyd_warshall_in_place(&mut a);
        for i in 0..b {
            for j in 0..b {
                for k in 0..b {
                    assert!(
                        a.get(i, j) <= a.get(i, k) + a.get(k, j) + 1e-9,
                        "triangle inequality violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn fw_update_outer_is_rank1_product() {
        let b = 24;
        let mut blk = random_block(b, 21, 0.6);
        let orig = blk.clone();
        let col_i: Vec<f64> = (0..b)
            .map(|i| if i % 5 == 0 { INF } else { i as f64 })
            .collect();
        let col_j: Vec<f64> = (0..b).map(|j| (j * 2) as f64).collect();
        blk.fw_update_outer(&col_i, &col_j);
        for (i, ci) in col_i.iter().enumerate() {
            for (j, cj) in col_j.iter().enumerate() {
                let expect = orig.get(i, j).min(ci + cj);
                assert_eq!(blk.get(i, j), expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "col_i length")]
    fn fw_update_outer_validates_lengths() {
        let mut blk = Block::infinity(4);
        blk.fw_update_outer(&[0.0; 3], &[0.0; 4]);
    }

    #[test]
    fn single_element_block() {
        let mut a = Block::identity(1);
        floyd_warshall_in_place(&mut a);
        assert_eq!(a.get(0, 0), 0.0);
        let c = a.min_plus(&a);
        assert_eq!(c.get(0, 0), 0.0);
    }
}
