//! Crate-isolation smoke tests: the algebraic contract `cargo test -p
//! apsp-blockmat` should always witness, without needing the rest of the
//! workspace.

use apsp_blockmat::closure::BlockedGenMatrix;
use apsp_blockmat::{
    Block, BoolSemiring, BottleneckF64, ElemBlock, Semiring, TropicalF64, TropicalI64, INF,
};

/// `⊕` identity, `⊗` identity, and the annihilator law `a ⊗ 0̄ = 0̄` for
/// every semiring instance the solvers may run on.
fn semiring_laws<S: Semiring>(samples: &[S::Elem]) {
    for &a in samples {
        assert_eq!(S::add(a, S::zero()), a, "additive identity");
        assert_eq!(S::add(S::zero(), a), a, "additive identity (comm)");
        assert_eq!(S::mul(a, S::one()), a, "multiplicative identity");
        assert_eq!(S::mul(S::one(), a), a, "multiplicative identity (comm)");
        assert_eq!(S::mul(a, S::zero()), S::zero(), "annihilator");
        assert_eq!(S::mul(S::zero(), a), S::zero(), "annihilator (comm)");
        assert_eq!(S::add(a, a), a, "idempotent ⊕ (path semirings)");
    }
    for &a in samples {
        for &b in samples {
            assert_eq!(S::add(a, b), S::add(b, a), "⊕ commutes");
        }
    }
}

#[test]
fn tropical_f64_semiring_laws() {
    semiring_laws::<TropicalF64>(&[0.0, 1.5, 42.0, INF]);
}

#[test]
fn tropical_i64_semiring_laws() {
    semiring_laws::<TropicalI64>(&[0, 3, 1 << 40, TropicalI64::zero()]);
}

#[test]
fn boolean_semiring_laws() {
    semiring_laws::<BoolSemiring>(&[true, false]);
}

#[test]
fn bottleneck_semiring_laws() {
    semiring_laws::<BottleneckF64>(&[0.0, 0.5, 10.0, INF]);
}

/// The boolean-closure support the `semiring` module docs promise
/// ("transitive closure over the boolean semiring, Katz et al. [10]"),
/// exercised end-to-end: blocked Kleene closure over `(∨, ∧)` computes
/// exactly the reachability relation of a directed graph.
#[test]
fn boolean_closure_computes_katz_style_transitive_closure() {
    // Directed: 0 → 1 → 2 → 3 with a back-arc 2 → 0, plus isolated 4.
    let n = 5;
    let arcs = [(0usize, 1usize), (1, 2), (2, 3), (2, 0)];
    let edge = |i: usize, j: usize| i == j || arcs.contains(&(i, j));

    // In-block closure on the generic element block ...
    let mut blk = ElemBlock::<BoolSemiring>::from_fn(n, &edge);
    blk.closure_in_place();
    // ... and the blocked (multi-block) Kleene closure must agree.
    let mut blocked = BlockedGenMatrix::<BoolSemiring>::from_fn(n, 2, edge);
    blocked.closure_in_place();

    // Reference reachability by DFS over the arc list.
    let mut want = [[false; 5]; 5];
    for (s, row) in want.iter_mut().enumerate() {
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            if row[u] {
                continue;
            }
            row[u] = true;
            for &(a, b) in &arcs {
                if a == u {
                    stack.push(b);
                }
            }
        }
    }
    for (i, wrow) in want.iter().enumerate() {
        for (j, &w) in wrow.iter().enumerate() {
            assert_eq!(blk.get(i, j), w, "in-block closure ({i},{j})");
            assert_eq!(blocked.get(i, j), w, "blocked closure ({i},{j})");
        }
    }
    // The cycle {0, 1, 2} reaches everything but 4; 3 is a sink.
    assert!(blk.get(1, 0) && blk.get(1, 3) && !blk.get(3, 0) && !blk.get(0, 4));
}

#[test]
fn block_identity_is_minplus_neutral() {
    let mut a = Block::identity(4);
    a.set(0, 1, 2.0);
    a.set(1, 3, 5.0);
    let e = Block::identity(4);
    assert_eq!(a.min_plus(&e), a);
    assert_eq!(e.min_plus(&a), a);
}

#[test]
fn inf_is_the_absent_edge() {
    let b = Block::infinity(3);
    assert_eq!(b.get(0, 1), INF);
    // One min-plus square of all-INF stays all-INF (annihilation at the
    // matrix level).
    let sq = b.min_plus(&b);
    for i in 0..3 {
        for j in 0..3 {
            assert_eq!(sq.get(i, j), INF);
        }
    }
}
