//! Property-based tests of the kernel algebra: the invariants DESIGN.md
//! commits to (semiring laws, fixpoints, kernel-variant agreement).

use apsp_blockmat::kernels::{self, MinPlusKernel};
use apsp_blockmat::{Block, INF};
use proptest::prelude::*;

/// The non-oracle kernels, all of which must agree **bit-exactly** with
/// `min_plus_into_naive` (min over non-NaN values is order-independent).
const ENGINE_KERNELS: [MinPlusKernel; 5] = [
    MinPlusKernel::Branchless,
    MinPlusKernel::Tiled,
    MinPlusKernel::Packed,
    MinPlusKernel::Parallel,
    MinPlusKernel::Auto,
];

/// Deterministic block with tunable density (1.0 = fully dense).
fn seeded_block(b: usize, seed: u64, density: f64) -> Block {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    Block::from_fn(b, |i, j| {
        if i == j {
            0.0
        } else if next() < density {
            1.0 + next() * 42.0
        } else {
            INF
        }
    })
}

/// Strategy: a random block with INF holes, zero diagonal.
fn block_strategy(max_b: usize) -> impl Strategy<Value = Block> {
    (1..=max_b, any::<u64>(), 0.1f64..0.9).prop_map(|(b, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        Block::from_fn(b, |i, j| {
            if i == j {
                0.0
            } else if next() < density {
                (next() * 50.0 * 1024.0).round() / 1024.0 // dyadic: exact min-plus
            } else {
                INF
            }
        })
    })
}

/// Two same-sized random blocks.
fn block_pair(max_b: usize) -> impl Strategy<Value = (Block, Block)> {
    (1..=max_b, any::<u64>(), any::<u64>()).prop_map(|(b, s1, s2)| {
        let mk = |seed: u64| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            Block::from_fn(b, |i, j| {
                if i == j {
                    0.0
                } else if next() < 0.5 {
                    (next() * 50.0 * 1024.0).round() / 1024.0
                } else {
                    INF
                }
            })
        };
        (mk(s1), mk(s2))
    })
}

/// The ISSUE-mandated deterministic sweep: every engine kernel agrees
/// bit-exactly with the naive oracle at sides spanning register-block and
/// tile boundaries (1, 7, 63, 64, 65, 129), at three densities including
/// all-INF and fully dense, folding into both all-INF and pre-seeded `c`.
#[test]
fn engine_kernels_bit_exact_across_boundary_sides() {
    for &side in &[1usize, 7, 63, 64, 65, 129] {
        for &density in &[0.0, 0.3, 1.0] {
            let a = seeded_block(side, side as u64 * 31 + 1, density);
            let b = seeded_block(side, side as u64 * 17 + 5, density);
            let seed_c = seeded_block(side, side as u64 * 7 + 9, 0.5);
            for init in [Block::infinity(side), seed_c] {
                let mut oracle = init.clone();
                kernels::min_plus_into_naive(&a, &b, &mut oracle);
                for kernel in ENGINE_KERNELS {
                    let mut c = init.clone();
                    kernels::min_plus_into_with(kernel, &a, &b, &mut c);
                    assert_eq!(
                        oracle, c,
                        "kernel {kernel:?} diverged from naive at side {side}, density {density}"
                    );
                }
            }
        }
    }
}

/// All-[`INF`] operands are absorbing on either side and must leave the
/// fold target untouched, for every kernel.
#[test]
fn all_inf_operands_are_inert() {
    for &side in &[1usize, 7, 64, 65, 129] {
        let z = Block::infinity(side);
        let r = seeded_block(side, 77, 0.6);
        for kernel in ENGINE_KERNELS {
            for (a, b) in [(&z, &r), (&r, &z), (&z, &z)] {
                let mut c = r.clone();
                kernels::min_plus_into_with(kernel, a, b, &mut c);
                assert_eq!(c, r, "kernel {kernel:?}, side {side}");
            }
        }
    }
}

/// The no-NaN invariant the branchless engine relies on: products and
/// Floyd-Warshall closures over `[0, ∞]` inputs never produce NaN, even
/// through INF + INF sums and all-INF panels.
#[test]
fn tropical_arithmetic_never_produces_nan() {
    for &side in &[1usize, 7, 64, 65, 129] {
        for &density in &[0.0, 0.15, 1.0] {
            let a = seeded_block(side, 3, density);
            let b = seeded_block(side, 9, density);
            for kernel in ENGINE_KERNELS {
                let mut c = Block::infinity(side);
                kernels::min_plus_into_with(kernel, &a, &b, &mut c);
                assert!(
                    c.data().iter().all(|v| !v.is_nan()),
                    "kernel {kernel:?} produced NaN at side {side}, density {density}"
                );
            }
            let mut fw = a.clone();
            fw.floyd_warshall_in_place();
            assert!(fw.data().iter().all(|v| !v.is_nan()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_variants_agree((a, b) in block_pair(40)) {
        let side = a.side();
        let mut naive = Block::infinity(side);
        kernels::min_plus_into_naive(&a, &b, &mut naive);
        for kernel in ENGINE_KERNELS {
            let mut c = Block::infinity(side);
            kernels::min_plus_into_with(kernel, &a, &b, &mut c);
            prop_assert_eq!(&naive, &c, "kernel {:?}", kernel);
        }
    }

    #[test]
    fn fold_entry_points_match_two_step((a, b) in block_pair(32)) {
        // min_plus_into_self(a, b) == mat_min_assign(a ⊗ b).
        let mut folded = a.clone();
        folded.min_plus_into_self(&a, &b);
        let mut manual = a.clone();
        manual.mat_min_assign(&a.min_plus(&b));
        prop_assert_eq!(&folded, &manual);

        // min_plus_assign == two-step right product.
        let mut assigned = a.clone();
        assigned.min_plus_assign(&b);
        let mut manual = a.clone();
        let prod = a.min_plus(&b);
        manual.mat_min_assign(&prod);
        prop_assert_eq!(&assigned, &manual);

        // min_plus_left_assign == two-step left product.
        let mut left = a.clone();
        left.min_plus_left_assign(&b);
        let mut manual = a.clone();
        manual.mat_min_assign(&b.min_plus(&a));
        prop_assert_eq!(&left, &manual);
    }

    #[test]
    fn fw_variants_agree(a in block_strategy(40)) {
        let mut seq = a.clone();
        let mut par = a;
        kernels::floyd_warshall_in_place(&mut seq);
        kernels::floyd_warshall_in_place_parallel(&mut par);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn fw_is_idempotent(a in block_strategy(32)) {
        let mut once = a;
        once.floyd_warshall_in_place();
        let mut twice = once.clone();
        twice.floyd_warshall_in_place();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn fw_is_monotone_tightening(a in block_strategy(24)) {
        let mut closed = a.clone();
        closed.floyd_warshall_in_place();
        for i in 0..a.side() {
            for j in 0..a.side() {
                prop_assert!(closed.get(i, j) <= a.get(i, j));
            }
        }
    }

    #[test]
    fn fw_fixpoint_absorbs_squaring(a in block_strategy(24)) {
        // FW(A) is closed: min(FW(A), FW(A) ⊗ FW(A)) = FW(A).
        let mut closed = a;
        closed.floyd_warshall_in_place();
        let mut squared = closed.clone();
        squared.min_plus_assign(&closed.clone());
        prop_assert_eq!(squared, closed);
    }

    #[test]
    fn matmin_is_idempotent_commutative_associative((a, b) in block_pair(24)) {
        let mut ab = a.clone();
        ab.mat_min_assign(&b);
        let mut ba = b.clone();
        ba.mat_min_assign(&a);
        prop_assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.mat_min_assign(&a);
        prop_assert_eq!(&aa, &a);
    }

    #[test]
    fn identity_is_neutral(a in block_strategy(24)) {
        let e = Block::identity(a.side());
        prop_assert_eq!(a.min_plus(&e), a.clone());
        prop_assert_eq!(e.min_plus(&a), a);
    }

    #[test]
    fn product_distributes_over_min((a, b) in block_pair(16)) {
        // a ⊗ min(b, c) = min(a⊗b, a⊗c) — with c = identity-ish variant.
        let c = b.transpose();
        let mut bc = b.clone();
        bc.mat_min_assign(&c);
        let lhs = a.min_plus(&bc);
        let mut rhs = a.min_plus(&b);
        rhs.mat_min_assign(&a.min_plus(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn transpose_antihomomorphism((a, b) in block_pair(16)) {
        // (a ⊗ b)ᵀ = bᵀ ⊗ aᵀ.
        let lhs = a.min_plus(&b).transpose();
        let rhs = b.transpose().min_plus(&a.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn serialization_roundtrip(a in block_strategy(32)) {
        let back = Block::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn fw_update_outer_never_loosens(a in block_strategy(24)) {
        let b = a.side();
        let col: Vec<f64> = (0..b).map(|i| if i % 3 == 0 { INF } else { i as f64 }).collect();
        let mut updated = a.clone();
        updated.fw_update_outer(&col, &col);
        for i in 0..b {
            for j in 0..b {
                prop_assert!(updated.get(i, j) <= a.get(i, j));
            }
        }
    }
}
