//! Property-based tests of the kernel algebra: the invariants DESIGN.md
//! commits to (semiring laws, fixpoints, kernel-variant agreement).

use apsp_blockmat::{kernels, Block, INF};
use proptest::prelude::*;

/// Strategy: a random block with INF holes, zero diagonal.
fn block_strategy(max_b: usize) -> impl Strategy<Value = Block> {
    (1..=max_b, any::<u64>(), 0.1f64..0.9).prop_map(|(b, seed, density)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        Block::from_fn(b, |i, j| {
            if i == j {
                0.0
            } else if next() < density {
                (next() * 50.0 * 1024.0).round() / 1024.0 // dyadic: exact min-plus
            } else {
                INF
            }
        })
    })
}

/// Two same-sized random blocks.
fn block_pair(max_b: usize) -> impl Strategy<Value = (Block, Block)> {
    (1..=max_b, any::<u64>(), any::<u64>()).prop_map(|(b, s1, s2)| {
        let mk = |seed: u64| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            Block::from_fn(b, |i, j| {
                if i == j {
                    0.0
                } else if next() < 0.5 {
                    (next() * 50.0 * 1024.0).round() / 1024.0
                } else {
                    INF
                }
            })
        };
        (mk(s1), mk(s2))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_variants_agree((a, b) in block_pair(40)) {
        let side = a.side();
        let mut naive = Block::infinity(side);
        let mut tiled = Block::infinity(side);
        let mut par = Block::infinity(side);
        kernels::min_plus_into_naive(&a, &b, &mut naive);
        kernels::min_plus_into(&a, &b, &mut tiled);
        kernels::min_plus_into_parallel(&a, &b, &mut par);
        prop_assert_eq!(&naive, &tiled);
        prop_assert_eq!(&naive, &par);
    }

    #[test]
    fn fw_variants_agree(a in block_strategy(40)) {
        let mut seq = a.clone();
        let mut par = a;
        kernels::floyd_warshall_in_place(&mut seq);
        kernels::floyd_warshall_in_place_parallel(&mut par);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn fw_is_idempotent(a in block_strategy(32)) {
        let mut once = a;
        once.floyd_warshall_in_place();
        let mut twice = once.clone();
        twice.floyd_warshall_in_place();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn fw_is_monotone_tightening(a in block_strategy(24)) {
        let mut closed = a.clone();
        closed.floyd_warshall_in_place();
        for i in 0..a.side() {
            for j in 0..a.side() {
                prop_assert!(closed.get(i, j) <= a.get(i, j));
            }
        }
    }

    #[test]
    fn fw_fixpoint_absorbs_squaring(a in block_strategy(24)) {
        // FW(A) is closed: min(FW(A), FW(A) ⊗ FW(A)) = FW(A).
        let mut closed = a;
        closed.floyd_warshall_in_place();
        let mut squared = closed.clone();
        squared.min_plus_assign(&closed.clone());
        prop_assert_eq!(squared, closed);
    }

    #[test]
    fn matmin_is_idempotent_commutative_associative((a, b) in block_pair(24)) {
        let mut ab = a.clone();
        ab.mat_min_assign(&b);
        let mut ba = b.clone();
        ba.mat_min_assign(&a);
        prop_assert_eq!(&ab, &ba);
        let mut aa = a.clone();
        aa.mat_min_assign(&a);
        prop_assert_eq!(&aa, &a);
    }

    #[test]
    fn identity_is_neutral(a in block_strategy(24)) {
        let e = Block::identity(a.side());
        prop_assert_eq!(a.min_plus(&e), a.clone());
        prop_assert_eq!(e.min_plus(&a), a);
    }

    #[test]
    fn product_distributes_over_min((a, b) in block_pair(16)) {
        // a ⊗ min(b, c) = min(a⊗b, a⊗c) — with c = identity-ish variant.
        let c = b.transpose();
        let mut bc = b.clone();
        bc.mat_min_assign(&c);
        let lhs = a.min_plus(&bc);
        let mut rhs = a.min_plus(&b);
        rhs.mat_min_assign(&a.min_plus(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn transpose_antihomomorphism((a, b) in block_pair(16)) {
        // (a ⊗ b)ᵀ = bᵀ ⊗ aᵀ.
        let lhs = a.min_plus(&b).transpose();
        let rhs = b.transpose().min_plus(&a.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn serialization_roundtrip(a in block_strategy(32)) {
        let back = Block::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn fw_update_outer_never_loosens(a in block_strategy(24)) {
        let b = a.side();
        let col: Vec<f64> = (0..b).map(|i| if i % 3 == 0 { INF } else { i as f64 }).collect();
        let mut updated = a.clone();
        updated.fw_update_outer(&col, &col);
        for i in 0..b {
            for j in 0..b {
                prop_assert!(updated.get(i, j) <= a.get(i, j));
            }
        }
    }
}
