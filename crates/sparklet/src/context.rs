//! The driver-side entry point: context, configuration, job execution.

use crate::chaos::{ChaosConfig, ChaosState};
use crate::error::SparkResult;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::rdd::{Rdd, RddInner};
use crate::shuffle::ShuffleDep;
use crate::sidechannel::SideChannel;
use crate::size::EstimateSize;
use crate::{Broadcast, Data};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag for jobs running on a [`SparkContext`].
///
/// Clone it, hand one copy to the code driving the solve (via
/// [`SparkContext::install_cancel_token`]) and keep the other; calling
/// [`CancelToken::cancel`] makes the next task launch on that context fail
/// with [`crate::SparkError::Cancelled`] *immediately* — cancellation
/// pre-empts the retry/backoff budget, so a cancelled long solve unwinds
/// within one task granule rather than one retry budget.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Engine configuration (the analogue of `SparkConf`).
#[derive(Debug, Clone)]
pub struct SparkConfig {
    /// Number of executor threads ("total cores of the cluster").
    pub num_cores: usize,
    /// Maximum attempts per task before the job fails
    /// (Spark's `spark.task.maxFailures`, default 4).
    pub max_task_attempts: usize,
    /// Base delay before a task retry, in milliseconds; each further
    /// retry doubles it (capped at 64× base). `0` disables backoff.
    pub retry_backoff_ms: u64,
    /// Where the shared-storage side channel keeps block blobs.
    pub side_channel_backend: crate::sidechannel::SideChannelBackend,
}

impl SparkConfig {
    /// Configuration with `num_cores` executor threads and default retries.
    pub fn with_cores(num_cores: usize) -> Self {
        SparkConfig {
            num_cores: num_cores.max(1),
            max_task_attempts: 4,
            retry_backoff_ms: 1,
            side_channel_backend: Default::default(),
        }
    }

    /// Sets the per-task attempt limit.
    pub fn max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Sets the base retry backoff delay (milliseconds; `0` disables).
    pub fn retry_backoff_ms(mut self, ms: u64) -> Self {
        self.retry_backoff_ms = ms;
        self
    }

    /// Stages side-channel blocks as real files under `dir` (the paper's
    /// shared-filesystem mechanism) instead of in memory.
    pub fn disk_side_channel(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.side_channel_backend = crate::sidechannel::SideChannelBackend::Disk(dir.into());
        self
    }
}

impl Default for SparkConfig {
    fn default() -> Self {
        SparkConfig::with_cores(std::thread::available_parallelism().map_or(4, |p| p.get()))
    }
}

pub(crate) struct FailurePlan {
    pending: Mutex<std::collections::HashMap<(usize, usize), usize>>,
}

impl FailurePlan {
    fn new() -> Self {
        FailurePlan {
            pending: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Consumes one pending failure for this task, if any.
    pub(crate) fn should_fail(&self, rdd: usize, partition: usize) -> bool {
        let mut map = self.pending.lock();
        match map.get_mut(&(rdd, partition)) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&(rdd, partition));
                }
                true
            }
            None => false,
        }
    }

    fn inject(&self, rdd: usize, partition: usize) {
        *self.pending.lock().entry((rdd, partition)).or_insert(0) += 1;
    }
}

/// Shared engine state behind [`SparkContext`].
pub(crate) struct CtxInner {
    pub(crate) pool: rayon::ThreadPool,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) side: SideChannel,
    pub(crate) failures: FailurePlan,
    pub(crate) config: SparkConfig,
    /// Installed chaos schedule, shared with the side channel(s).
    pub(crate) chaos: Arc<Mutex<Option<Arc<ChaosState>>>>,
    /// Installed cancellation token, checked before every task attempt.
    cancel: Mutex<Option<CancelToken>>,
    next_id: AtomicUsize,
}

impl CtxInner {
    pub(crate) fn next_rdd_id(&self) -> usize {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The installed chaos schedule, if any.
    pub(crate) fn chaos(&self) -> Option<Arc<ChaosState>> {
        self.chaos.lock().clone()
    }

    /// Runs one task (a partition of `rdd`'s pipelined narrow chain) with
    /// the configured retry budget and exponential backoff between
    /// attempts. Lineage recovery = recompute. A task that exhausts its
    /// budget fails the job with the final error wrapped in scheduling
    /// context ([`crate::SparkError::TaskFailed`]).
    pub(crate) fn run_task<T: Data>(
        &self,
        rdd: &Arc<RddInner<T>>,
        partition: usize,
    ) -> SparkResult<Vec<T>> {
        let max = self.config.max_task_attempts;
        let mut attempt = 0;
        loop {
            // Cancellation outranks the retry budget: a cancelled context
            // refuses to launch (or re-launch) any task, so a long solve
            // unwinds within one task granule instead of one backoff cycle.
            if let Some(token) = self.cancel.lock().as_ref() {
                if token.is_cancelled() {
                    return Err(crate::SparkError::Cancelled {
                        reason: "cancel token tripped".to_string(),
                    });
                }
            }
            self.metrics.add(&self.metrics.tasks, 1);
            match rdd.partition_data(partition) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if attempt >= max {
                        return Err(e.with_task_context(rdd.name, rdd.id, partition, attempt));
                    }
                    self.metrics.add(&self.metrics.task_retries, 1);
                    let base = self.config.retry_backoff_ms;
                    if base > 0 {
                        let factor = 1u64 << (attempt as u32 - 1).min(6);
                        std::thread::sleep(std::time::Duration::from_millis(base * factor));
                    }
                }
            }
        }
    }

    /// Runs an action: materializes upstream shuffles in topological order
    /// (each is one stage), then evaluates the final stage's partitions in
    /// parallel on the executor pool.
    pub(crate) fn run_action<T: Data, R: Send>(
        &self,
        rdd: &Arc<RddInner<T>>,
        f: impl Fn(usize, Vec<T>) -> R + Send + Sync,
    ) -> SparkResult<Vec<R>> {
        let mut order = Vec::new();
        let mut seen = HashSet::new();
        collect_shuffle_deps(&rdd.upstream, &mut seen, &mut order);
        for dep in &order {
            dep.materialize()?;
        }
        self.metrics.add(&self.metrics.jobs, 1);
        self.metrics.add(&self.metrics.stages, 1);
        self.pool.install(|| {
            (0..rdd.parts)
                .into_par_iter()
                .map(|p| self.run_task(rdd, p).map(|data| f(p, data)))
                .collect()
        })
    }
}

fn collect_shuffle_deps(
    deps: &[Arc<dyn ShuffleDep>],
    seen: &mut HashSet<usize>,
    order: &mut Vec<Arc<dyn ShuffleDep>>,
) {
    for dep in deps {
        if seen.contains(&dep.dep_id()) {
            continue;
        }
        collect_shuffle_deps(dep.upstream(), seen, order);
        if seen.insert(dep.dep_id()) {
            order.push(dep.clone());
        }
    }
}

/// The driver handle (the analogue of `SparkContext` / `sc`). Cheap to
/// clone; all clones share executors, metrics and the side channel.
#[derive(Clone)]
pub struct SparkContext {
    pub(crate) inner: Arc<CtxInner>,
}

impl SparkContext {
    /// Starts an engine with the given configuration.
    pub fn new(config: SparkConfig) -> Self {
        SparkContext::with_shared_metrics(config, Arc::new(Metrics::default()))
    }

    /// Starts an engine whose counters are recorded into an *existing*
    /// [`Metrics`] instance. This is how a long-running service gives each
    /// solve job its own context (own cancel token, own chaos schedule,
    /// own side channel) while keeping one aggregate, server-wide metrics
    /// view across all of them.
    pub fn with_shared_metrics(config: SparkConfig, metrics: Arc<Metrics>) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(config.num_cores)
            .thread_name(|i| format!("sparklet-exec-{i}"))
            .build()
            .expect("failed to build executor pool");
        let chaos: Arc<Mutex<Option<Arc<ChaosState>>>> = Arc::new(Mutex::new(None));
        SparkContext {
            inner: Arc::new(CtxInner {
                pool,
                side: SideChannel::new(
                    metrics.clone(),
                    config.side_channel_backend.clone(),
                    chaos.clone(),
                )
                .expect("cannot create side-channel directory"),
                metrics,
                failures: FailurePlan::new(),
                config,
                chaos,
                cancel: Mutex::new(None),
                next_id: AtomicUsize::new(0),
            }),
        }
    }

    /// The shared [`Metrics`] instance backing this context's counters.
    /// Pass it to [`SparkContext::with_shared_metrics`] to build further
    /// contexts that aggregate into the same counters.
    pub fn shared_metrics(&self) -> Arc<Metrics> {
        self.inner.metrics.clone()
    }

    /// Installs a cancellation token: every subsequent task launch on this
    /// context first checks it and fails with
    /// [`crate::SparkError::Cancelled`] once [`CancelToken::cancel`] has
    /// been called (pre-empting retries and backoff). Replaces any
    /// previously installed token.
    pub fn install_cancel_token(&self, token: CancelToken) {
        *self.inner.cancel.lock() = Some(token);
    }

    /// Removes the installed cancellation token; subsequent tasks launch
    /// unconditionally.
    pub fn clear_cancel_token(&self) {
        *self.inner.cancel.lock() = None;
    }

    /// Number of executor threads.
    pub fn num_cores(&self) -> usize {
        self.inner.config.num_cores
    }

    /// Distributes a local collection into `parts` partitions
    /// (contiguous chunks, like Spark's `parallelize`).
    pub fn parallelize<T: Data>(&self, items: Vec<T>, parts: usize) -> Rdd<T> {
        let parts = parts.max(1);
        let items = Arc::new(items);
        let n = items.len();
        let compute = {
            let items = items.clone();
            move |p: usize| {
                let lo = p * n / parts;
                let hi = (p + 1) * n / parts;
                Ok(items[lo..hi].to_vec())
            }
        };
        Rdd::new_source(self.inner.clone(), parts, "parallelize", Box::new(compute))
    }

    /// Distributes key-value pairs *already arranged by* `partitioner`
    /// (used to load the blocked adjacency matrix with a chosen layout
    /// without paying a shuffle, like constructing an RDD then
    /// `partitionBy` in one step).
    pub fn parallelize_by<K: crate::Key, V: Data>(
        &self,
        items: Vec<(K, V)>,
        partitioner: Arc<dyn crate::Partitioner<K>>,
    ) -> Rdd<(K, V)> {
        let parts = partitioner.num_partitions();
        let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
        for (k, v) in items {
            let b = partitioner.partition(&k);
            buckets[b].push((k, v));
        }
        let buckets = Arc::new(buckets);
        let compute = {
            let buckets = buckets.clone();
            move |p: usize| Ok(buckets[p].clone())
        };
        let rdd = Rdd::new_source(
            self.inner.clone(),
            parts,
            "parallelize_by",
            Box::new(compute),
        );
        rdd.set_partitioner_identity(partitioner.identity());
        rdd
    }

    /// Union of any number of RDDs. Follows Spark semantics: the result has
    /// the concatenation of all input partitions and **no** partitioner —
    /// the partition-blowup behaviour the paper's Blocked In-Memory solver
    /// must repartition away (§5.2).
    pub fn union<T: Data>(&self, rdds: &[Rdd<T>]) -> Rdd<T> {
        assert!(!rdds.is_empty(), "union of zero RDDs");
        rdds[0].union_all(&rdds[1..])
    }

    /// Creates a broadcast variable; charges its payload to the broadcast
    /// byte counter once per executor-core (matching Spark's worst case
    /// that the paper works around: "each task created by an executor
    /// maintains its local copy of the broadcast variables", §4.5).
    pub fn broadcast<T: Data + EstimateSize>(&self, value: T) -> Broadcast<T> {
        let bytes = value.estimate_bytes() as u64 * self.inner.config.num_cores as u64;
        self.inner
            .metrics
            .add(&self.inner.metrics.broadcast_bytes, bytes);
        Broadcast::new(value)
    }

    /// The shared-persistent-storage side channel (GPFS stand-in).
    pub fn side_channel(&self) -> &SideChannel {
        &self.inner.side
    }

    /// Opens an additional disk-backed [`SideChannel`] under `dir`, sharing
    /// this context's metrics and chaos schedule. Used for checkpoint
    /// directories, which must stay separate from the per-round staging
    /// blobs (the solvers assert the main channel is empty after a solve).
    pub fn open_side_channel(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> SparkResult<SideChannel> {
        SideChannel::new(
            self.inner.metrics.clone(),
            crate::sidechannel::SideChannelBackend::Disk(dir.into()),
            self.inner.chaos.clone(),
        )
    }

    /// Installs a deterministic chaos schedule: every task launch and
    /// side-channel read from now on may fault per `config`'s rates.
    /// Replaces any previously installed schedule (with fresh occurrence
    /// counters).
    pub fn install_chaos(&self, config: ChaosConfig) {
        *self.inner.chaos.lock() = Some(Arc::new(ChaosState::new(config)));
    }

    /// Removes the installed chaos schedule; subsequent operations run
    /// clean. Damage already done (deleted or corrupted blobs) persists.
    pub fn clear_chaos(&self) {
        *self.inner.chaos.lock() = None;
    }

    /// Records a committed checkpoint snapshot of `bytes` bytes.
    pub fn note_checkpoint(&self, bytes: u64) {
        self.inner
            .metrics
            .add(&self.inner.metrics.checkpoints_written, 1);
        self.inner
            .metrics
            .add(&self.inner.metrics.checkpoint_bytes, bytes);
    }

    /// Records `rounds` engine rounds skipped thanks to a resumed
    /// checkpoint.
    pub fn note_rounds_resumed(&self, rounds: u64) {
        self.inner
            .metrics
            .add(&self.inner.metrics.rounds_resumed, rounds);
    }

    /// Point-in-time copy of the engine counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Arranges for the next task computing `(rdd_id, partition)` to fail
    /// once (consumed on first trigger). Pure jobs recover via lineage.
    pub fn inject_task_failure(&self, rdd_id: usize, partition: usize) {
        self.inner.failures.inject(rdd_id, partition);
    }

    /// Convenience: collects `rdd` and asserts it succeeded. Used in docs
    /// and tests.
    pub fn collect_unwrap<T: Data>(&self, rdd: &Rdd<T>) -> Vec<T> {
        rdd.collect().expect("job failed")
    }
}

impl std::fmt::Debug for SparkContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparkContext")
            .field("num_cores", &self.inner.config.num_cores)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_preempts_tasks() {
        let ctx = SparkContext::new(SparkConfig::with_cores(2));
        let token = CancelToken::new();
        ctx.install_cancel_token(token.clone());

        // Un-tripped token: jobs run normally.
        let rdd = ctx.parallelize((0u64..16).collect::<Vec<_>>(), 4);
        assert_eq!(rdd.map(|x| x * 2).collect().unwrap().len(), 16);

        // Tripped token: the next job fails with Cancelled, without
        // consuming the retry budget.
        token.cancel();
        let before = ctx.metrics();
        let err = rdd.map(|x| x + 1).collect().unwrap_err();
        assert!(matches!(err.root(), crate::SparkError::Cancelled { .. }));
        let delta = ctx.metrics().delta(&before);
        assert_eq!(delta.tasks, 0, "cancelled tasks must not launch");
        assert_eq!(delta.task_retries, 0, "cancellation must pre-empt retries");

        // Clearing the token restores normal operation.
        ctx.clear_cancel_token();
        assert_eq!(rdd.collect().unwrap().len(), 16);
    }

    #[test]
    fn shared_metrics_aggregate_across_contexts() {
        let a = SparkContext::new(SparkConfig::with_cores(1));
        let b = SparkContext::with_shared_metrics(SparkConfig::with_cores(1), a.shared_metrics());
        a.collect_unwrap(&a.parallelize(vec![1u64, 2, 3], 1));
        b.collect_unwrap(&b.parallelize(vec![4u64, 5], 1));
        let snap = a.metrics();
        assert_eq!(snap.jobs, 2, "both contexts' jobs land in one Metrics");
        assert_eq!(snap.collected_records, 5);
    }
}
