//! Wide (shuffle) transformations: the stage boundaries of the engine.
//!
//! A shuffle materializes eagerly when the first downstream action runs:
//! the map side evaluates every parent partition, buckets records by the
//! target [`Partitioner`] (with optional map-side combining, as Spark's
//! `combineByKey` does), and the reduce side merges buckets. Record and
//! byte counts are accumulated into [`crate::Metrics`] — these are the
//! numbers behind the paper's shuffle-volume arguments.

use crate::error::SparkResult;
use crate::partitioner::Partitioner;
use crate::rdd::{Rdd, RddInner};
use crate::size::EstimateSize;
use crate::{Data, Key};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A materializable shuffle dependency (type-erased).
pub(crate) trait ShuffleDep: Send + Sync {
    /// Unique id (shares the RDD id space).
    fn dep_id(&self) -> usize;
    /// Shuffles that must materialize before this one.
    fn upstream(&self) -> &[Arc<dyn ShuffleDep>];
    /// Runs the map side and builds reduce buckets (idempotent).
    fn materialize(&self) -> SparkResult<()>;
}

type CreateFn<V, C> = Box<dyn Fn(V) -> C + Send + Sync>;
type MergeValueFn<V, C> = Box<dyn Fn(C, V) -> C + Send + Sync>;
type MergeCombinersFn<C> = Box<dyn Fn(C, C) -> C + Send + Sync>;

/// Shuffle with map-side combining (`combineByKey` family).
struct AggShuffleNode<K, V, C> {
    id: usize,
    parent: Arc<RddInner<(K, V)>>,
    partitioner: Arc<dyn Partitioner<K>>,
    create: CreateFn<V, C>,
    merge_value: MergeValueFn<V, C>,
    merge_combiners: MergeCombinersFn<C>,
    output: OnceLock<Vec<Vec<(K, C)>>>,
    upstream: Vec<Arc<dyn ShuffleDep>>,
}

impl<K, V, C> ShuffleDep for AggShuffleNode<K, V, C>
where
    K: Key + EstimateSize,
    V: Data,
    C: Data + EstimateSize,
{
    fn dep_id(&self) -> usize {
        self.id
    }

    fn upstream(&self) -> &[Arc<dyn ShuffleDep>] {
        &self.upstream
    }

    fn materialize(&self) -> SparkResult<()> {
        if self.output.get().is_some() {
            return Ok(());
        }
        let ctx = &self.parent.ctx;
        let nout = self.partitioner.num_partitions();

        // Map side: evaluate parent partitions, bucket with map-side combine.
        let map_outputs: SparkResult<Vec<Vec<HashMap<K, C>>>> = ctx.pool.install(|| {
            (0..self.parent.parts)
                .into_par_iter()
                .map(|p| {
                    let items = ctx.run_task(&self.parent, p)?;
                    let mut buckets: Vec<HashMap<K, C>> =
                        (0..nout).map(|_| HashMap::new()).collect();
                    for (k, v) in items {
                        let b = self.partitioner.partition(&k);
                        let bucket = &mut buckets[b];
                        let combined = match bucket.remove(&k) {
                            Some(c) => (self.merge_value)(c, v),
                            None => (self.create)(v),
                        };
                        bucket.insert(k, combined);
                    }
                    Ok(buckets)
                })
                .collect()
        });
        let map_outputs = map_outputs?;

        // Account the shuffle write (post-combine records cross the wire).
        let (mut records, mut bytes) = (0u64, 0u64);
        for mo in &map_outputs {
            for bucket in mo {
                for (k, c) in bucket {
                    records += 1;
                    bytes += (k.estimate_bytes() + c.estimate_bytes()) as u64;
                }
            }
        }
        ctx.metrics.add(&ctx.metrics.shuffle_records, records);
        ctx.metrics.add(&ctx.metrics.shuffle_bytes, bytes);
        ctx.metrics.add(&ctx.metrics.shuffles, 1);
        ctx.metrics.add(&ctx.metrics.stages, 1);

        // Transpose map outputs into per-reduce-bucket lists.
        let mut per_bucket: Vec<Vec<HashMap<K, C>>> = (0..nout).map(|_| Vec::new()).collect();
        for mo in map_outputs {
            for (b, bucket) in mo.into_iter().enumerate() {
                if !bucket.is_empty() {
                    per_bucket[b].push(bucket);
                }
            }
        }

        // Reduce side: merge combiners per bucket, in parallel.
        let merged: Vec<Vec<(K, C)>> = ctx.pool.install(|| {
            per_bucket
                .into_par_iter()
                .map(|maps| {
                    let mut acc: HashMap<K, C> = HashMap::new();
                    for m in maps {
                        for (k, c) in m {
                            let combined = match acc.remove(&k) {
                                Some(prev) => (self.merge_combiners)(prev, c),
                                None => c,
                            };
                            acc.insert(k, combined);
                        }
                    }
                    acc.into_iter().collect()
                })
                .collect()
        });
        let _ = self.output.set(merged);
        Ok(())
    }
}

/// Shuffle without combining (`partitionBy`): records are moved verbatim.
struct RepartitionNode<K, V> {
    id: usize,
    parent: Arc<RddInner<(K, V)>>,
    partitioner: Arc<dyn Partitioner<K>>,
    output: OnceLock<Vec<Vec<(K, V)>>>,
    upstream: Vec<Arc<dyn ShuffleDep>>,
}

impl<K, V> ShuffleDep for RepartitionNode<K, V>
where
    K: Key + EstimateSize,
    V: Data + EstimateSize,
{
    fn dep_id(&self) -> usize {
        self.id
    }

    fn upstream(&self) -> &[Arc<dyn ShuffleDep>] {
        &self.upstream
    }

    fn materialize(&self) -> SparkResult<()> {
        if self.output.get().is_some() {
            return Ok(());
        }
        let ctx = &self.parent.ctx;
        let nout = self.partitioner.num_partitions();
        type Buckets<K, V> = Vec<Vec<(K, V)>>;
        let map_outputs: SparkResult<Vec<Buckets<K, V>>> = ctx.pool.install(|| {
            (0..self.parent.parts)
                .into_par_iter()
                .map(|p| {
                    let items = ctx.run_task(&self.parent, p)?;
                    let mut buckets: Vec<Vec<(K, V)>> = (0..nout).map(|_| Vec::new()).collect();
                    for (k, v) in items {
                        let b = self.partitioner.partition(&k);
                        buckets[b].push((k, v));
                    }
                    Ok(buckets)
                })
                .collect()
        });
        let map_outputs = map_outputs?;

        let (mut records, mut bytes) = (0u64, 0u64);
        for mo in &map_outputs {
            for bucket in mo {
                for (k, v) in bucket {
                    records += 1;
                    bytes += (k.estimate_bytes() + v.estimate_bytes()) as u64;
                }
            }
        }
        ctx.metrics.add(&ctx.metrics.shuffle_records, records);
        ctx.metrics.add(&ctx.metrics.shuffle_bytes, bytes);
        ctx.metrics.add(&ctx.metrics.shuffles, 1);
        ctx.metrics.add(&ctx.metrics.stages, 1);

        let mut out: Vec<Vec<(K, V)>> = (0..nout).map(|_| Vec::new()).collect();
        for mo in map_outputs {
            for (b, bucket) in mo.into_iter().enumerate() {
                out[b].extend(bucket);
            }
        }
        let _ = self.output.set(out);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Pair-RDD transformations
// ---------------------------------------------------------------------

impl<K: Key + EstimateSize, V: Data + EstimateSize> Rdd<(K, V)> {
    /// General Spark `combineByKey`: per-key aggregation with map-side
    /// combining. `create` builds a combiner from the first value seen for
    /// a key in a map task, `merge_value` folds further values in, and
    /// `merge_combiners` merges across map tasks on the reduce side.
    ///
    /// This is the engine mechanism behind the paper's `ListAppend` /
    /// `ListUnpack` pairing step (Algorithm 3).
    pub fn combine_by_key<C: Data + EstimateSize>(
        &self,
        partitioner: Arc<dyn Partitioner<K>>,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(C, V) -> C + Send + Sync + 'static,
        merge_combiners: impl Fn(C, C) -> C + Send + Sync + 'static,
    ) -> Rdd<(K, C)> {
        let ctx = self.inner.ctx.clone();
        let node = Arc::new(AggShuffleNode {
            id: ctx.next_rdd_id(),
            parent: self.inner.clone(),
            partitioner: partitioner.clone(),
            create: Box::new(create),
            merge_value: Box::new(merge_value),
            merge_combiners: Box::new(merge_combiners),
            output: OnceLock::new(),
            upstream: self.inner.upstream.clone(),
        });
        let nout = partitioner.num_partitions();
        let compute = {
            let node = node.clone();
            move |p: usize| {
                Ok(node
                    .output
                    .get()
                    .expect("shuffle must be materialized before downstream compute")[p]
                    .clone())
            }
        };
        let rdd = Rdd::new(
            ctx,
            nout,
            "combine_by_key",
            Box::new(compute),
            vec![node as Arc<dyn ShuffleDep>],
        );
        rdd.set_partitioner_identity(partitioner.identity());
        rdd
    }

    /// Spark `reduceByKey`: merge values per key with an associative,
    /// commutative operation (map-side combined).
    pub fn reduce_by_key(
        &self,
        partitioner: Arc<dyn Partitioner<K>>,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)> {
        let f = Arc::new(f);
        let fm = f.clone();
        self.combine_by_key(
            partitioner,
            |v| v,
            move |c, v| f(c, v),
            move |a, b| fm(a, b),
        )
    }

    /// Spark `groupByKey`: gather all values per key (no pre-aggregation
    /// benefit; the full record volume crosses the shuffle).
    pub fn group_by_key(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, Vec<V>)> {
        self.combine_by_key(
            partitioner,
            |v| vec![v],
            |mut c, v| {
                c.push(v);
                c
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }

    /// Spark `partitionBy`: redistribute records according to
    /// `partitioner`. If this RDD already carries an identical partitioner
    /// identity the call is a no-op returning `self` (Spark's behaviour) —
    /// the paper's solvers rely on calling this after `union`, which drops
    /// the partitioner, so the shuffle does happen there.
    pub fn partition_by(&self, partitioner: Arc<dyn Partitioner<K>>) -> Rdd<(K, V)> {
        if self.partitioner_identity().as_ref() == Some(&partitioner.identity()) {
            return self.clone();
        }
        let ctx = self.inner.ctx.clone();
        let node = Arc::new(RepartitionNode {
            id: ctx.next_rdd_id(),
            parent: self.inner.clone(),
            partitioner: partitioner.clone(),
            output: OnceLock::new(),
            upstream: self.inner.upstream.clone(),
        });
        let nout = partitioner.num_partitions();
        let compute = {
            let node = node.clone();
            move |p: usize| {
                Ok(node
                    .output
                    .get()
                    .expect("shuffle must be materialized before downstream compute")[p]
                    .clone())
            }
        };
        let rdd = Rdd::new(
            ctx,
            nout,
            "partition_by",
            Box::new(compute),
            vec![node as Arc<dyn ShuffleDep>],
        );
        rdd.set_partitioner_identity(partitioner.identity());
        rdd
    }
}

impl<K: Key, V: Data> Rdd<(K, V)> {
    /// Transforms values, keeping keys and partitioning (narrow).
    pub fn map_values<U: Data>(&self, f: impl Fn(V) -> U + Send + Sync + 'static) -> Rdd<(K, U)> {
        let identity = self.partitioner_identity();
        let out = self.map(move |(k, v)| (k, f(v)));
        if let Some(id) = identity {
            out.set_partitioner_identity(id);
        }
        out
    }

    /// Projects keys (narrow).
    pub fn keys(&self) -> Rdd<K> {
        self.map(|(k, _)| k)
    }

    /// Projects values (narrow).
    pub fn values(&self) -> Rdd<V> {
        self.map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use crate::partitioner::{ModPartitioner, PortableHashPartitioner, StdHashPartitioner};
    use crate::{SparkConfig, SparkContext};
    use std::sync::Arc;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn reduce_by_key_sums() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, 1)).collect();
        let rdd = sc.parallelize(pairs, 8);
        let mut out = rdd
            .reduce_by_key(Arc::new(ModPartitioner::new(3)), |a, b| a + b)
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(out, vec![(0, 20), (1, 20), (2, 20), (3, 20), (4, 20)]);
    }

    #[test]
    fn combine_by_key_builds_lists() {
        let sc = ctx();
        let pairs = vec![(1u64, 10u64), (2, 20), (1, 11), (2, 21), (1, 12)];
        let rdd = sc.parallelize(pairs, 3);
        let grouped = rdd.group_by_key(Arc::new(ModPartitioner::new(2)));
        let mut out = grouped.collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 2);
        let mut v1 = out[0].1.clone();
        v1.sort();
        assert_eq!(v1, vec![10, 11, 12]);
        let mut v2 = out[1].1.clone();
        v2.sort();
        assert_eq!(v2, vec![20, 21]);
    }

    #[test]
    fn partition_by_places_keys() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..40).map(|i| (i, i * i)).collect();
        let rdd = sc.parallelize(pairs, 5);
        let parted = rdd.partition_by(Arc::new(ModPartitioner::new(4)));
        let parts = parted.glom().unwrap();
        assert_eq!(parts.len(), 4);
        for (p, content) in parts.iter().enumerate() {
            for (k, _) in content {
                assert_eq!(*k as usize % 4, p, "key {k} in wrong partition {p}");
            }
        }
    }

    #[test]
    fn partition_by_same_partitioner_is_noop() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..10).map(|i| (i, i)).collect();
        let p = Arc::new(ModPartitioner::new(4));
        let rdd = sc.parallelize(pairs, 2).partition_by(p.clone());
        let _ = rdd.collect().unwrap(); // materialize the first shuffle
        let before = sc.metrics();
        let again = rdd.partition_by(p);
        assert_eq!(again.id(), rdd.id(), "expected the same RDD back");
        let _ = again.collect().unwrap();
        let after = sc.metrics();
        assert_eq!(after.shuffles - before.shuffles, 0);
    }

    #[test]
    fn shuffle_metrics_recorded() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, i)).collect();
        let rdd = sc.parallelize(pairs, 4);
        let before = sc.metrics();
        let _ = rdd
            .reduce_by_key(Arc::new(ModPartitioner::new(4)), |a, b| a.max(b))
            .collect()
            .unwrap();
        let after = sc.metrics().delta(&before);
        assert_eq!(after.shuffles, 1);
        // Map-side combine: <= 10 keys × 4 map tasks records, not 1000.
        assert!(
            after.shuffle_records <= 40,
            "records {}",
            after.shuffle_records
        );
        assert!(after.shuffle_bytes >= after.shuffle_records * 16);
        assert_eq!(after.stages, 2); // shuffle stage + result stage
    }

    #[test]
    fn map_side_combine_reduces_traffic_vs_group_by() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..2000).map(|i| (i % 4, i)).collect();
        let rdd = sc.parallelize(pairs, 8).persist();
        let _ = rdd.count().unwrap();

        let b0 = sc.metrics();
        let _ = rdd
            .reduce_by_key(Arc::new(ModPartitioner::new(4)), |a, b| a + b)
            .collect()
            .unwrap();
        let reduced = sc.metrics().delta(&b0);

        let b1 = sc.metrics();
        let _ = rdd
            .group_by_key(Arc::new(ModPartitioner::new(4)))
            .collect()
            .unwrap();
        let grouped = sc.metrics().delta(&b1);

        assert!(
            grouped.shuffle_bytes > 10 * reduced.shuffle_bytes,
            "group_by bytes {} should dwarf reduce_by bytes {}",
            grouped.shuffle_bytes,
            reduced.shuffle_bytes
        );
    }

    #[test]
    fn shuffle_then_narrow_then_shuffle_chains() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i, 1)).collect();
        let rdd = sc.parallelize(pairs, 4);
        let first = rdd.reduce_by_key(Arc::new(ModPartitioner::new(4)), |a, b| a + b);
        let remapped = first.map(|(k, v)| (k % 3, v));
        let second = remapped.reduce_by_key(Arc::new(ModPartitioner::new(2)), |a, b| a + b);
        let mut out = second.collect().unwrap();
        out.sort();
        let total: u64 = out.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 100);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn portable_hash_partitioner_usable_in_shuffle() {
        let sc = ctx();
        let pairs: Vec<((usize, usize), u64)> = (0..8)
            .flat_map(|i| (i..8).map(move |j| ((i, j), 1)))
            .collect();
        let rdd = sc.parallelize(pairs, 4);
        let counted = rdd.reduce_by_key(Arc::new(PortableHashPartitioner::new(8)), |a, b| a + b);
        assert_eq!(counted.count().unwrap(), 36);
    }

    #[test]
    fn std_hash_partitioner_strings() {
        let sc = ctx();
        let pairs = vec![
            ("apple".to_string(), 1u64),
            ("banana".to_string(), 2),
            ("apple".to_string(), 3),
        ];
        let rdd = sc.parallelize(pairs, 2);
        let mut out = rdd
            .reduce_by_key(Arc::new(StdHashPartitioner::new(2)), |a, b| a + b)
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![("apple".to_string(), 4), ("banana".to_string(), 2)]
        );
    }

    #[test]
    fn map_values_preserves_partitioner() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..20).map(|i| (i, i)).collect();
        let p = Arc::new(ModPartitioner::new(4));
        let parted = sc.parallelize(pairs, 2).partition_by(p.clone());
        let mapped = parted.map_values(|v| v * 2);
        let _ = mapped.collect().unwrap(); // materialize the first shuffle
        let before = sc.metrics();
        let again = mapped.partition_by(p);
        let _ = again.collect().unwrap();
        assert_eq!(sc.metrics().shuffles - before.shuffles, 0);
    }

    #[test]
    fn failure_in_map_stage_recovers() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..10).map(|i| (i % 2, i)).collect();
        let source = sc.parallelize(pairs, 2);
        sc.inject_task_failure(source.id(), 0);
        let out = source
            .reduce_by_key(Arc::new(ModPartitioner::new(2)), |a, b| a + b)
            .collect()
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(sc.metrics().task_retries >= 1);
    }
}
