//! Lightweight payload-size estimation used for shuffle/broadcast byte
//! accounting (the role Spark's SizeEstimator plays).

use apsp_blockmat::{AlgBlock, ElemBlock, Matrix, PathAlgebra, PayBlock, Semiring};

/// Estimate of the serialized/in-memory footprint of a value, in bytes.
///
/// Only needs to be *proportionally* right: the paper's analysis compares
/// shuffle volumes across solvers and block sizes, so a consistent estimate
/// is sufficient.
pub trait EstimateSize {
    /// Approximate payload size in bytes.
    fn estimate_bytes(&self) -> usize;
}

macro_rules! impl_fixed {
    ($($t:ty),*) => {
        $(impl EstimateSize for $t {
            #[inline]
            fn estimate_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_fixed!(
    u8,
    u16,
    u32,
    u64,
    usize,
    i8,
    i16,
    i32,
    i64,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl EstimateSize for String {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<String>() + self.len()
    }
}

impl EstimateSize for &str {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<&str>() + self.len()
    }
}

impl<T: EstimateSize> EstimateSize for Vec<T> {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(EstimateSize::estimate_bytes).sum::<usize>()
    }
}

impl<T: EstimateSize> EstimateSize for Option<T> {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<usize>() + self.as_ref().map(EstimateSize::estimate_bytes).unwrap_or(0)
    }
}

impl<T: EstimateSize + ?Sized> EstimateSize for std::sync::Arc<T> {
    fn estimate_bytes(&self) -> usize {
        // Charge the payload: shuffling an Arc ships the data in a real
        // cluster even if it is shared in-process here.
        (**self).estimate_bytes()
    }
}

impl<A: EstimateSize, B: EstimateSize> EstimateSize for (A, B) {
    fn estimate_bytes(&self) -> usize {
        self.0.estimate_bytes() + self.1.estimate_bytes()
    }
}

impl<A: EstimateSize, B: EstimateSize, C: EstimateSize> EstimateSize for (A, B, C) {
    fn estimate_bytes(&self) -> usize {
        self.0.estimate_bytes() + self.1.estimate_bytes() + self.2.estimate_bytes()
    }
}

impl<S: Semiring> EstimateSize for ElemBlock<S> {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.size_bytes()
    }
}

impl EstimateSize for Matrix {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Matrix>() + self.order() * self.order() * 8
    }
}

impl<P: Copy + Send + Sync + 'static> EstimateSize for PayBlock<P> {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.size_bytes()
    }
}

impl<A: PathAlgebra> EstimateSize for AlgBlock<A> {
    fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_blockmat::Block;

    #[test]
    fn scalars() {
        assert_eq!(5u64.estimate_bytes(), 8);
        assert_eq!(1.5f64.estimate_bytes(), 8);
        assert_eq!(true.estimate_bytes(), 1);
    }

    #[test]
    fn composites() {
        let v = vec![1u64, 2, 3];
        assert_eq!(v.estimate_bytes(), 24 + 24);
        let t = (1usize, 2usize);
        assert_eq!(t.estimate_bytes(), 16);
        let s = String::from("abcd");
        assert_eq!(s.estimate_bytes(), 24 + 4);
    }

    #[test]
    fn block_dominated_by_payload() {
        let blk = Block::infinity(64);
        let est = blk.estimate_bytes();
        assert!(est >= 64 * 64 * 8);
        assert!(est < 64 * 64 * 8 + 128);
    }

    #[test]
    fn keyed_block_record() {
        let rec = ((1usize, 2usize), Block::infinity(32));
        assert!(rec.estimate_bytes() >= 16 + 32 * 32 * 8);
    }
}
