//! Error types surfaced by jobs.

use std::fmt;

/// Errors a Spark job (action) can fail with.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new failure modes (checkpoint corruption, transient storage errors,
/// …) can be added without breaking consumers.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparkError {
    /// A task failure injected by the test harness (consumed on retry).
    InjectedFailure {
        /// RDD whose task failed.
        rdd: usize,
        /// Partition index of the failed task.
        partition: usize,
    },
    /// A side-channel blob was missing when a task (re)ran — the failure
    /// mode that makes the paper's collect/broadcast solvers "impure".
    SideChannelMiss {
        /// Key of the missing blob.
        key: String,
        /// Which backend was consulted (`"memory"` or `"disk:<dir>"`).
        backend: String,
        /// Existing keys closest to the missing one (longest shared
        /// prefix), to make typo'd or stale keys obvious in logs.
        nearest: Vec<String>,
    },
    /// A side-channel blob exists under this key but with a different type.
    SideChannelType {
        /// Key of the mistyped blob.
        key: String,
    },
    /// A side-channel blob failed an integrity check (framing, checksum)
    /// when read back — corrupted at rest or in flight.
    SideChannelCorrupt {
        /// Key of the corrupted blob.
        key: String,
        /// What exactly failed to verify.
        detail: String,
    },
    /// A transient storage error: the read failed this time but a retry
    /// may succeed (the chaos harness uses this to model flaky I/O).
    SideChannelTransient {
        /// Key whose read hit the transient fault.
        key: String,
    },
    /// A task exhausted its retry budget. Wraps the error from the final
    /// attempt with scheduling context (which RDD, partition, attempts).
    TaskFailed {
        /// Human-readable name of the RDD whose task failed.
        rdd_name: String,
        /// Numeric id of the RDD whose task failed.
        rdd: usize,
        /// Partition index of the failed task.
        partition: usize,
        /// Number of attempts made before giving up.
        attempts: usize,
        /// The error from the last attempt.
        source: Box<SparkError>,
    },
    /// The job was cancelled from outside (e.g. a service `DELETE
    /// /jobs/<id>` or a shutdown drain). Cancellation pre-empts the retry
    /// budget: a cancelled task fails immediately, without backoff.
    Cancelled {
        /// Why the job was cancelled (who asked).
        reason: String,
    },
    /// Error raised by user code inside a `try_*` transformation.
    User(String),
}

impl SparkError {
    /// Strip [`SparkError::TaskFailed`] context layers and return the
    /// underlying cause. On any other variant this is the error itself.
    pub fn root(&self) -> &SparkError {
        let mut err = self;
        while let SparkError::TaskFailed { source, .. } = err {
            err = source;
        }
        err
    }

    /// Wrap this error with task scheduling context (used by the driver
    /// when a task exhausts its retry budget). Idempotent per layer: an
    /// error already carrying `TaskFailed` context for the same rdd and
    /// partition is returned unchanged.
    pub(crate) fn with_task_context(
        self,
        rdd_name: &str,
        rdd: usize,
        partition: usize,
        attempts: usize,
    ) -> SparkError {
        match &self {
            SparkError::TaskFailed {
                rdd: r,
                partition: p,
                ..
            } if *r == rdd && *p == partition => self,
            _ => SparkError::TaskFailed {
                rdd_name: rdd_name.to_string(),
                rdd,
                partition,
                attempts,
                source: Box::new(self),
            },
        }
    }
}

impl fmt::Display for SparkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkError::InjectedFailure { rdd, partition } => {
                write!(
                    f,
                    "injected failure in task (rdd {rdd}, partition {partition})"
                )
            }
            SparkError::SideChannelMiss {
                key,
                backend,
                nearest,
            } => {
                write!(
                    f,
                    "side-channel blob '{key}' is missing from {backend} backend \
                     (storage is not fault-tolerant)"
                )?;
                if !nearest.is_empty() {
                    write!(f, "; nearest existing keys: {}", nearest.join(", "))?;
                }
                Ok(())
            }
            SparkError::SideChannelType { key } => {
                write!(f, "side-channel blob '{key}' has unexpected type")
            }
            SparkError::SideChannelCorrupt { key, detail } => {
                write!(f, "side-channel blob '{key}' is corrupted: {detail}")
            }
            SparkError::SideChannelTransient { key } => {
                write!(
                    f,
                    "transient storage error reading side-channel blob '{key}'"
                )
            }
            SparkError::TaskFailed {
                rdd_name,
                rdd,
                partition,
                attempts,
                source,
            } => {
                write!(
                    f,
                    "task failed (rdd '{rdd_name}' #{rdd}, partition {partition}, \
                     {attempts} attempts): {source}"
                )
            }
            SparkError::Cancelled { reason } => write!(f, "job cancelled: {reason}"),
            SparkError::User(msg) => write!(f, "user error: {msg}"),
        }
    }
}

impl std::error::Error for SparkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparkError::TaskFailed { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Result alias for job outcomes.
pub type SparkResult<T> = Result<T, SparkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_unwraps_nested_task_context() {
        let inner = SparkError::SideChannelTransient { key: "k".into() };
        let wrapped = inner
            .clone()
            .with_task_context("stage", 7, 2, 4)
            .with_task_context("outer", 9, 0, 4);
        assert_eq!(wrapped.root(), &inner);
    }

    #[test]
    fn task_context_is_idempotent_per_site() {
        let inner = SparkError::User("boom".into());
        let once = inner.clone().with_task_context("stage", 7, 2, 4);
        let twice = once.clone().with_task_context("stage", 7, 2, 4);
        assert_eq!(once, twice);
    }

    #[test]
    fn display_threads_task_context() {
        let err = SparkError::SideChannelMiss {
            key: "cb:0:diag".into(),
            backend: "memory".into(),
            nearest: vec!["cb:1:diag".into()],
        }
        .with_task_context("offcol", 12, 3, 4);
        let text = err.to_string();
        assert!(text.contains("rdd 'offcol' #12"));
        assert!(text.contains("partition 3"));
        assert!(text.contains("4 attempts"));
        assert!(text.contains("cb:0:diag"));
        assert!(text.contains("nearest existing keys: cb:1:diag"));
    }
}
