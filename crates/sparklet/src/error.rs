//! Error types surfaced by jobs.

use std::fmt;

/// Errors a Spark job (action) can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparkError {
    /// A task failure injected by the test harness (consumed on retry).
    InjectedFailure {
        /// RDD whose task failed.
        rdd: usize,
        /// Partition index of the failed task.
        partition: usize,
    },
    /// A side-channel blob was missing when a task (re)ran — the failure
    /// mode that makes the paper's collect/broadcast solvers "impure".
    SideChannelMiss {
        /// Key of the missing blob.
        key: String,
    },
    /// A side-channel blob exists under this key but with a different type.
    SideChannelType {
        /// Key of the mistyped blob.
        key: String,
    },
    /// Error raised by user code inside a `try_*` transformation.
    User(String),
}

impl fmt::Display for SparkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkError::InjectedFailure { rdd, partition } => {
                write!(
                    f,
                    "injected failure in task (rdd {rdd}, partition {partition})"
                )
            }
            SparkError::SideChannelMiss { key } => {
                write!(
                    f,
                    "side-channel blob '{key}' is missing (storage is not fault-tolerant)"
                )
            }
            SparkError::SideChannelType { key } => {
                write!(f, "side-channel blob '{key}' has unexpected type")
            }
            SparkError::User(msg) => write!(f, "user error: {msg}"),
        }
    }
}

impl std::error::Error for SparkError {}

/// Result alias for job outcomes.
pub type SparkResult<T> = Result<T, SparkError>;
