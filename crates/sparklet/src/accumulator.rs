//! Accumulators: write-only-from-tasks counters read at the driver
//! (Spark's `sc.longAccumulator` family).
//!
//! As in Spark, increments from *retried* tasks are re-applied — an
//! accumulator counts attempts, not successes, unless the application
//! makes its updates idempotent. The fault-injection test below pins that
//! (documented) semantics down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone `u64` accumulator.
#[derive(Clone, Default)]
pub struct LongAccumulator {
    value: Arc<AtomicU64>,
}

impl LongAccumulator {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` (callable from tasks).
    pub fn add(&self, v: u64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value (driver side).
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An `f64` accumulator (sum), stored as bits CAS.
#[derive(Clone, Default)]
pub struct DoubleAccumulator {
    bits: Arc<AtomicU64>,
}

impl DoubleAccumulator {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` (callable from tasks).
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value (driver side).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparkConfig, SparkContext};

    #[test]
    fn counts_across_tasks() {
        let sc = SparkContext::new(SparkConfig::with_cores(4));
        let acc = LongAccumulator::new();
        let rdd = sc.parallelize((0u64..100).collect(), 8);
        let a = acc.clone();
        let _ = rdd
            .map(move |x| {
                if x % 3 == 0 {
                    a.add(1);
                }
                x
            })
            .count()
            .unwrap();
        assert_eq!(acc.value(), 34);
    }

    #[test]
    fn double_accumulator_sums() {
        let sc = SparkContext::new(SparkConfig::with_cores(4));
        let acc = DoubleAccumulator::new();
        let rdd = sc.parallelize((1u64..=10).collect(), 4);
        let a = acc.clone();
        let _ = rdd.map(move |x| a.add(x as f64)).count().unwrap();
        assert!((acc.value() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn retried_tasks_double_count_as_documented() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let acc = LongAccumulator::new();
        let a = acc.clone();
        let source = sc.parallelize(vec![1u64, 2], 1);
        let mapped = source.map(move |x| {
            a.add(1);
            x
        });
        // A downstream task that fails *after* consuming its input the
        // first time around (a mid-task crash): the upstream map runs
        // twice and its accumulator updates are applied twice.
        let fail_once = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let downstream = mapped.try_map(move |x| {
            if x == 2 && fail_once.swap(false, std::sync::atomic::Ordering::SeqCst) {
                Err(crate::SparkError::User("mid-task crash".into()))
            } else {
                Ok(x * 2)
            }
        });
        let _ = downstream.collect().unwrap();
        // 2 elements × 2 attempts = 4 increments (Spark semantics).
        assert_eq!(acc.value(), 4);
        acc.reset();
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let acc = DoubleAccumulator::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let a = acc.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        a.add(0.5);
                    }
                });
            }
        });
        assert!((acc.value() - 4000.0).abs() < 1e-9);
    }
}
