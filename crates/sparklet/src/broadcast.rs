//! Broadcast variables.

use std::ops::Deref;
use std::sync::Arc;

/// A read-only value shipped once to every executor (Spark `sc.broadcast`).
///
/// In-process this is an [`Arc`]; the byte accounting happens at creation
/// time in [`SparkContext::broadcast`](crate::SparkContext::broadcast),
/// charging one copy per executor core — the pySpark worst case the paper
/// works around by using shared storage instead (§4.5).
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Broadcast<T> {
    pub(crate) fn new(value: T) -> Self {
        Broadcast {
            value: Arc::new(value),
        }
    }

    /// Accesses the broadcast value (Spark's `.value`).
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast {
            value: self.value.clone(),
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use crate::{SparkConfig, SparkContext};

    #[test]
    fn broadcast_visible_in_tasks() {
        let sc = SparkContext::new(SparkConfig::with_cores(3));
        let table = sc.broadcast(vec![10u64, 20, 30]);
        let rdd = sc.parallelize(vec![0usize, 1, 2], 3);
        let t = table.clone();
        let mut out = rdd.map(move |i| t.value()[i]).collect().unwrap();
        out.sort();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn broadcast_bytes_charged_per_core() {
        let sc = SparkContext::new(SparkConfig::with_cores(4));
        let before = sc.metrics();
        let _b = sc.broadcast(vec![0u64; 100]); // 824 bytes payload
        let after = sc.metrics().delta(&before);
        assert_eq!(after.broadcast_bytes, 824 * 4);
    }
}
