//! A byte-budgeted LRU cache for blobs fetched from slow storage.
//!
//! The closure store (`apsp-core`) answers point queries against on-disk
//! block matrices far larger than memory; this cache is the admission
//! layer in front of the disk reads. Policy:
//!
//! * every entry carries an explicit byte weight (the decoded block's
//!   footprint), and the cache evicts least-recently-used entries until
//!   the resident total fits the budget;
//! * a new entry is **always admitted**, even when it alone exceeds the
//!   budget — a point query must be answerable under any budget, the
//!   oversized block simply becomes the next eviction victim;
//! * hits, misses, and evictions are counted on the shared [`Metrics`]
//!   (`store_cache_*` counters) when the cache is built with
//!   [`ByteLruCache::with_metrics`], so cache behaviour is observable
//!   through the same [`MetricsSnapshot`](crate::MetricsSnapshot) pipeline
//!   as the engine counters.

use crate::metrics::Metrics;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

struct Entry<V> {
    value: Arc<V>,
    bytes: u64,
    stamp: u64,
}

/// An LRU cache bounded by total entry bytes rather than entry count.
///
/// Values are handed out as [`Arc`]s, so an entry evicted while a caller
/// still holds it stays alive for that caller; the cache merely stops
/// accounting for it.
pub struct ByteLruCache<K, V> {
    entries: HashMap<K, Entry<V>>,
    /// Recency index: stamp → key, oldest first. Stamps are unique
    /// (monotonic clock), so this is a faithful LRU order.
    recency: BTreeMap<u64, K>,
    budget: u64,
    used: u64,
    clock: u64,
    metrics: Option<Arc<Metrics>>,
}

impl<K: Eq + Hash + Clone, V> ByteLruCache<K, V> {
    /// An empty cache with the given byte budget and no metrics wiring.
    pub fn new(budget_bytes: u64) -> Self {
        ByteLruCache {
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            budget: budget_bytes,
            used: 0,
            clock: 0,
            metrics: None,
        }
    }

    /// An empty cache that counts hits, misses, and evictions on the
    /// `store_cache_*` counters of `metrics`.
    pub fn with_metrics(budget_bytes: u64, metrics: Arc<Metrics>) -> Self {
        let mut c = Self::new(budget_bytes);
        c.metrics = Some(metrics);
        c
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Bytes currently accounted to resident entries.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn note(&self, field: impl Fn(&Metrics) -> &std::sync::atomic::AtomicU64, v: u64) {
        if let Some(m) = &self.metrics {
            m.add(field(m), v);
        }
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts one hit or
    /// one miss.
    pub fn get(&mut self, key: &K) -> Option<Arc<V>> {
        let stamp = self.tick();
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.recency.remove(&entry.stamp);
                entry.stamp = stamp;
                let value = Arc::clone(&entry.value);
                self.recency.insert(stamp, key.clone());
                self.note(|m| &m.store_cache_hits, 1);
                Some(value)
            }
            None => {
                self.note(|m| &m.store_cache_misses, 1);
                None
            }
        }
    }

    /// Inserts `value` under `key` with an explicit byte weight, evicting
    /// least-recently-used entries until the budget holds (or the cache is
    /// otherwise empty — the new entry is always admitted). Replacing an
    /// existing key re-weights it. Returns the shared handle to the
    /// inserted value.
    pub fn insert(&mut self, key: K, value: V, bytes: u64) -> Arc<V> {
        if let Some(old) = self.entries.remove(&key) {
            self.recency.remove(&old.stamp);
            self.used -= old.bytes;
        }
        while self.used + bytes > self.budget && !self.entries.is_empty() {
            self.evict_lru();
        }
        let value = Arc::new(value);
        let stamp = self.tick();
        self.entries.insert(
            key.clone(),
            Entry {
                value: Arc::clone(&value),
                bytes,
                stamp,
            },
        );
        self.recency.insert(stamp, key);
        self.used += bytes;
        value
    }

    fn evict_lru(&mut self) {
        // BTreeMap iterates stamps in ascending order: first = oldest.
        let Some((&stamp, _)) = self.recency.iter().next() else {
            return;
        };
        if let Some(key) = self.recency.remove(&stamp) {
            if let Some(entry) = self.entries.remove(&key) {
                self.used -= entry.bytes;
                self.note(|m| &m.store_cache_evictions, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(m: &Arc<Metrics>) -> (u64, u64, u64) {
        let s = m.snapshot();
        (
            s.store_cache_hits,
            s.store_cache_misses,
            s.store_cache_evictions,
        )
    }

    #[test]
    fn byte_accounting_is_exact_under_insert_and_evict() {
        let mut c: ByteLruCache<u32, Vec<u8>> = ByteLruCache::new(100);
        c.insert(1, vec![0; 40], 40);
        c.insert(2, vec![0; 40], 40);
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.len(), 2);
        // 40 + 40 + 40 > 100: key 1 (LRU) must go.
        c.insert(3, vec![0; 40], 40);
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.len(), 2);
        assert!(c.get(&1).is_none());
        assert!(c.get(&2).is_some());
        assert!(c.get(&3).is_some());
    }

    #[test]
    fn eviction_follows_recency_not_insertion_order() {
        let mut c: ByteLruCache<u32, u8> = ByteLruCache::new(3);
        c.insert(1, 10, 1);
        c.insert(2, 20, 1);
        c.insert(3, 30, 1);
        // Touch 1: the LRU entry is now 2.
        assert_eq!(c.get(&1).as_deref(), Some(&10));
        c.insert(4, 40, 1);
        assert!(c.get(&2).is_none(), "2 was least recently used");
        assert_eq!(c.get(&1).as_deref(), Some(&10));
        assert_eq!(c.get(&3).as_deref(), Some(&30));
        assert_eq!(c.get(&4).as_deref(), Some(&40));
    }

    #[test]
    fn oversized_entry_is_admitted_alone() {
        let mut c: ByteLruCache<u32, u8> = ByteLruCache::new(10);
        c.insert(1, 1, 4);
        c.insert(2, 2, 4);
        // 25 bytes > budget: everything else evicts, but the entry lands.
        c.insert(3, 3, 25);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 25);
        assert_eq!(c.get(&3).as_deref(), Some(&3));
    }

    #[test]
    fn replacing_a_key_reweights_it() {
        let mut c: ByteLruCache<u32, u8> = ByteLruCache::new(100);
        c.insert(1, 1, 30);
        c.insert(1, 2, 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(c.get(&1).as_deref(), Some(&2));
    }

    #[test]
    fn zero_budget_keeps_only_the_latest_entry() {
        let mut c: ByteLruCache<u32, u8> = ByteLruCache::new(0);
        c.insert(1, 1, 8);
        assert_eq!(c.len(), 1);
        c.insert(2, 2, 8);
        assert_eq!(c.len(), 1, "budget 0 admits exactly the newest entry");
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2).as_deref(), Some(&2));
    }

    #[test]
    fn metrics_counters_match_a_hand_computed_trace() {
        let m = Arc::new(Metrics::default());
        let mut c: ByteLruCache<u32, u8> = ByteLruCache::with_metrics(2, Arc::clone(&m));
        // Trace: miss 1, insert 1; miss 2, insert 2; hit 1; insert 3
        // (evicts 2, the LRU); hit 3; miss 2.
        assert!(c.get(&1).is_none()); //           miss=1
        c.insert(1, 10, 1);
        assert!(c.get(&2).is_none()); //           miss=2
        c.insert(2, 20, 1);
        assert_eq!(c.get(&1).as_deref(), Some(&10)); // hit=1
        c.insert(3, 30, 1); //                     evict=1 (key 2)
        assert_eq!(c.get(&3).as_deref(), Some(&30)); // hit=2
        assert!(c.get(&2).is_none()); //           miss=3
        assert_eq!(snapshot(&m), (2, 3, 1));
        assert_eq!(c.used_bytes(), 2);
    }

    #[test]
    fn refetch_after_eviction_is_bit_identical() {
        // The cache stores decoded blobs; simulate the store's
        // fetch-on-miss loop and check the round-trip is exact.
        let payload = |k: u32| -> Vec<f64> { vec![k as f64, -0.0, f64::INFINITY, 1.5e-300] };
        let mut c: ByteLruCache<u32, Vec<f64>> = ByteLruCache::new(32);
        let first = c.insert(7, payload(7), 32);
        let bits: Vec<u64> = first.iter().map(|v| v.to_bits()).collect();
        c.insert(8, payload(8), 32); // evicts 7
        assert!(c.get(&7).is_none());
        let again = c.insert(7, payload(7), 32);
        let bits2: Vec<u64> = again.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, bits2);
    }

    #[test]
    fn arc_handles_survive_eviction() {
        let mut c: ByteLruCache<u32, String> = ByteLruCache::new(1);
        let held = c.insert(1, "alive".to_string(), 1);
        c.insert(2, "new".to_string(), 1); // evicts 1
        assert!(c.get(&1).is_none());
        assert_eq!(held.as_str(), "alive");
    }
}
