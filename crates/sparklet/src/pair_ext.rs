//! Extended pair-RDD operations: `zip_partitions`, `cogroup`, `join` —
//! the remainder of the classic Spark pair API. Not used by the APSP
//! solvers themselves (the paper's algorithms avoid joins deliberately),
//! but part of making the substrate a credible engine, and used by
//! downstream examples.

use crate::error::SparkResult;
use crate::partitioner::Partitioner;
use crate::rdd::Rdd;
use crate::size::EstimateSize;
use crate::{Data, Key};
use std::collections::HashMap;
use std::sync::Arc;

/// Result record of [`Rdd::cogroup`]: per key, the values from each side.
pub type CoGrouped<K, V, W> = (K, (Vec<V>, Vec<W>));

impl<T: Data> Rdd<T> {
    /// Pairs this RDD's partitions 1:1 with `other`'s (both must have the
    /// same partition count) and maps each pair through `f` (narrow; the
    /// building block for co-partitioned joins).
    pub fn zip_partitions<U: Data, R: Data>(
        &self,
        other: &Rdd<U>,
        f: impl Fn(Vec<T>, Vec<U>) -> Vec<R> + Send + Sync + 'static,
    ) -> Rdd<R> {
        assert_eq!(
            self.num_partitions(),
            other.num_partitions(),
            "zip_partitions requires equal partition counts"
        );
        let left = self.inner.clone();
        let right = other.inner.clone();
        let mut upstream = left.upstream.clone();
        upstream.extend(right.upstream.iter().cloned());
        let compute = move |p: usize| -> SparkResult<Vec<R>> {
            let l = left.partition_data(p)?;
            let r = right.partition_data(p)?;
            Ok(f(l, r))
        };
        Rdd::new(
            self.inner.ctx.clone(),
            self.num_partitions(),
            "zip_partitions",
            Box::new(compute),
            upstream,
        )
    }
}

impl<K: Key + EstimateSize, V: Data + EstimateSize> Rdd<(K, V)> {
    /// Spark `cogroup`: for every key present in either RDD, the values
    /// from both sides. Both sides are shuffled with `partitioner`, then
    /// matched partition-locally.
    pub fn cogroup<W: Data + EstimateSize>(
        &self,
        other: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<CoGrouped<K, V, W>> {
        let left = self.group_by_key(partitioner.clone());
        let right = other.group_by_key(partitioner.clone());
        let out = left.zip_partitions(&right, |l, r| {
            let mut table: HashMap<K, (Vec<V>, Vec<W>)> = HashMap::new();
            for (k, vs) in l {
                table.entry(k).or_default().0.extend(vs);
            }
            for (k, ws) in r {
                table.entry(k).or_default().1.extend(ws);
            }
            table.into_iter().collect()
        });
        out.set_partitioner_identity(partitioner.identity());
        out
    }

    /// Spark inner `join`: `(K, V) ⋈ (K, W) → (K, (V, W))`.
    pub fn join<W: Data + EstimateSize>(
        &self,
        other: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<(K, (V, W))> {
        self.cogroup(other, partitioner).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::with_capacity(vs.len() * ws.len());
            for v in &vs {
                for w in &ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
            out
        })
    }

    /// Spark left outer join: keeps unmatched left keys with `None`.
    pub fn left_outer_join<W: Data + EstimateSize>(
        &self,
        other: &Rdd<(K, W)>,
        partitioner: Arc<dyn Partitioner<K>>,
    ) -> Rdd<(K, (V, Option<W>))> {
        self.cogroup(other, partitioner).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::new();
            for v in &vs {
                if ws.is_empty() {
                    out.push((k.clone(), (v.clone(), None)));
                } else {
                    for w in &ws {
                        out.push((k.clone(), (v.clone(), Some(w.clone()))));
                    }
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::partitioner::ModPartitioner;
    use crate::{SparkConfig, SparkContext};
    use std::sync::Arc;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn zip_partitions_aligns() {
        let sc = ctx();
        let a = sc.parallelize(vec![1u64, 2, 3, 4], 2);
        let b = sc.parallelize(vec![10u64, 20, 30, 40], 2);
        let mut out = a
            .zip_partitions(&b, |l, r| {
                l.into_iter().zip(r).map(|(x, y)| x + y).collect()
            })
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(out, vec![11, 22, 33, 44]);
    }

    #[test]
    #[should_panic(expected = "equal partition counts")]
    fn zip_partitions_rejects_mismatch() {
        let sc = ctx();
        let a = sc.parallelize(vec![1u64], 2);
        let b = sc.parallelize(vec![1u64], 3);
        let _ = a.zip_partitions(&b, |l, _| l);
    }

    #[test]
    fn cogroup_collects_both_sides() {
        let sc = ctx();
        let a = sc.parallelize(vec![(1u64, "a"), (2, "b"), (1, "c")], 2);
        let b = sc.parallelize(vec![(1u64, 10u64), (3, 30)], 2);
        let mut out = a
            .cogroup(&b, Arc::new(ModPartitioner::new(3)))
            .collect()
            .unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 3);
        let (k1, (vs1, ws1)) = &out[0];
        assert_eq!(*k1, 1);
        assert_eq!(vs1.len(), 2);
        assert_eq!(ws1, &vec![10]);
        let (k3, (vs3, ws3)) = &out[2];
        assert_eq!(*k3, 3);
        assert!(vs3.is_empty());
        assert_eq!(ws3, &vec![30]);
    }

    #[test]
    fn inner_join_matches_keys() {
        let sc = ctx();
        let users = sc.parallelize(vec![(1u64, "alice"), (2, "bob"), (3, "carol")], 2);
        let carts = sc.parallelize(vec![(1u64, 99u64), (3, 42), (3, 7)], 3);
        let mut out = users
            .join(&carts, Arc::new(ModPartitioner::new(4)))
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![(1, ("alice", 99)), (3, ("carol", 7)), (3, ("carol", 42))]
        );
    }

    #[test]
    fn left_outer_join_keeps_unmatched() {
        let sc = ctx();
        let a = sc.parallelize(vec![(1u64, "x"), (2, "y")], 1);
        let b = sc.parallelize(vec![(1u64, 5u64)], 1);
        let mut out = a
            .left_outer_join(&b, Arc::new(ModPartitioner::new(2)))
            .collect()
            .unwrap();
        out.sort();
        assert_eq!(out, vec![(1, ("x", Some(5))), (2, ("y", None))]);
    }

    #[test]
    fn join_is_partitioned_by_the_given_partitioner() {
        let sc = ctx();
        let a = sc.parallelize((0u64..20).map(|i| (i, i)).collect(), 3);
        let b = sc.parallelize((0u64..20).map(|i| (i, i * 2)).collect(), 2);
        let p = Arc::new(ModPartitioner::new(4));
        let joined = a.cogroup(&b, p);
        let parts = joined.glom().unwrap();
        for (idx, content) in parts.iter().enumerate() {
            for (k, _) in content {
                assert_eq!(*k as usize % 4, idx);
            }
        }
    }
}
