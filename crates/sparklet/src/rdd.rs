//! The RDD abstraction: lazy, lineage-tracked, partitioned collections.

use crate::context::CtxInner;
use crate::error::SparkResult;
use crate::shuffle::ShuffleDep;
use crate::Data;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

pub(crate) type ComputeFn<T> = Box<dyn Fn(usize) -> SparkResult<Vec<T>> + Send + Sync>;

/// Internal node of the RDD DAG.
pub(crate) struct RddInner<T> {
    pub(crate) id: usize,
    pub(crate) ctx: Arc<CtxInner>,
    pub(crate) parts: usize,
    pub(crate) compute: ComputeFn<T>,
    /// Per-partition cache, active once `persist` was called
    /// (lock-guarded so `unpersist` can release the memory).
    cache: Vec<parking_lot::Mutex<Option<Vec<T>>>>,
    use_cache: AtomicBool,
    /// Shuffle dependencies reachable without crossing another shuffle.
    pub(crate) upstream: Vec<Arc<dyn ShuffleDep>>,
    /// Identity of the partitioner that produced this RDD's layout, if any.
    partitioner_identity: parking_lot::Mutex<Option<(String, usize)>>,
    pub(crate) name: &'static str,
}

impl<T: Data> RddInner<T> {
    /// Computes (or serves from cache) one partition, honouring injected
    /// failures. This is the body of a task.
    pub(crate) fn partition_data(&self, p: usize) -> SparkResult<Vec<T>> {
        if self.ctx.failures.should_fail(self.id, p) {
            return Err(crate::SparkError::InjectedFailure {
                rdd: self.id,
                partition: p,
            });
        }
        if let Some(chaos) = self.ctx.chaos() {
            if chaos.task_should_fail(self.id, p) {
                return Err(crate::SparkError::InjectedFailure {
                    rdd: self.id,
                    partition: p,
                });
            }
        }
        if self.use_cache.load(Ordering::Relaxed) {
            // Holding the partition lock during compute also serializes
            // concurrent recomputation of the same partition.
            let mut slot = self.cache[p].lock();
            if let Some(v) = slot.as_ref() {
                self.ctx.metrics.add(&self.ctx.metrics.cache_hits, 1);
                return Ok(v.clone());
            }
            let v = (self.compute)(p)?;
            *slot = Some(v.clone());
            return Ok(v);
        }
        (self.compute)(p)
    }
}

/// A lazy, partitioned, immutable distributed collection (the Spark RDD).
///
/// Cloning an `Rdd` clones a handle to the same DAG node. Transformations
/// return new nodes; nothing executes until an action
/// ([`collect`](Rdd::collect), [`count`](Rdd::count), …) runs.
pub struct Rdd<T: Data> {
    pub(crate) inner: Arc<RddInner<T>>,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Data> Rdd<T> {
    pub(crate) fn new(
        ctx: Arc<CtxInner>,
        parts: usize,
        name: &'static str,
        compute: ComputeFn<T>,
        upstream: Vec<Arc<dyn ShuffleDep>>,
    ) -> Self {
        let id = ctx.next_rdd_id();
        Rdd {
            inner: Arc::new(RddInner {
                id,
                ctx,
                parts,
                compute,
                cache: (0..parts).map(|_| parking_lot::Mutex::new(None)).collect(),
                use_cache: AtomicBool::new(false),
                upstream,
                partitioner_identity: parking_lot::Mutex::new(None),
                name,
            }),
        }
    }

    pub(crate) fn new_source(
        ctx: Arc<CtxInner>,
        parts: usize,
        name: &'static str,
        compute: ComputeFn<T>,
    ) -> Self {
        Self::new(ctx, parts, name, compute, Vec::new())
    }

    pub(crate) fn set_partitioner_identity(&self, identity: (String, usize)) {
        *self.inner.partitioner_identity.lock() = Some(identity);
    }

    pub(crate) fn partitioner_identity(&self) -> Option<(String, usize)> {
        self.inner.partitioner_identity.lock().clone()
    }

    /// Unique id of this RDD within its context (used by failure injection).
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.inner.parts
    }

    /// Short name of the producing transformation (lineage debugging).
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// Derives a narrow child: same partition count unless stated, upstream
    /// shuffle deps inherited.
    fn derive<U: Data>(&self, parts: usize, name: &'static str, compute: ComputeFn<U>) -> Rdd<U> {
        Rdd::new(
            self.inner.ctx.clone(),
            parts,
            name,
            compute,
            self.inner.upstream.clone(),
        )
    }

    /// Element-wise transformation (narrow).
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "map",
            Box::new(move |p| Ok(parent.partition_data(p)?.into_iter().map(&f).collect())),
        )
    }

    /// Fallible element-wise transformation; an `Err` fails the task (and
    /// is retried per config, surfacing the error if retries exhaust).
    /// Used by solvers whose tasks read the side channel.
    pub fn try_map<U: Data>(
        &self,
        f: impl Fn(T) -> SparkResult<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "try_map",
            Box::new(move |p| parent.partition_data(p)?.into_iter().map(&f).collect()),
        )
    }

    /// Fallible one-to-many transformation; an `Err` fails the task.
    pub fn try_flat_map<U: Data>(
        &self,
        f: impl Fn(T) -> SparkResult<Vec<U>> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "try_flat_map",
            Box::new(move |p| {
                let mut out = Vec::new();
                for item in parent.partition_data(p)? {
                    out.extend(f(item)?);
                }
                Ok(out)
            }),
        )
    }

    /// Keeps elements satisfying the predicate (narrow).
    pub fn filter(&self, pred: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "filter",
            Box::new(move |p| {
                Ok(parent
                    .partition_data(p)?
                    .into_iter()
                    .filter(|t| pred(t))
                    .collect())
            }),
        )
    }

    /// One-to-many transformation (narrow).
    pub fn flat_map<U: Data>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "flat_map",
            Box::new(move |p| Ok(parent.partition_data(p)?.into_iter().flat_map(&f).collect())),
        )
    }

    /// Whole-partition transformation (narrow); `f` receives the partition
    /// index and its elements.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "map_partitions",
            Box::new(move |p| Ok(f(p, parent.partition_data(p)?))),
        )
    }

    /// Union with one other RDD. See [`Rdd::union_all`].
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        self.union_all(std::slice::from_ref(other))
    }

    /// Union with several RDDs (Spark `sc.union`): output partitions are
    /// the concatenation of all inputs' partitions and the partitioner is
    /// dropped. Each component RDD "preserves its partitioning when in
    /// union" (paper §5.2) — which is exactly the partition-count blowup
    /// the blocked solvers must repartition away.
    pub fn union_all(&self, others: &[Rdd<T>]) -> Rdd<T> {
        let mut parents: Vec<Arc<RddInner<T>>> = Vec::with_capacity(1 + others.len());
        parents.push(self.inner.clone());
        parents.extend(others.iter().map(|r| r.inner.clone()));
        let mut upstream = Vec::new();
        let mut offsets = Vec::with_capacity(parents.len() + 1);
        let mut total = 0usize;
        for p in &parents {
            offsets.push(total);
            total += p.parts;
            upstream.extend(p.upstream.iter().cloned());
        }
        offsets.push(total);
        let compute = move |p: usize| {
            // Locate the component RDD owning global partition p.
            let idx = match offsets.binary_search(&p) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            parents[idx].partition_data(p - offsets[idx])
        };
        Rdd::new(
            self.inner.ctx.clone(),
            total,
            "union",
            Box::new(compute),
            upstream,
        )
    }

    /// Cartesian product (the transformation the paper's first repeated-
    /// squaring draft relied on and abandoned: output has `p₁·p₂`
    /// partitions and every pair of input partitions is co-materialized —
    /// an implicit all-to-all).
    pub fn cartesian<U: Data>(&self, other: &Rdd<U>) -> Rdd<(T, U)> {
        let a = self.inner.clone();
        let b = other.inner.clone();
        let (pa, pb) = (a.parts, b.parts);
        let mut upstream = a.upstream.clone();
        upstream.extend(b.upstream.iter().cloned());
        let compute = move |p: usize| {
            let (ia, ib) = (p / pb, p % pb);
            let left = a.partition_data(ia)?;
            let right = b.partition_data(ib)?;
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    out.push((l.clone(), r.clone()));
                }
            }
            Ok(out)
        };
        Rdd::new(
            self.inner.ctx.clone(),
            pa * pb,
            "cartesian",
            Box::new(compute),
            upstream,
        )
    }

    /// Reduces the partition count to `target` by concatenating contiguous
    /// runs of partitions (Spark `coalesce(shuffle = false)` — a narrow
    /// transformation). Useful when a solver scales `p` down to keep the
    /// over-decomposition factor `B > 1` (paper §5.3).
    pub fn coalesce(&self, target: usize) -> Rdd<T> {
        let target = target.max(1).min(self.inner.parts);
        let parent = self.inner.clone();
        let source_parts = parent.parts;
        self.derive(
            target,
            "coalesce",
            Box::new(move |p| {
                let lo = p * source_parts / target;
                let hi = (p + 1) * source_parts / target;
                let mut out = Vec::new();
                for sp in lo..hi {
                    out.extend(parent.partition_data(sp)?);
                }
                Ok(out)
            }),
        )
    }

    /// Keeps one representative per distinct element (narrow map-side
    /// dedup followed by a global dedup at the driver is *not* Spark's
    /// semantics; this is implemented as a local dedup per partition —
    /// callers needing global distinct should shuffle by a key first).
    /// Provided for parity with common Spark usage on pre-partitioned
    /// data.
    pub fn distinct_within_partitions(&self) -> Rdd<T>
    where
        T: Eq + std::hash::Hash,
    {
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "distinct_within_partitions",
            Box::new(move |p| {
                let items = parent.partition_data(p)?;
                let mut seen = std::collections::HashSet::new();
                Ok(items
                    .into_iter()
                    .filter(|t| seen.insert(t.clone()))
                    .collect())
            }),
        )
    }

    /// Deterministic sample: keeps each element with probability
    /// `fraction`, decided by a per-partition splitmix over `seed`.
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T> {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let parent = self.inner.clone();
        self.derive(
            self.inner.parts,
            "sample",
            Box::new(move |p| {
                let items = parent.partition_data(p)?;
                let mut state = seed ^ (p as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let mut next = move || {
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    (z ^ (z >> 31)) as f64 / u64::MAX as f64
                };
                Ok(items.into_iter().filter(|_| next() < fraction).collect())
            }),
        )
    }

    /// Marks this RDD for caching: the first computation of each partition
    /// is retained and served to later jobs (Spark `persist()` at
    /// MEMORY_ONLY). Returns `self` for chaining.
    pub fn persist(&self) -> Rdd<T> {
        self.inner.use_cache.store(true, Ordering::Relaxed);
        self.clone()
    }

    /// Drops any cached partitions and stops caching (Spark `unpersist()`).
    /// Iterative solvers call this on superseded RDD generations so memory
    /// stays bounded by one generation.
    pub fn unpersist(&self) {
        self.inner.use_cache.store(false, Ordering::Relaxed);
        for slot in &self.inner.cache {
            *slot.lock() = None;
        }
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// Gathers all elements to the driver.
    pub fn collect(&self) -> SparkResult<Vec<T>> {
        let chunks = self.inner.ctx.run_action(&self.inner, |_, data| data)?;
        let total: usize = chunks.iter().map(Vec::len).sum();
        self.inner
            .ctx
            .metrics
            .add(&self.inner.ctx.metrics.collected_records, total as u64);
        let mut out = Vec::with_capacity(total);
        for c in chunks {
            out.extend(c);
        }
        Ok(out)
    }

    /// Number of elements.
    pub fn count(&self) -> SparkResult<usize> {
        Ok(self
            .inner
            .ctx
            .run_action(&self.inner, |_, data| data.len())?
            .into_iter()
            .sum())
    }

    /// Per-partition element counts (drives the paper's Fig. 3 bottom
    /// panel: the partition-size histogram under different partitioners).
    pub fn partition_sizes(&self) -> SparkResult<Vec<usize>> {
        self.inner.ctx.run_action(&self.inner, |_, data| data.len())
    }

    /// Partition contents, one `Vec` per partition (Spark `glom().collect()`).
    pub fn glom(&self) -> SparkResult<Vec<Vec<T>>> {
        self.inner.ctx.run_action(&self.inner, |_, data| data)
    }

    /// Folds all elements with a commutative, associative operation.
    pub fn fold(&self, zero: T, f: impl Fn(T, T) -> T + Send + Sync) -> SparkResult<T> {
        let partials = self.inner.ctx.run_action(&self.inner, |_, data| {
            data.into_iter().fold(zero.clone(), &f)
        })?;
        Ok(partials.into_iter().fold(zero, &f))
    }
}

#[cfg(test)]
mod tests {
    use crate::partitioner::ModPartitioner;
    use crate::{SparkConfig, SparkContext};
    use std::sync::Arc;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn parallelize_collect_roundtrip() {
        let sc = ctx();
        let data: Vec<u64> = (0..1000).collect();
        let rdd = sc.parallelize(data.clone(), 7);
        assert_eq!(rdd.num_partitions(), 7);
        let mut got = rdd.collect().unwrap();
        got.sort();
        assert_eq!(got, data);
    }

    #[test]
    fn map_filter_flatmap_pipeline() {
        let sc = ctx();
        let rdd = sc.parallelize((0u64..100).collect(), 4);
        let out = rdd
            .map(|x| x * 2)
            .filter(|x| x % 3 == 0)
            .flat_map(|x| vec![x, x + 1])
            .count()
            .unwrap();
        // multiples of 3 in 0..200 step2: x in {0,6,12,...,198} → 34 values ×2
        assert_eq!(out, 68);
    }

    #[test]
    fn lazy_until_action() {
        let sc = ctx();
        let rdd = sc.parallelize((0u64..10).collect(), 2).map(|x| x + 1);
        let before = sc.metrics();
        assert_eq!(before.jobs, 0);
        let _ = rdd.count().unwrap();
        let after = sc.metrics();
        assert_eq!(after.jobs, 1);
        assert_eq!(after.tasks, 2);
    }

    #[test]
    fn union_concatenates_partitions() {
        let sc = ctx();
        let a = sc.parallelize(vec![1u64, 2], 2);
        let b = sc.parallelize(vec![3u64, 4, 5], 3);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 5);
        let mut all = u.collect().unwrap();
        all.sort();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn union_many_blows_up_partitions() {
        let sc = ctx();
        let rdds: Vec<_> = (0..10).map(|i| sc.parallelize(vec![i as u64], 3)).collect();
        let u = sc.union(&rdds);
        assert_eq!(u.num_partitions(), 30);
        assert_eq!(u.count().unwrap(), 10);
    }

    #[test]
    fn cartesian_pairs_everything() {
        let sc = ctx();
        let a = sc.parallelize(vec![1u64, 2, 3], 2);
        let b = sc.parallelize(vec![10u64, 20], 2);
        let c = a.cartesian(&b);
        assert_eq!(c.num_partitions(), 4);
        let mut got = c.collect().unwrap();
        got.sort();
        assert_eq!(got.len(), 6);
        assert_eq!(got[0], (1, 10));
        assert_eq!(got[5], (3, 20));
    }

    #[test]
    fn persist_serves_cache() {
        let sc = ctx();
        let rdd = sc
            .parallelize((0u64..100).collect(), 4)
            .map(|x| x * x)
            .persist();
        let _ = rdd.count().unwrap();
        let before = sc.metrics();
        let _ = rdd.count().unwrap();
        let after = sc.metrics();
        assert_eq!(after.cache_hits - before.cache_hits, 4);
    }

    #[test]
    fn fold_sums() {
        let sc = ctx();
        let rdd = sc.parallelize((1u64..=100).collect(), 8);
        assert_eq!(rdd.fold(0, |a, b| a + b).unwrap(), 5050);
    }

    #[test]
    fn glom_preserves_partitioning() {
        let sc = ctx();
        let pairs: Vec<(u64, u64)> = (0..20).map(|i| (i, i)).collect();
        let rdd = sc.parallelize_by(pairs, Arc::new(ModPartitioner::new(4)));
        let parts = rdd.glom().unwrap();
        assert_eq!(parts.len(), 4);
        for (p, content) in parts.iter().enumerate() {
            assert_eq!(content.len(), 5);
            for (k, _) in content {
                assert_eq!(*k as usize % 4, p);
            }
        }
    }

    #[test]
    fn injected_failure_recovers_via_lineage() {
        let sc = ctx();
        let rdd = sc.parallelize((0u64..10).collect(), 2).map(|x| x + 1);
        sc.inject_task_failure(rdd.id(), 1);
        let mut out = rdd.collect().unwrap(); // recovered by retry
        out.sort();
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert_eq!(sc.metrics().task_retries, 1);
    }

    #[test]
    fn failure_exhausts_retries() {
        let sc = SparkContext::new(SparkConfig::with_cores(2).max_task_attempts(2));
        let rdd = sc.parallelize(vec![1u64], 1);
        sc.inject_task_failure(rdd.id(), 0);
        sc.inject_task_failure(rdd.id(), 0);
        // Two injections, two attempts allowed: the second attempt fails too.
        // (injections are consumed one per attempt)
        assert!(rdd.collect().is_err());
    }

    #[test]
    fn try_map_surfaces_user_error() {
        let sc = ctx();
        let rdd = sc.parallelize(vec![1u64, 2, 3], 1).try_map(|x| {
            if x == 2 {
                Err(crate::SparkError::User("boom".into()))
            } else {
                Ok(x)
            }
        });
        // Exhausted retries arrive wrapped in task context; the original
        // user error stays reachable through `root()`.
        match rdd.collect() {
            Err(e) => match e.root() {
                crate::SparkError::User(msg) => assert_eq!(msg, "boom"),
                other => panic!("expected user error at the root, got {other:?}"),
            },
            Ok(v) => panic!("expected user error, got {v:?}"),
        }
    }

    #[test]
    fn coalesce_merges_contiguously() {
        let sc = ctx();
        let rdd = sc.parallelize((0u64..100).collect(), 10);
        let merged = rdd.coalesce(3);
        assert_eq!(merged.num_partitions(), 3);
        let mut all = merged.collect().unwrap();
        all.sort();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // No shuffle involved (narrow).
        assert_eq!(sc.metrics().shuffles, 0);
        // Coalescing beyond bounds clamps.
        assert_eq!(rdd.coalesce(0).num_partitions(), 1);
        assert_eq!(rdd.coalesce(100).num_partitions(), 10);
    }

    #[test]
    fn distinct_within_partitions_dedups_locally() {
        let sc = ctx();
        let rdd = sc.parallelize(vec![1u64, 1, 2, 2, 3, 3], 1);
        let mut out = rdd.distinct_within_partitions().collect().unwrap();
        out.sort();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let sc = ctx();
        let rdd = sc.parallelize((0u64..10_000).collect(), 8);
        let a = rdd.sample(0.3, 7).count().unwrap();
        let b = rdd.sample(0.3, 7).count().unwrap();
        assert_eq!(a, b, "same seed must sample identically");
        assert!((2_500..3_500).contains(&a), "sample size {a} not ~30%");
        assert_eq!(rdd.sample(0.0, 1).count().unwrap(), 0);
        assert_eq!(rdd.sample(1.0, 1).count().unwrap(), 10_000);
    }

    #[test]
    fn empty_rdd_ok() {
        let sc = ctx();
        let rdd = sc.parallelize(Vec::<u64>::new(), 3);
        assert_eq!(rdd.count().unwrap(), 0);
        assert_eq!(rdd.collect().unwrap(), Vec::<u64>::new());
    }
}
