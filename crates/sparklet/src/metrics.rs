//! Engine-wide counters: the observable the paper's systems analysis runs on.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic engine counters, shared by all jobs of a [`SparkContext`]
/// (snapshot-and-subtract to scope to a region of interest).
///
/// [`SparkContext`]: crate::SparkContext
#[derive(Debug, Default)]
pub struct Metrics {
    /// Actions executed.
    pub jobs: AtomicU64,
    /// Stages executed (1 per action + 1 per shuffle materialization).
    pub stages: AtomicU64,
    /// Tasks launched (including retries).
    pub tasks: AtomicU64,
    /// Task retries after failures.
    pub task_retries: AtomicU64,
    /// Shuffles materialized.
    pub shuffles: AtomicU64,
    /// Records written by shuffle map sides (after map-side combine).
    pub shuffle_records: AtomicU64,
    /// Estimated bytes written by shuffle map sides.
    pub shuffle_bytes: AtomicU64,
    /// Estimated bytes pushed through broadcast variables.
    pub broadcast_bytes: AtomicU64,
    /// Side-channel blob writes.
    pub side_channel_writes: AtomicU64,
    /// Side-channel blob reads.
    pub side_channel_reads: AtomicU64,
    /// Estimated bytes written to the side channel.
    pub side_channel_bytes_written: AtomicU64,
    /// Estimated bytes read from the side channel.
    pub side_channel_bytes_read: AtomicU64,
    /// Cached-partition hits.
    pub cache_hits: AtomicU64,
    /// Records collected back to the driver by actions.
    pub collected_records: AtomicU64,
    /// Round-granular checkpoint snapshots committed.
    pub checkpoints_written: AtomicU64,
    /// Bytes written into checkpoint snapshots (framed, with headers).
    pub checkpoint_bytes: AtomicU64,
    /// Rounds skipped on resume because a checkpoint restored them.
    pub rounds_resumed: AtomicU64,
    /// Closure-store block cache hits (block served from memory).
    pub store_cache_hits: AtomicU64,
    /// Closure-store block cache misses (block fetched from disk).
    pub store_cache_misses: AtomicU64,
    /// Closure-store cache evictions under the byte budget.
    pub store_cache_evictions: AtomicU64,
    /// Closure-store blocks read from disk (equals misses for a
    /// cache-fronted store).
    pub store_blocks_read: AtomicU64,
    /// Bytes read from closure-store blocks on disk (framed, with
    /// headers).
    pub store_bytes_read: AtomicU64,
    /// HTTP requests answered by the query service (any status).
    pub requests_served: AtomicU64,
    /// Solve jobs accepted onto the service's bounded queue.
    pub jobs_queued: AtomicU64,
    /// Solve jobs rejected because the queue was full (backpressure).
    pub jobs_rejected: AtomicU64,
    /// Solve jobs cancelled (while queued or mid-run).
    pub jobs_cancelled: AtomicU64,
    /// High-water mark of the service job queue (queued + running).
    pub queue_depth_peak: AtomicU64,
}

impl Metrics {
    pub(crate) fn add(&self, field: &AtomicU64, v: u64) {
        field.fetch_add(v, Ordering::Relaxed);
    }

    /// Records one answered service request.
    pub fn note_request_served(&self) {
        self.requests_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a solve job accepted onto the service queue, and folds the
    /// resulting depth (queued + running) into the high-water mark.
    pub fn note_job_queued(&self, depth_now: u64) {
        self.jobs_queued.fetch_add(1, Ordering::Relaxed);
        self.queue_depth_peak
            .fetch_max(depth_now, Ordering::Relaxed);
    }

    /// Records a solve job rejected by queue backpressure.
    pub fn note_job_rejected(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cancelled solve job (queued or running).
    pub fn note_job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            task_retries: self.task_retries.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            side_channel_writes: self.side_channel_writes.load(Ordering::Relaxed),
            side_channel_reads: self.side_channel_reads.load(Ordering::Relaxed),
            side_channel_bytes_written: self.side_channel_bytes_written.load(Ordering::Relaxed),
            side_channel_bytes_read: self.side_channel_bytes_read.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            collected_records: self.collected_records.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            rounds_resumed: self.rounds_resumed.load(Ordering::Relaxed),
            store_cache_hits: self.store_cache_hits.load(Ordering::Relaxed),
            store_cache_misses: self.store_cache_misses.load(Ordering::Relaxed),
            store_cache_evictions: self.store_cache_evictions.load(Ordering::Relaxed),
            store_blocks_read: self.store_blocks_read.load(Ordering::Relaxed),
            store_bytes_read: self.store_bytes_read.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            jobs_queued: self.jobs_queued.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`Metrics`]; supports `a.delta(&b)` for scoping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on `Metrics`
pub struct MetricsSnapshot {
    pub jobs: u64,
    pub stages: u64,
    pub tasks: u64,
    pub task_retries: u64,
    pub shuffles: u64,
    pub shuffle_records: u64,
    pub shuffle_bytes: u64,
    pub broadcast_bytes: u64,
    pub side_channel_writes: u64,
    pub side_channel_reads: u64,
    pub side_channel_bytes_written: u64,
    pub side_channel_bytes_read: u64,
    pub cache_hits: u64,
    pub collected_records: u64,
    pub checkpoints_written: u64,
    pub checkpoint_bytes: u64,
    pub rounds_resumed: u64,
    pub store_cache_hits: u64,
    pub store_cache_misses: u64,
    pub store_cache_evictions: u64,
    pub store_blocks_read: u64,
    pub store_bytes_read: u64,
    pub requests_served: u64,
    pub jobs_queued: u64,
    pub jobs_rejected: u64,
    pub jobs_cancelled: u64,
    pub queue_depth_peak: u64,
}

impl MetricsSnapshot {
    /// Counter increments between an earlier snapshot `before` and `self`.
    pub fn delta(&self, before: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs: self.jobs - before.jobs,
            stages: self.stages - before.stages,
            tasks: self.tasks - before.tasks,
            task_retries: self.task_retries - before.task_retries,
            shuffles: self.shuffles - before.shuffles,
            shuffle_records: self.shuffle_records - before.shuffle_records,
            shuffle_bytes: self.shuffle_bytes - before.shuffle_bytes,
            broadcast_bytes: self.broadcast_bytes - before.broadcast_bytes,
            side_channel_writes: self.side_channel_writes - before.side_channel_writes,
            side_channel_reads: self.side_channel_reads - before.side_channel_reads,
            side_channel_bytes_written: self.side_channel_bytes_written
                - before.side_channel_bytes_written,
            side_channel_bytes_read: self.side_channel_bytes_read - before.side_channel_bytes_read,
            cache_hits: self.cache_hits - before.cache_hits,
            collected_records: self.collected_records - before.collected_records,
            checkpoints_written: self.checkpoints_written - before.checkpoints_written,
            checkpoint_bytes: self.checkpoint_bytes - before.checkpoint_bytes,
            rounds_resumed: self.rounds_resumed - before.rounds_resumed,
            store_cache_hits: self.store_cache_hits - before.store_cache_hits,
            store_cache_misses: self.store_cache_misses - before.store_cache_misses,
            store_cache_evictions: self.store_cache_evictions - before.store_cache_evictions,
            store_blocks_read: self.store_blocks_read - before.store_blocks_read,
            store_bytes_read: self.store_bytes_read - before.store_bytes_read,
            requests_served: self.requests_served - before.requests_served,
            jobs_queued: self.jobs_queued - before.jobs_queued,
            jobs_rejected: self.jobs_rejected - before.jobs_rejected,
            jobs_cancelled: self.jobs_cancelled - before.jobs_cancelled,
            // A high-water mark, not a monotone sum: the delta keeps the
            // later snapshot's peak (it covers the whole window).
            queue_depth_peak: self.queue_depth_peak,
        }
    }

    /// Total estimated data movement (shuffle + broadcast + side channel).
    pub fn total_movement_bytes(&self) -> u64 {
        self.shuffle_bytes
            + self.broadcast_bytes
            + self.side_channel_bytes_written
            + self.side_channel_bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let m = Metrics::default();
        m.add(&m.tasks, 5);
        let a = m.snapshot();
        m.add(&m.tasks, 3);
        m.add(&m.shuffle_bytes, 100);
        m.add(&m.checkpoints_written, 2);
        m.add(&m.checkpoint_bytes, 4096);
        m.add(&m.rounds_resumed, 1);
        let b = m.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.tasks, 3);
        assert_eq!(d.shuffle_bytes, 100);
        assert_eq!(d.jobs, 0);
        assert_eq!(d.checkpoints_written, 2);
        assert_eq!(d.checkpoint_bytes, 4096);
        assert_eq!(d.rounds_resumed, 1);
    }

    #[test]
    fn service_counters_and_peak() {
        let m = Metrics::default();
        m.note_request_served();
        m.note_request_served();
        m.note_job_queued(1);
        m.note_job_queued(3);
        m.note_job_queued(2); // depth fell back; peak must not regress
        m.note_job_rejected();
        m.note_job_cancelled();
        let a = m.snapshot();
        assert_eq!(a.requests_served, 2);
        assert_eq!(a.jobs_queued, 3);
        assert_eq!(a.jobs_rejected, 1);
        assert_eq!(a.jobs_cancelled, 1);
        assert_eq!(a.queue_depth_peak, 3);
        // delta carries the later peak (high-water mark, not additive)
        m.note_job_queued(5);
        let d = m.snapshot().delta(&a);
        assert_eq!(d.jobs_queued, 1);
        assert_eq!(d.queue_depth_peak, 5);
    }

    #[test]
    fn movement_totals() {
        let s = MetricsSnapshot {
            shuffle_bytes: 10,
            broadcast_bytes: 20,
            side_channel_bytes_written: 30,
            side_channel_bytes_read: 40,
            ..Default::default()
        };
        assert_eq!(s.total_movement_bytes(), 100);
    }
}
