//! Deterministic fault injection ("chaos") above the runtime.
//!
//! [`FailurePlan`](crate::SparkContext::inject_task_failure) injects a fixed
//! number of failures into one named task; chaos schedules instead draw
//! faults from a seeded hash so that *every* task launch and side-channel
//! read is a potential failure site. Determinism contract: the decision for
//! a given fault site depends only on `(seed, site identity, occurrence
//! number at that site)` — never on thread interleaving — so a schedule
//! replays identically across runs and core counts.

use std::collections::HashMap;
use std::sync::Mutex;

/// A seeded schedule of runtime faults. All rates are probabilities in
/// `[0, 1]` evaluated independently per fault site (see module docs for
/// the determinism contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Seed for the fault schedule; same seed → same schedule.
    pub seed: u64,
    /// Probability that a task launch fails (recoverable: the scheduler
    /// retries, and the occurrence counter advances so the retry redraws).
    pub task_failure_rate: f64,
    /// Probability that a side-channel read fails transiently.
    pub transient_read_rate: f64,
    /// Probability that a side-channel read finds its blob deleted
    /// (permanent: the blob is really removed, so retries keep missing).
    pub missing_key_rate: f64,
    /// Probability that a side-channel read observes a corrupted blob.
    pub corrupt_rate: f64,
    /// Number of clean side-channel reads before read faults arm
    /// (task faults are always armed). Lets a schedule let a solve make
    /// checkpointable progress before the storage starts failing.
    pub arm_after_reads: u64,
}

impl ChaosConfig {
    /// A schedule with the given seed and no faults; add rates with the
    /// builder methods.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            ..Default::default()
        }
    }

    /// Fail task launches with probability `rate`.
    pub fn task_failures(mut self, rate: f64) -> Self {
        self.task_failure_rate = rate;
        self
    }

    /// Fail side-channel reads transiently with probability `rate`.
    pub fn transient_reads(mut self, rate: f64) -> Self {
        self.transient_read_rate = rate;
        self
    }

    /// Permanently delete side-channel blobs at read time with
    /// probability `rate`.
    pub fn missing_keys(mut self, rate: f64) -> Self {
        self.missing_key_rate = rate;
        self
    }

    /// Corrupt side-channel blobs at read time with probability `rate`.
    pub fn corrupt_blocks(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Keep the first `n` side-channel reads clean before arming read
    /// faults.
    pub fn arm_after_reads(mut self, n: u64) -> Self {
        self.arm_after_reads = n;
        self
    }
}

/// What a chaos draw decided for one side-channel read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadFault {
    /// Fail this read only; the blob survives.
    Transient,
    /// Delete the blob, then let the read miss (and keep missing).
    Missing,
    /// Corrupt the stored blob before the read observes it.
    Corrupt,
}

/// Shared chaos state: the config plus per-site occurrence counters.
#[derive(Debug, Default)]
pub(crate) struct ChaosState {
    cfg: ChaosConfig,
    /// Launches seen per (rdd, partition) task site.
    task_counts: Mutex<HashMap<(usize, usize), u64>>,
    /// Reads seen per blob key.
    read_counts: Mutex<HashMap<String, u64>>,
    /// Total reads seen (for `arm_after_reads`).
    total_reads: Mutex<u64>,
}

/// FNV-1a over bytes — stable, dependency-free site hashing.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: turns a site/occurrence hash into a uniform draw.
fn unit_draw(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl ChaosState {
    pub(crate) fn new(cfg: ChaosConfig) -> Self {
        ChaosState {
            cfg,
            ..Default::default()
        }
    }

    fn draw(&self, site: u64, occurrence: u64) -> f64 {
        unit_draw(
            self.cfg
                .seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(site)
                .rotate_left(17)
                .wrapping_add(occurrence),
        )
    }

    /// Should this launch of task `(rdd, partition)` fail?
    pub(crate) fn task_should_fail(&self, rdd: usize, partition: usize) -> bool {
        if self.cfg.task_failure_rate <= 0.0 {
            return false;
        }
        let occurrence = {
            let mut counts = self.task_counts.lock().unwrap();
            let c = counts.entry((rdd, partition)).or_insert(0);
            let now = *c;
            *c += 1;
            now
        };
        let site = fnv1a64(format!("task:{rdd}:{partition}").as_bytes());
        self.draw(site, occurrence) < self.cfg.task_failure_rate
    }

    /// Draw the fault (if any) for this read of blob `key`.
    pub(crate) fn read_fault(&self, key: &str) -> Option<ReadFault> {
        let any_rate =
            self.cfg.transient_read_rate + self.cfg.missing_key_rate + self.cfg.corrupt_rate;
        if any_rate <= 0.0 {
            return None;
        }
        {
            let mut total = self.total_reads.lock().unwrap();
            let seen = *total;
            *total += 1;
            if seen < self.cfg.arm_after_reads {
                return None;
            }
        }
        let occurrence = {
            let mut counts = self.read_counts.lock().unwrap();
            let c = counts.entry(key.to_string()).or_insert(0);
            let now = *c;
            *c += 1;
            now
        };
        let site = fnv1a64(format!("read:{key}").as_bytes());
        let u = self.draw(site, occurrence);
        if u < self.cfg.transient_read_rate {
            Some(ReadFault::Transient)
        } else if u < self.cfg.transient_read_rate + self.cfg.missing_key_rate {
            Some(ReadFault::Missing)
        } else if u < any_rate {
            Some(ReadFault::Corrupt)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_site_same_decision() {
        let a = ChaosState::new(ChaosConfig::new(42).task_failures(0.5));
        let b = ChaosState::new(ChaosConfig::new(42).task_failures(0.5));
        let seq_a: Vec<bool> = (0..64).map(|_| a.task_should_fail(3, 1)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.task_should_fail(3, 1)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "rate 0.5 over 64 draws must fire");
        assert!(
            seq_a.iter().any(|&f| !f),
            "rate 0.5 over 64 draws must pass"
        );
    }

    #[test]
    fn decisions_are_independent_of_interleaving() {
        // Site (3,1) draws the same sequence whether or not other sites
        // are interrogated in between.
        let a = ChaosState::new(ChaosConfig::new(7).task_failures(0.5));
        let b = ChaosState::new(ChaosConfig::new(7).task_failures(0.5));
        let seq_a: Vec<bool> = (0..32).map(|_| a.task_should_fail(3, 1)).collect();
        let seq_b: Vec<bool> = (0..32)
            .map(|_| {
                b.task_should_fail(0, 0);
                b.task_should_fail(9, 4);
                b.task_should_fail(3, 1)
            })
            .collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosState::new(ChaosConfig::new(1).task_failures(0.5));
        let b = ChaosState::new(ChaosConfig::new(2).task_failures(0.5));
        let seq_a: Vec<bool> = (0..128).map(|_| a.task_should_fail(0, 0)).collect();
        let seq_b: Vec<bool> = (0..128).map(|_| b.task_should_fail(0, 0)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn read_faults_partition_by_rate_bands() {
        let s = ChaosState::new(
            ChaosConfig::new(99)
                .transient_reads(0.2)
                .missing_keys(0.2)
                .corrupt_blocks(0.2),
        );
        let mut seen = [0usize; 4];
        for i in 0..400 {
            let key = format!("blk:{}", i % 10);
            match s.read_fault(&key) {
                None => seen[0] += 1,
                Some(ReadFault::Transient) => seen[1] += 1,
                Some(ReadFault::Missing) => seen[2] += 1,
                Some(ReadFault::Corrupt) => seen[3] += 1,
            }
        }
        assert!(seen.iter().all(|&c| c > 0), "all bands drawn: {seen:?}");
    }

    #[test]
    fn arming_delay_keeps_early_reads_clean() {
        let s = ChaosState::new(ChaosConfig::new(5).missing_keys(1.0).arm_after_reads(10));
        for i in 0..10 {
            assert_eq!(
                s.read_fault(&format!("k{i}")),
                None,
                "read {i} must be clean"
            );
        }
        assert_eq!(s.read_fault("k10"), Some(ReadFault::Missing));
    }

    #[test]
    fn zero_rates_draw_nothing_and_count_nothing() {
        let s = ChaosState::new(ChaosConfig::new(0));
        assert!(!s.task_should_fail(0, 0));
        assert_eq!(s.read_fault("k"), None);
        assert!(s.task_counts.lock().unwrap().is_empty());
        assert!(s.read_counts.lock().unwrap().is_empty());
    }
}
