//! # sparklet — a miniature Apache-Spark-like dataflow engine
//!
//! The paper's APSP solvers are expressed against the Spark RDD API. With no
//! Spark (or JVM) available, this crate rebuilds the subset of Spark the
//! paper's four algorithms exercise, faithfully enough that the paper's
//! *systems* observations — shuffle volume, partition skew, the cost of
//! `union`-induced partition blowup, side-channel broadcast through shared
//! storage, fault-tolerance of pure vs impure implementations — are
//! reproducible and measurable rather than merely narrated.
//!
//! What is modeled:
//!
//! * **Lazy, lineage-tracked RDDs** ([`Rdd`]): transformations build a DAG;
//!   nothing executes until an action runs. Narrow transformations
//!   (`map`, `filter`, `flat_map`, `union`, `cartesian`) pipeline within a
//!   task; wide transformations (`reduce_by_key`, `combine_by_key`,
//!   `partition_by`, `group_by_key`) cut stage boundaries and materialize a
//!   shuffle.
//! * **A driver/executor split**: actions are driven from the calling
//!   thread ("driver"); partitions are computed by a dedicated thread pool
//!   sized by [`SparkConfig::num_cores`] ("executors").
//! * **Shuffles with metrics** ([`Metrics`]): record and byte counts per
//!   shuffle (map-side combine included), partition-size histograms — the
//!   quantities behind the paper's Figure 3 and the Blocked In-Memory
//!   storage-blowup analysis.
//! * **Partitioners** ([`partitioner`]): a bit-faithful port of pySpark's
//!   `portable_hash` (whose XOR mixing the paper blames for skew on
//!   upper-triangular block keys), the paper's multi-diagonal partitioner,
//!   and a modulo partitioner.
//! * **Broadcast variables and a side channel** ([`SideChannel`]): the
//!   "shared persistent storage" (GPFS) workaround used by the impure
//!   solvers (paper Algorithms 1 and 4).
//! * **Failure injection and lineage recovery**: tasks can be made to fail
//!   once; pure jobs recover by recomputation, side-channel-dependent jobs
//!   surface [`SparkError::SideChannelMiss`] — the paper's fault-tolerance
//!   distinction, executable.
//!
//! What is *not* modeled: serialization formats, the Catalyst/SQL layers,
//! dynamic executor allocation, and speculative execution — none of which
//! the paper's solvers touch.
//!
//! ## Example
//!
//! ```
//! use sparklet::{SparkConfig, SparkContext};
//! use sparklet::partitioner::ModPartitioner;
//! use std::sync::Arc;
//!
//! let ctx = SparkContext::new(SparkConfig::with_cores(2));
//! let rdd = ctx.parallelize((0u64..100).collect::<Vec<_>>(), 4);
//! let pairs = rdd.map(|x| (x % 10, x));
//! let sums = pairs.reduce_by_key(Arc::new(ModPartitioner::new(4)), |a, b| a + b);
//! let mut out = sums.collect().unwrap();
//! out.sort();
//! assert_eq!(out.len(), 10);
//! assert_eq!(out[0], (0, 0 + 10 + 20 + 30 + 40 + 50 + 60 + 70 + 80 + 90));
//! ```

#![warn(missing_docs)]

mod accumulator;
mod broadcast;
pub mod cache;
mod chaos;
mod context;
mod error;
mod metrics;
mod pair_ext;
pub mod partitioner;
mod rdd;
mod shuffle;
mod sidechannel;
mod size;

pub use accumulator::{DoubleAccumulator, LongAccumulator};
pub use broadcast::Broadcast;
pub use cache::ByteLruCache;
pub use chaos::ChaosConfig;
pub use context::{CancelToken, SparkConfig, SparkContext};
pub use error::{SparkError, SparkResult};
pub use metrics::{Metrics, MetricsSnapshot};
pub use partitioner::Partitioner;
pub use rdd::Rdd;
pub use sidechannel::{SideChannel, SideChannelBackend};
pub use size::EstimateSize;

/// Marker for types that can live inside an RDD: cheap-ish to clone and
/// sendable across executor threads. Blanket-implemented.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Marker for shuffle keys. Blanket-implemented.
pub trait Key: Data + Eq + std::hash::Hash {}
impl<T: Data + Eq + std::hash::Hash> Key for T {}
