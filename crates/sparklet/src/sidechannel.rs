//! The shared-persistent-storage side channel.
//!
//! The paper's Repeated Squaring and Blocked Collect/Broadcast solvers
//! bypass Spark's missing executor-to-executor broadcast by writing blocks
//! to a shared file system (GPFS/HDFS) from the driver and reading them in
//! tasks (Algorithms 1 and 4). That communication is *outside* the RDD
//! lineage: if the blobs disappear, recomputed tasks cannot reproduce them
//! — which is precisely why the paper classifies those solvers as "impure"
//! / not fault-tolerant. [`SideChannel`] models the mechanism: a keyed blob
//! store with byte accounting, an availability switch + deletion for
//! fault-injection experiments, and (on the disk backend) versioned,
//! checksummed frames so corruption at rest is *detected* rather than
//! silently decoded into garbage distances.

use crate::chaos::{ChaosState, ReadFault};
use crate::error::{SparkError, SparkResult};
use crate::metrics::Metrics;
use crate::size::EstimateSize;
use crate::Data;
use apsp_blockmat::serialize::{self, FRAME_KIND_BLOCK};
use apsp_blockmat::Block;
use bytes::Bytes;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Blob = Arc<dyn Any + Send + Sync>;

/// Marker blob installed by the chaos harness in place of an in-memory
/// typed blob it decided to corrupt (typed blobs have no byte
/// representation to flip, so corruption is modeled at read time).
struct CorruptedBlob;

/// Where staged blobs physically live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SideChannelBackend {
    /// In-process store with modeled byte accounting (fast; default).
    #[default]
    Memory,
    /// Real files under a directory — the paper's actual mechanism
    /// (`block.tofile()` onto GPFS). Only the block-typed API
    /// ([`SideChannel::put_block`] / [`SideChannel::get_block_arc`]) and
    /// the raw-bytes API use the disk; generic typed blobs stay in memory.
    Disk(PathBuf),
}

/// Keyed blob store standing in for the cluster's shared persistent
/// storage (GPFS in the paper's testbed).
pub struct SideChannel {
    blobs: Mutex<HashMap<String, Blob>>,
    metrics: Arc<Metrics>,
    available: AtomicBool,
    backend: SideChannelBackend,
    /// Chaos schedule shared with the owning context ([`None`] = no chaos).
    chaos: Arc<Mutex<Option<Arc<ChaosState>>>>,
}

impl SideChannel {
    pub(crate) fn new(
        metrics: Arc<Metrics>,
        backend: SideChannelBackend,
        chaos: Arc<Mutex<Option<Arc<ChaosState>>>>,
    ) -> SparkResult<Self> {
        if let SideChannelBackend::Disk(dir) = &backend {
            std::fs::create_dir_all(dir).map_err(|e| {
                SparkError::User(format!(
                    "cannot create side-channel directory {}: {e}",
                    dir.display()
                ))
            })?;
        }
        Ok(SideChannel {
            blobs: Mutex::new(HashMap::new()),
            metrics,
            available: AtomicBool::new(true),
            backend,
            chaos,
        })
    }

    /// The configured backend.
    pub fn backend(&self) -> &SideChannelBackend {
        &self.backend
    }

    /// Short human-readable backend label (`"memory"` or `"disk:<dir>"`).
    pub fn backend_name(&self) -> String {
        match &self.backend {
            SideChannelBackend::Memory => "memory".to_string(),
            SideChannelBackend::Disk(dir) => format!("disk:{}", dir.display()),
        }
    }

    fn disk_path(dir: &std::path::Path, key: &str) -> PathBuf {
        // Keys use ':' separators; keep filenames portable.
        dir.join(key.replace([':', '/'], "_"))
    }

    /// Every key currently stored (memory blob keys plus, on the disk
    /// backend, the staged file names — which have `:` mapped to `_`).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.blobs.lock().keys().cloned().collect();
        if let SideChannelBackend::Disk(dir) = &self.backend {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for e in entries.flatten() {
                    keys.push(e.file_name().to_string_lossy().into_owned());
                }
            }
        }
        keys.sort();
        keys.dedup();
        keys
    }

    /// Builds the diagnostic miss error for `key`: names the backend and
    /// the stored keys sharing the longest prefix with the missing one.
    fn miss_error(&self, key: &str) -> SparkError {
        let probe = match &self.backend {
            SideChannelBackend::Memory => key.to_string(),
            // Disk keys are listed in filename form; compare like with like.
            SideChannelBackend::Disk(_) => key.replace([':', '/'], "_"),
        };
        let lcp = |a: &str, b: &str| a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count();
        let mut nearest = self.keys();
        nearest.retain(|k| k != key && k != &probe);
        nearest.sort_by(|a, b| lcp(b, &probe).cmp(&lcp(a, &probe)).then_with(|| a.cmp(b)));
        nearest.truncate(3);
        SparkError::SideChannelMiss {
            key: key.to_string(),
            backend: self.backend_name(),
            nearest,
        }
    }

    /// Applies the installed chaos schedule (if any) to a read of `key`.
    /// Transient faults fail just this read; missing-key faults really
    /// delete the blob first (so retries keep missing); corruption faults
    /// flip stored bytes where a byte representation exists, else poison
    /// the typed blob.
    fn apply_read_fault(&self, key: &str) -> SparkResult<()> {
        let state = self.chaos.lock().clone();
        let Some(state) = state else { return Ok(()) };
        match state.read_fault(key) {
            None => Ok(()),
            Some(ReadFault::Transient) => Err(SparkError::SideChannelTransient {
                key: key.to_string(),
            }),
            Some(ReadFault::Missing) => {
                self.remove(key);
                Ok(())
            }
            Some(ReadFault::Corrupt) => {
                self.corrupt(key);
                Ok(())
            }
        }
    }

    /// Corrupts the stored representation of `key` in place (chaos only).
    fn corrupt(&self, key: &str) {
        if let SideChannelBackend::Disk(dir) = &self.backend {
            let path = Self::disk_path(dir, key);
            if let Ok(mut raw) = std::fs::read(&path) {
                if let Some(last) = raw.last_mut() {
                    *last ^= 0xFF;
                    let _ = std::fs::write(&path, &raw);
                    return;
                }
            }
        }
        let mut blobs = self.blobs.lock();
        if let Some(blob) = blobs.get(key) {
            if let Some(bytes) = blob.downcast_ref::<Bytes>() {
                let mut raw = bytes.to_vec();
                if let Some(last) = raw.last_mut() {
                    *last ^= 0xFF;
                }
                blobs.insert(key.to_string(), Arc::new(Bytes::from(raw)));
            } else {
                blobs.insert(key.to_string(), Arc::new(CorruptedBlob));
            }
        }
    }

    /// Stages a matrix block. On the [`SideChannelBackend::Disk`] backend
    /// this writes the block's binary serialization to a real file — the
    /// paper's `tofile()` path — wrapped in a versioned, checksummed
    /// frame; otherwise it is an in-memory blob.
    pub fn put_block(&self, key: impl Into<String>, value: Block) -> SparkResult<()> {
        let key = key.into();
        match &self.backend {
            SideChannelBackend::Memory => {
                self.put(key, value);
                Ok(())
            }
            SideChannelBackend::Disk(dir) => {
                let framed = serialize::frame(FRAME_KIND_BLOCK, &value.to_bytes());
                self.metrics.add(&self.metrics.side_channel_writes, 1);
                self.metrics.add(
                    &self.metrics.side_channel_bytes_written,
                    framed.len() as u64,
                );
                std::fs::write(Self::disk_path(dir, &key), &framed).map_err(|e| {
                    SparkError::User(format!("side-channel write failed for '{key}': {e}"))
                })
            }
        }
    }

    /// Fetches a staged matrix block. Disk-backed blobs are integrity
    /// checked: a frame that fails its checksum (or carries a foreign
    /// version) surfaces [`SparkError::SideChannelCorrupt`] instead of
    /// decoding garbage.
    pub fn get_block_arc(&self, key: &str) -> SparkResult<Arc<Block>> {
        match &self.backend {
            SideChannelBackend::Memory => self.get_arc::<Block>(key),
            SideChannelBackend::Disk(dir) => {
                if !self.available.load(Ordering::Relaxed) {
                    return Err(self.miss_error(key));
                }
                self.apply_read_fault(key)?;
                let bytes =
                    std::fs::read(Self::disk_path(dir, key)).map_err(|_| self.miss_error(key))?;
                let corrupt = |detail: String| SparkError::SideChannelCorrupt {
                    key: key.to_string(),
                    detail,
                };
                let (kind, body) =
                    serialize::unframe(&bytes).map_err(|e| corrupt(e.to_string()))?;
                if kind != FRAME_KIND_BLOCK {
                    return Err(corrupt(format!(
                        "expected a block frame, found kind {kind}"
                    )));
                }
                let blk = Block::from_bytes(body).map_err(|e| corrupt(e.to_string()))?;
                self.metrics.add(&self.metrics.side_channel_reads, 1);
                self.metrics
                    .add(&self.metrics.side_channel_bytes_read, bytes.len() as u64);
                Ok(Arc::new(blk))
            }
        }
    }

    /// Stores raw bytes under `key` (checkpoint frames, opaque payloads).
    /// Hits the disk on the [`SideChannelBackend::Disk`] backend.
    pub fn put_bytes(&self, key: impl Into<String>, value: Bytes) -> SparkResult<()> {
        let key = key.into();
        self.metrics.add(&self.metrics.side_channel_writes, 1);
        self.metrics
            .add(&self.metrics.side_channel_bytes_written, value.len() as u64);
        match &self.backend {
            SideChannelBackend::Memory => {
                self.blobs.lock().insert(key, Arc::new(value));
                Ok(())
            }
            SideChannelBackend::Disk(dir) => std::fs::write(Self::disk_path(dir, &key), &value)
                .map_err(|e| {
                    SparkError::User(format!("side-channel write failed for '{key}': {e}"))
                }),
        }
    }

    /// Reads raw bytes stored by [`SideChannel::put_bytes`]. Performs no
    /// integrity check itself — callers framing their payloads (the
    /// checkpoint store) verify the checksum on decode.
    pub fn get_bytes(&self, key: &str) -> SparkResult<Bytes> {
        if !self.available.load(Ordering::Relaxed) {
            return Err(self.miss_error(key));
        }
        self.apply_read_fault(key)?;
        match &self.backend {
            SideChannelBackend::Memory => {
                // Guard dropped before `miss_error` re-locks for its
                // nearest-key diagnostics.
                let blob = self.blobs.lock().get(key).cloned();
                let blob = blob.ok_or_else(|| self.miss_error(key))?;
                if blob.downcast_ref::<CorruptedBlob>().is_some() {
                    return Err(SparkError::SideChannelCorrupt {
                        key: key.to_string(),
                        detail: "blob poisoned by chaos schedule".to_string(),
                    });
                }
                let typed = blob
                    .downcast::<Bytes>()
                    .map_err(|_| SparkError::SideChannelType { key: key.into() })?;
                self.metrics.add(&self.metrics.side_channel_reads, 1);
                self.metrics
                    .add(&self.metrics.side_channel_bytes_read, typed.len() as u64);
                Ok((*typed).clone())
            }
            SideChannelBackend::Disk(dir) => {
                let raw =
                    std::fs::read(Self::disk_path(dir, key)).map_err(|_| self.miss_error(key))?;
                self.metrics.add(&self.metrics.side_channel_reads, 1);
                self.metrics
                    .add(&self.metrics.side_channel_bytes_read, raw.len() as u64);
                Ok(Bytes::from(raw))
            }
        }
    }

    /// Writes `value` under `key` (the paper's `block.tofile()`),
    /// overwriting any previous blob.
    pub fn put<T: Data + EstimateSize>(&self, key: impl Into<String>, value: T) {
        let key = key.into();
        let bytes = value.estimate_bytes() as u64;
        self.metrics.add(&self.metrics.side_channel_writes, 1);
        self.metrics
            .add(&self.metrics.side_channel_bytes_written, bytes);
        self.blobs.lock().insert(key, Arc::new(value));
    }

    /// Reads the blob under `key` without cloning the payload.
    ///
    /// Errors with [`SparkError::SideChannelMiss`] when the blob is absent
    /// or the storage is unavailable — the impure solvers' failure mode.
    pub fn get_arc<T: Data + EstimateSize>(&self, key: &str) -> SparkResult<Arc<T>> {
        if !self.available.load(Ordering::Relaxed) {
            return Err(self.miss_error(key));
        }
        self.apply_read_fault(key)?;
        // Drop the map guard before building the miss diagnostic:
        // `miss_error` enumerates stored keys and takes this lock again.
        let blob = self.blobs.lock().get(key).cloned();
        let blob = blob.ok_or_else(|| self.miss_error(key))?;
        if blob.downcast_ref::<CorruptedBlob>().is_some() {
            return Err(SparkError::SideChannelCorrupt {
                key: key.to_string(),
                detail: "blob poisoned by chaos schedule".to_string(),
            });
        }
        let typed = blob
            .downcast::<T>()
            .map_err(|_| SparkError::SideChannelType { key: key.into() })?;
        self.metrics.add(&self.metrics.side_channel_reads, 1);
        self.metrics.add(
            &self.metrics.side_channel_bytes_read,
            typed.estimate_bytes() as u64,
        );
        Ok(typed)
    }

    /// Reads and clones the blob under `key`.
    pub fn get<T: Data + EstimateSize>(&self, key: &str) -> SparkResult<T> {
        self.get_arc::<T>(key).map(|arc| (*arc).clone())
    }

    /// Whether a blob exists under `key` (either backend).
    pub fn contains(&self, key: &str) -> bool {
        if self.blobs.lock().contains_key(key) {
            return true;
        }
        if let SideChannelBackend::Disk(dir) = &self.backend {
            return Self::disk_path(dir, key).exists();
        }
        false
    }

    /// Deletes one blob (per-iteration cleanup in the solvers).
    pub fn remove(&self, key: &str) {
        self.blobs.lock().remove(key);
        if let SideChannelBackend::Disk(dir) = &self.backend {
            let _ = std::fs::remove_file(Self::disk_path(dir, key));
        }
    }

    /// Deletes every blob (fault injection: "the shared storage lost the
    /// staged data between task attempts").
    pub fn clear(&self) {
        self.blobs.lock().clear();
        if let SideChannelBackend::Disk(dir) = &self.backend {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for e in entries.flatten() {
                    let _ = std::fs::remove_file(e.path());
                }
            }
        }
    }

    /// Number of stored blobs (both backends).
    pub fn len(&self) -> usize {
        let mem = self.blobs.lock().len();
        let disk = match &self.backend {
            SideChannelBackend::Disk(dir) => {
                std::fs::read_dir(dir).map(|it| it.count()).unwrap_or(0)
            }
            SideChannelBackend::Memory => 0,
        };
        mem + disk
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flips storage availability; reads fail while unavailable.
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaosConfig, SparkConfig, SparkContext};

    #[test]
    fn put_get_roundtrip() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("col:3", vec![1.0f64, 2.0, 3.0]);
        let got: Vec<f64> = ch.get("col:3").unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        assert!(ch.contains("col:3"));
        assert_eq!(ch.len(), 1);
    }

    #[test]
    fn miss_is_an_error_naming_backend_and_neighbours() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("cb:1:diag", 1u64);
        ch.put("cb:1:col:2", 2u64);
        ch.put("unrelated", 3u64);
        let err = ch.get::<u64>("cb:0:diag").unwrap_err();
        match err {
            SparkError::SideChannelMiss {
                key,
                backend,
                nearest,
            } => {
                assert_eq!(key, "cb:0:diag");
                assert_eq!(backend, "memory");
                assert_eq!(nearest.len(), 3);
                // The cb-prefixed keys rank before the unrelated one.
                assert!(nearest[0].starts_with("cb:"), "nearest: {nearest:?}");
                assert!(nearest[1].starts_with("cb:"), "nearest: {nearest:?}");
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn type_confusion_is_an_error() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("x", 1u64);
        let err = ch.get::<f64>("x").unwrap_err();
        assert_eq!(err, SparkError::SideChannelType { key: "x".into() });
    }

    #[test]
    fn unavailability_breaks_reads_not_writes() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("k", 5u64);
        ch.set_available(false);
        assert!(ch.get::<u64>("k").is_err());
        ch.set_available(true);
        assert_eq!(ch.get::<u64>("k").unwrap(), 5);
    }

    #[test]
    fn byte_accounting() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        let before = sc.metrics();
        ch.put("a", vec![0u64; 10]); // 24 + 80 bytes
        let _ = ch.get::<Vec<u64>>("a").unwrap();
        let d = sc.metrics().delta(&before);
        assert_eq!(d.side_channel_writes, 1);
        assert_eq!(d.side_channel_reads, 1);
        assert_eq!(d.side_channel_bytes_written, 104);
        assert_eq!(d.side_channel_bytes_read, 104);
    }

    #[test]
    fn clear_and_remove() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("a", 1u64);
        ch.put("b", 2u64);
        ch.remove("a");
        assert!(!ch.contains("a"));
        assert!(ch.contains("b"));
        ch.clear();
        assert!(ch.is_empty());
    }

    #[test]
    fn readable_from_tasks() {
        let sc = SparkContext::new(SparkConfig::with_cores(4));
        sc.side_channel().put("scale", 10u64);
        let sc2 = sc.clone();
        let rdd = sc.parallelize(vec![1u64, 2, 3], 3).try_map(move |x| {
            let s = sc2.side_channel().get::<u64>("scale")?;
            Ok(x * s)
        });
        let mut out = rdd.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn raw_bytes_roundtrip_both_backends() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let payload = Bytes::from(vec![1u8, 2, 3, 255]);
        sc.side_channel().put_bytes("raw", payload.clone()).unwrap();
        assert_eq!(sc.side_channel().get_bytes("raw").unwrap(), payload);

        let dir = std::env::temp_dir().join(format!("sparklet-raw-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        sc.side_channel().put_bytes("raw", payload.clone()).unwrap();
        assert_eq!(sc.side_channel().get_bytes("raw").unwrap(), payload);
        assert!(sc.side_channel().keys().contains(&"raw".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backend_roundtrips_blocks() {
        let dir = std::env::temp_dir().join(format!("sparklet-sc-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        let ch = sc.side_channel();
        let mut blk = Block::identity(4);
        blk.set(1, 2, 7.5);
        ch.put_block("col:3", blk.clone()).unwrap();
        assert!(ch.contains("col:3"));
        assert_eq!(ch.len(), 1);
        let got = ch.get_block_arc("col:3").unwrap();
        assert_eq!(*got, blk);
        // Files really exist on disk.
        assert!(dir.join("col_3").exists());
        ch.remove("col:3");
        assert!(!ch.contains("col:3"));
        ch.put_block("a", Block::infinity(2)).unwrap();
        ch.put_block("b", Block::infinity(2)).unwrap();
        ch.clear();
        assert!(ch.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backend_honours_availability() {
        let dir = std::env::temp_dir().join(format!("sparklet-sc-av-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        let ch = sc.side_channel();
        ch.put_block("k", Block::identity(2)).unwrap();
        ch.set_available(false);
        assert!(ch.get_block_arc("k").is_err());
        ch.set_available(true);
        assert!(ch.get_block_arc("k").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backend_counts_bytes() {
        let dir = std::env::temp_dir().join(format!("sparklet-sc-b-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        let before = sc.metrics();
        sc.side_channel()
            .put_block("x", Block::identity(8))
            .unwrap();
        let _ = sc.side_channel().get_block_arc("x").unwrap();
        let d = sc.metrics().delta(&before);
        let framed = (serialize::FRAME_HEADER_LEN + 8 + 64 * 8) as u64;
        assert_eq!(d.side_channel_bytes_written, framed);
        assert_eq!(d.side_channel_bytes_read, framed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_corruption_is_detected_by_checksum() {
        let dir = std::env::temp_dir().join(format!("sparklet-sc-c-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        let ch = sc.side_channel();
        ch.put_block("x", Block::identity(4)).unwrap();
        // Flip one byte of the stored payload on disk.
        let path = dir.join("x");
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        match ch.get_block_arc("x") {
            Err(SparkError::SideChannelCorrupt { key, detail }) => {
                assert_eq!(key, "x");
                assert!(detail.contains("checksum"), "detail: {detail}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn task_sees_miss_after_clear() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        sc.side_channel().put("v", 1u64);
        sc.side_channel().clear();
        let sc2 = sc.clone();
        let rdd = sc.parallelize(vec![1u64], 1).try_map(move |x| {
            let v = sc2.side_channel().get::<u64>("v")?;
            Ok(x + v)
        });
        match rdd.collect() {
            Err(e) => match e.root() {
                SparkError::SideChannelMiss { key, .. } => assert_eq!(key, "v"),
                other => panic!("expected miss at root, got {other:?}"),
            },
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn chaos_missing_key_really_deletes() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        sc.install_chaos(ChaosConfig::new(3).missing_keys(1.0));
        let ch = sc.side_channel();
        ch.put("k", 7u64);
        assert!(matches!(
            ch.get::<u64>("k").unwrap_err(),
            SparkError::SideChannelMiss { .. }
        ));
        // The blob is gone for good, not just failed once.
        sc.clear_chaos();
        assert!(!ch.contains("k"));
    }

    #[test]
    fn chaos_transient_fault_clears_on_retry() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        // Rate 0.5: over 64 draws on the same key both outcomes occur, and
        // the blob itself survives every one of them.
        sc.install_chaos(ChaosConfig::new(11).transient_reads(0.5));
        let ch = sc.side_channel();
        ch.put("k", 7u64);
        let outcomes: Vec<bool> = (0..64).map(|_| ch.get::<u64>("k").is_ok()).collect();
        assert!(outcomes.iter().any(|&ok| ok));
        assert!(outcomes.iter().any(|&ok| !ok));
        sc.clear_chaos();
        assert_eq!(ch.get::<u64>("k").unwrap(), 7);
    }

    #[test]
    fn chaos_corruption_poisons_typed_blob() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        sc.install_chaos(ChaosConfig::new(17).corrupt_blocks(1.0));
        let ch = sc.side_channel();
        ch.put("k", 7u64);
        assert!(matches!(
            ch.get::<u64>("k").unwrap_err(),
            SparkError::SideChannelCorrupt { .. }
        ));
        // Corruption persists even after the schedule is lifted.
        sc.clear_chaos();
        assert!(matches!(
            ch.get::<u64>("k").unwrap_err(),
            SparkError::SideChannelCorrupt { .. }
        ));
    }
}
