//! The shared-persistent-storage side channel.
//!
//! The paper's Repeated Squaring and Blocked Collect/Broadcast solvers
//! bypass Spark's missing executor-to-executor broadcast by writing blocks
//! to a shared file system (GPFS/HDFS) from the driver and reading them in
//! tasks (Algorithms 1 and 4). That communication is *outside* the RDD
//! lineage: if the blobs disappear, recomputed tasks cannot reproduce them
//! — which is precisely why the paper classifies those solvers as "impure"
//! / not fault-tolerant. [`SideChannel`] models the mechanism: a keyed blob
//! store with byte accounting and an availability switch + deletion for
//! fault-injection experiments.

use crate::error::{SparkError, SparkResult};
use crate::metrics::Metrics;
use crate::size::EstimateSize;
use crate::Data;
use apsp_blockmat::Block;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Blob = Arc<dyn Any + Send + Sync>;

/// Where staged blobs physically live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SideChannelBackend {
    /// In-process store with modeled byte accounting (fast; default).
    #[default]
    Memory,
    /// Real files under a directory — the paper's actual mechanism
    /// (`block.tofile()` onto GPFS). Only the block-typed API
    /// ([`SideChannel::put_block`] / [`SideChannel::get_block_arc`]) uses
    /// the disk; generic typed blobs stay in memory.
    Disk(PathBuf),
}

/// Keyed blob store standing in for the cluster's shared persistent
/// storage (GPFS in the paper's testbed).
pub struct SideChannel {
    blobs: Mutex<HashMap<String, Blob>>,
    metrics: Arc<Metrics>,
    available: AtomicBool,
    backend: SideChannelBackend,
}

impl SideChannel {
    pub(crate) fn new(metrics: Arc<Metrics>, backend: SideChannelBackend) -> Self {
        if let SideChannelBackend::Disk(dir) = &backend {
            std::fs::create_dir_all(dir).expect("cannot create side-channel directory");
        }
        SideChannel {
            blobs: Mutex::new(HashMap::new()),
            metrics,
            available: AtomicBool::new(true),
            backend,
        }
    }

    /// The configured backend.
    pub fn backend(&self) -> &SideChannelBackend {
        &self.backend
    }

    fn disk_path(dir: &std::path::Path, key: &str) -> PathBuf {
        // Keys use ':' separators; keep filenames portable.
        dir.join(key.replace([':', '/'], "_"))
    }

    /// Stages a matrix block. On the [`SideChannelBackend::Disk`] backend
    /// this writes the block's binary serialization to a real file — the
    /// paper's `tofile()` path — otherwise it is an in-memory blob.
    pub fn put_block(&self, key: impl Into<String>, value: Block) {
        let key = key.into();
        match &self.backend {
            SideChannelBackend::Memory => self.put(key, value),
            SideChannelBackend::Disk(dir) => {
                let bytes = value.to_bytes();
                self.metrics.add(&self.metrics.side_channel_writes, 1);
                self.metrics
                    .add(&self.metrics.side_channel_bytes_written, bytes.len() as u64);
                std::fs::write(Self::disk_path(dir, &key), &bytes)
                    .expect("side-channel write failed");
            }
        }
    }

    /// Fetches a staged matrix block.
    pub fn get_block_arc(&self, key: &str) -> SparkResult<Arc<Block>> {
        match &self.backend {
            SideChannelBackend::Memory => self.get_arc::<Block>(key),
            SideChannelBackend::Disk(dir) => {
                if !self.available.load(Ordering::Relaxed) {
                    return Err(SparkError::SideChannelMiss { key: key.into() });
                }
                let bytes = std::fs::read(Self::disk_path(dir, key))
                    .map_err(|_| SparkError::SideChannelMiss { key: key.into() })?;
                let blk = Block::from_bytes(&bytes)
                    .map_err(|_| SparkError::SideChannelType { key: key.into() })?;
                self.metrics.add(&self.metrics.side_channel_reads, 1);
                self.metrics
                    .add(&self.metrics.side_channel_bytes_read, bytes.len() as u64);
                Ok(Arc::new(blk))
            }
        }
    }

    /// Writes `value` under `key` (the paper's `block.tofile()`),
    /// overwriting any previous blob.
    pub fn put<T: Data + EstimateSize>(&self, key: impl Into<String>, value: T) {
        let key = key.into();
        let bytes = value.estimate_bytes() as u64;
        self.metrics.add(&self.metrics.side_channel_writes, 1);
        self.metrics
            .add(&self.metrics.side_channel_bytes_written, bytes);
        self.blobs.lock().insert(key, Arc::new(value));
    }

    /// Reads the blob under `key` without cloning the payload.
    ///
    /// Errors with [`SparkError::SideChannelMiss`] when the blob is absent
    /// or the storage is unavailable — the impure solvers' failure mode.
    pub fn get_arc<T: Data + EstimateSize>(&self, key: &str) -> SparkResult<Arc<T>> {
        if !self.available.load(Ordering::Relaxed) {
            return Err(SparkError::SideChannelMiss { key: key.into() });
        }
        let blob = self
            .blobs
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| SparkError::SideChannelMiss { key: key.into() })?;
        let typed = blob
            .downcast::<T>()
            .map_err(|_| SparkError::SideChannelType { key: key.into() })?;
        self.metrics.add(&self.metrics.side_channel_reads, 1);
        self.metrics.add(
            &self.metrics.side_channel_bytes_read,
            typed.estimate_bytes() as u64,
        );
        Ok(typed)
    }

    /// Reads and clones the blob under `key`.
    pub fn get<T: Data + EstimateSize>(&self, key: &str) -> SparkResult<T> {
        self.get_arc::<T>(key).map(|arc| (*arc).clone())
    }

    /// Whether a blob exists under `key` (either backend).
    pub fn contains(&self, key: &str) -> bool {
        if self.blobs.lock().contains_key(key) {
            return true;
        }
        if let SideChannelBackend::Disk(dir) = &self.backend {
            return Self::disk_path(dir, key).exists();
        }
        false
    }

    /// Deletes one blob (per-iteration cleanup in the solvers).
    pub fn remove(&self, key: &str) {
        self.blobs.lock().remove(key);
        if let SideChannelBackend::Disk(dir) = &self.backend {
            let _ = std::fs::remove_file(Self::disk_path(dir, key));
        }
    }

    /// Deletes every blob (fault injection: "the shared storage lost the
    /// staged data between task attempts").
    pub fn clear(&self) {
        self.blobs.lock().clear();
        if let SideChannelBackend::Disk(dir) = &self.backend {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for e in entries.flatten() {
                    let _ = std::fs::remove_file(e.path());
                }
            }
        }
    }

    /// Number of stored blobs (both backends).
    pub fn len(&self) -> usize {
        let mem = self.blobs.lock().len();
        let disk = match &self.backend {
            SideChannelBackend::Disk(dir) => {
                std::fs::read_dir(dir).map(|it| it.count()).unwrap_or(0)
            }
            SideChannelBackend::Memory => 0,
        };
        mem + disk
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flips storage availability; reads fail while unavailable.
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SparkConfig, SparkContext};

    #[test]
    fn put_get_roundtrip() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("col:3", vec![1.0f64, 2.0, 3.0]);
        let got: Vec<f64> = ch.get("col:3").unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        assert!(ch.contains("col:3"));
        assert_eq!(ch.len(), 1);
    }

    #[test]
    fn miss_is_an_error() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let err = sc.side_channel().get::<u64>("nope").unwrap_err();
        assert_eq!(err, SparkError::SideChannelMiss { key: "nope".into() });
    }

    #[test]
    fn type_confusion_is_an_error() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("x", 1u64);
        let err = ch.get::<f64>("x").unwrap_err();
        assert_eq!(err, SparkError::SideChannelType { key: "x".into() });
    }

    #[test]
    fn unavailability_breaks_reads_not_writes() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("k", 5u64);
        ch.set_available(false);
        assert!(ch.get::<u64>("k").is_err());
        ch.set_available(true);
        assert_eq!(ch.get::<u64>("k").unwrap(), 5);
    }

    #[test]
    fn byte_accounting() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        let before = sc.metrics();
        ch.put("a", vec![0u64; 10]); // 24 + 80 bytes
        let _ = ch.get::<Vec<u64>>("a").unwrap();
        let d = sc.metrics().delta(&before);
        assert_eq!(d.side_channel_writes, 1);
        assert_eq!(d.side_channel_reads, 1);
        assert_eq!(d.side_channel_bytes_written, 104);
        assert_eq!(d.side_channel_bytes_read, 104);
    }

    #[test]
    fn clear_and_remove() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        let ch = sc.side_channel();
        ch.put("a", 1u64);
        ch.put("b", 2u64);
        ch.remove("a");
        assert!(!ch.contains("a"));
        assert!(ch.contains("b"));
        ch.clear();
        assert!(ch.is_empty());
    }

    #[test]
    fn readable_from_tasks() {
        let sc = SparkContext::new(SparkConfig::with_cores(4));
        sc.side_channel().put("scale", 10u64);
        let sc2 = sc.clone();
        let rdd = sc.parallelize(vec![1u64, 2, 3], 3).try_map(move |x| {
            let s = sc2.side_channel().get::<u64>("scale")?;
            Ok(x * s)
        });
        let mut out = rdd.collect().unwrap();
        out.sort();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn disk_backend_roundtrips_blocks() {
        let dir = std::env::temp_dir().join(format!("sparklet-sc-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        let ch = sc.side_channel();
        let mut blk = Block::identity(4);
        blk.set(1, 2, 7.5);
        ch.put_block("col:3", blk.clone());
        assert!(ch.contains("col:3"));
        assert_eq!(ch.len(), 1);
        let got = ch.get_block_arc("col:3").unwrap();
        assert_eq!(*got, blk);
        // Files really exist on disk.
        assert!(dir.join("col_3").exists());
        ch.remove("col:3");
        assert!(!ch.contains("col:3"));
        ch.put_block("a", Block::infinity(2));
        ch.put_block("b", Block::infinity(2));
        ch.clear();
        assert!(ch.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backend_honours_availability() {
        let dir = std::env::temp_dir().join(format!("sparklet-sc-av-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        let ch = sc.side_channel();
        ch.put_block("k", Block::identity(2));
        ch.set_available(false);
        assert!(ch.get_block_arc("k").is_err());
        ch.set_available(true);
        assert!(ch.get_block_arc("k").is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backend_counts_bytes() {
        let dir = std::env::temp_dir().join(format!("sparklet-sc-b-{}", std::process::id()));
        let sc = SparkContext::new(SparkConfig::with_cores(2).disk_side_channel(&dir));
        let before = sc.metrics();
        sc.side_channel().put_block("x", Block::identity(8));
        let _ = sc.side_channel().get_block_arc("x").unwrap();
        let d = sc.metrics().delta(&before);
        assert_eq!(d.side_channel_bytes_written, 8 + 64 * 8);
        assert_eq!(d.side_channel_bytes_read, 8 + 64 * 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn task_sees_miss_after_clear() {
        let sc = SparkContext::new(SparkConfig::with_cores(2));
        sc.side_channel().put("v", 1u64);
        sc.side_channel().clear();
        let sc2 = sc.clone();
        let rdd = sc.parallelize(vec![1u64], 1).try_map(move |x| {
            let v = sc2.side_channel().get::<u64>("v")?;
            Ok(x + v)
        });
        match rdd.collect() {
            Err(SparkError::SideChannelMiss { key }) => assert_eq!(key, "v"),
            other => panic!("expected miss, got {other:?}"),
        }
    }
}
