//! RDD partitioners.
//!
//! The paper (§5.3) shows partitioner choice is decisive at large block
//! sizes: pySpark's default `portable_hash` "uses XOR based mixing of
//! elements of the tuple, which in case of upper-triangular matrix leads to
//! many collisions", producing skewed partitions; their custom
//! multi-diagonal (MD) partitioner spreads row/column crosses evenly. Both
//! are implemented here — `portable_hash` as a bit-faithful port of the
//! CPython-2.7 tuple hash pySpark uses, so the skew is reproduced, not
//! simulated.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// Assigns shuffle keys to partitions. Implementations must be
/// deterministic: the same key always lands in the same partition.
pub trait Partitioner<K>: Send + Sync + 'static {
    /// Number of output partitions.
    fn num_partitions(&self) -> usize;
    /// Partition index for `key`, in `0..num_partitions()`.
    fn partition(&self, key: &K) -> usize;
    /// Stable identity used to detect "already partitioned this way"
    /// (Spark's `partitionBy` no-op optimization): equal identities must
    /// imply identical key→partition mappings.
    fn identity(&self) -> (String, usize);
}

/// Python-2.7 `sys.maxsize` on 64-bit platforms: the mask pySpark's
/// `portable_hash` applies after every multiply.
const PY_MAXSIZE: i64 = i64::MAX;

/// Types hashable with pySpark's `portable_hash`.
///
/// For non-negative machine integers CPython 2.7 defines `hash(x) == x`,
/// and tuples use the `0x345678`/`1000003` XOR-multiply scheme replicated
/// in the tuple implementations below.
pub trait PortableHashable {
    /// The CPython-2.7 / pySpark `portable_hash` value.
    fn portable_hash(&self) -> i64;
}

macro_rules! impl_portable_int {
    ($($t:ty),*) => {
        $(impl PortableHashable for $t {
            #[inline]
            fn portable_hash(&self) -> i64 {
                // CPython 2.7: hash of a machine integer is the integer.
                *self as i64
            }
        })*
    };
}

impl_portable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: PortableHashable, B: PortableHashable> PortableHashable for (A, B) {
    fn portable_hash(&self) -> i64 {
        portable_tuple_hash(&[self.0.portable_hash(), self.1.portable_hash()])
    }
}

impl<A: PortableHashable, B: PortableHashable, C: PortableHashable> PortableHashable for (A, B, C) {
    fn portable_hash(&self) -> i64 {
        portable_tuple_hash(&[
            self.0.portable_hash(),
            self.1.portable_hash(),
            self.2.portable_hash(),
        ])
    }
}

/// pySpark's `portable_hash` over a tuple of pre-hashed elements:
///
/// ```python
/// h = 0x345678
/// for i in x:
///     h ^= portable_hash(i)
///     h *= 1000003
///     h &= sys.maxsize
/// h ^= len(x)
/// if h == -1: h = -2
/// ```
pub fn portable_tuple_hash(elems: &[i64]) -> i64 {
    let mut h: i64 = 0x345678;
    for &e in elems {
        h ^= e;
        h = h.wrapping_mul(1_000_003);
        h &= PY_MAXSIZE;
    }
    h ^= elems.len() as i64;
    if h == -1 {
        h = -2;
    }
    h
}

/// pySpark's default partitioner: `portable_hash(key) % num_partitions`
/// (Python's `%` is non-negative for a non-negative modulus).
#[derive(Debug)]
pub struct PortableHashPartitioner<K> {
    num: usize,
    _k: PhantomData<fn(&K)>,
}

impl<K> PortableHashPartitioner<K> {
    /// Creates a portable-hash partitioner with `num` partitions.
    pub fn new(num: usize) -> Self {
        assert!(num > 0, "need at least one partition");
        PortableHashPartitioner {
            num,
            _k: PhantomData,
        }
    }
}

impl<K: PortableHashable + Send + Sync + 'static> Partitioner<K> for PortableHashPartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.num
    }
    fn partition(&self, key: &K) -> usize {
        key.portable_hash().rem_euclid(self.num as i64) as usize
    }
    fn identity(&self) -> (String, usize) {
        ("portable_hash".into(), self.num)
    }
}

/// The paper's multi-diagonal (MD) partitioner (§5.3, Fig. 4) for
/// upper-triangular block keys `(I, J)` of a `q × q` block grid.
///
/// Blocks are enumerated diagonal-by-diagonal (main diagonal first) and
/// assigned partitions round-robin, so (a) every partition receives the
/// same number of blocks (±1), and (b) the blocks of any row-block or
/// column-block "cross" — the hot set of one blocked-FW iteration — spread
/// across distinct partitions. Keys below the diagonal are mirrored, since
/// the executor owning `A_IJ` also serves `A_JI`.
#[derive(Debug)]
pub struct MultiDiagonalPartitioner {
    q: usize,
    num: usize,
}

impl MultiDiagonalPartitioner {
    /// Creates an MD partitioner for a `q × q` block grid and `num`
    /// partitions.
    pub fn new(q: usize, num: usize) -> Self {
        assert!(num > 0, "need at least one partition");
        assert!(q > 0, "need at least one block");
        MultiDiagonalPartitioner { q, num }
    }

    /// Linear index of upper-triangular block `(i, j)` (`i <= j`) in the
    /// diagonal-major enumeration.
    fn diag_index(&self, i: usize, j: usize) -> usize {
        let d = j - i;
        // Blocks on diagonals 0..d: sum_{e=0}^{d-1} (q - e) = d*q - d(d-1)/2.
        let before = d * self.q - d * d.saturating_sub(1) / 2;
        before + i
    }
}

impl Partitioner<(usize, usize)> for MultiDiagonalPartitioner {
    fn num_partitions(&self) -> usize {
        self.num
    }
    fn partition(&self, key: &(usize, usize)) -> usize {
        let (i, j) = (key.0.min(key.1), key.0.max(key.1));
        assert!(j < self.q, "block key {key:?} outside {0}x{0} grid", self.q);
        self.diag_index(i, j) % self.num
    }
    fn identity(&self) -> (String, usize) {
        (format!("multi_diagonal(q={})", self.q), self.num)
    }
}

/// Trivial modulo partitioner for integer-like keys.
#[derive(Debug)]
pub struct ModPartitioner {
    num: usize,
}

impl ModPartitioner {
    /// Creates a modulo partitioner with `num` partitions.
    pub fn new(num: usize) -> Self {
        assert!(num > 0, "need at least one partition");
        ModPartitioner { num }
    }
}

macro_rules! impl_mod_partitioner {
    ($($t:ty),*) => {
        $(impl Partitioner<$t> for ModPartitioner {
            fn num_partitions(&self) -> usize { self.num }
            fn partition(&self, key: &$t) -> usize {
                (*key as u64 % self.num as u64) as usize
            }
            fn identity(&self) -> (String, usize) { ("mod".into(), self.num) }
        })*
    };
}

impl_mod_partitioner!(u8, u16, u32, u64, usize);

/// Generic partitioner over `std::hash::Hash` keys (the closest analogue of
/// Spark-on-JVM's `HashPartitioner`).
#[derive(Debug)]
pub struct StdHashPartitioner<K> {
    num: usize,
    _k: PhantomData<fn(&K)>,
}

impl<K> StdHashPartitioner<K> {
    /// Creates a std-hash partitioner with `num` partitions.
    pub fn new(num: usize) -> Self {
        assert!(num > 0, "need at least one partition");
        StdHashPartitioner {
            num,
            _k: PhantomData,
        }
    }
}

impl<K: Hash + Send + Sync + 'static> Partitioner<K> for StdHashPartitioner<K> {
    fn num_partitions(&self) -> usize {
        self.num
    }
    fn partition(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.num as u64) as usize
    }
    fn identity(&self) -> (String, usize) {
        ("std_hash".into(), self.num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_hash_matches_cpython27_reference() {
        // Reference values computed with CPython 2.7 semantics:
        //   hash((0, 0)) = ((0x345678 ^ 0) * 1000003 ^ 0) * 1000003 ^ 2
        // evaluated with 64-bit masking.
        let h00 = portable_tuple_hash(&[0, 0]);
        let manual = {
            let mut h: i64 = 0x345678;
            h ^= 0;
            h = h.wrapping_mul(1_000_003) & i64::MAX;
            h ^= 0;
            h = h.wrapping_mul(1_000_003) & i64::MAX;
            h ^ 2
        };
        assert_eq!(h00, manual);
        // Known CPython 2.7 (64-bit) values.
        assert_eq!((0usize, 0usize).portable_hash(), 3430028580078870074);
        assert_eq!((1usize, 2usize).portable_hash(), 3430029580082870073);
        assert_eq!((0usize, 1usize).portable_hash(), 3430028580079870073);
    }

    #[test]
    fn portable_hash_xor_collision_pathology() {
        // The XOR mixing makes h((I, J)) and h((I, J^1)) differ only in low
        // bits; with power-of-two partition counts entire diagonals of an
        // upper-triangular key set collide. Quantify the skew on a q=32
        // upper-triangular grid with 64 partitions and compare to MD.
        let q = 32;
        let parts = 64;
        let ph = PortableHashPartitioner::<(usize, usize)>::new(parts);
        let md = MultiDiagonalPartitioner::new(q, parts);
        let mut ph_hist = vec![0usize; parts];
        let mut md_hist = vec![0usize; parts];
        for i in 0..q {
            for j in i..q {
                ph_hist[ph.partition(&(i, j))] += 1;
                md_hist[md.partition(&(i, j))] += 1;
            }
        }
        let blocks = q * (q + 1) / 2;
        let ideal = blocks as f64 / parts as f64;
        let ph_max = *ph_hist.iter().max().unwrap() as f64;
        let md_max = *md_hist.iter().max().unwrap() as f64;
        // MD is near-perfect by construction.
        assert!(
            md_max <= ideal.ceil(),
            "MD skewed: max {md_max}, ideal {ideal}"
        );
        // PH exhibits genuine skew (paper Fig. 3 bottom).
        assert!(
            ph_max >= 1.5 * ideal,
            "expected PH skew did not materialize: max {ph_max}, ideal {ideal}"
        );
    }

    #[test]
    fn md_balances_within_one() {
        for (q, parts) in [(8, 4), (16, 7), (20, 16), (9, 32)] {
            let md = MultiDiagonalPartitioner::new(q, parts);
            let mut hist = vec![0usize; parts];
            for i in 0..q {
                for j in i..q {
                    hist[md.partition(&(i, j))] += 1;
                }
            }
            let (lo, hi) = (hist.iter().min().unwrap(), hist.iter().max().unwrap());
            assert!(hi - lo <= 1, "q={q} parts={parts}: {hist:?}");
        }
    }

    #[test]
    fn md_mirrors_lower_triangle() {
        let md = MultiDiagonalPartitioner::new(10, 5);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(md.partition(&(i, j)), md.partition(&(j, i)));
            }
        }
    }

    #[test]
    fn md_spreads_column_cross() {
        // The hot set of blocked-FW iteration i is the cross {(I, i)} ∪
        // {(i, J)}; with P >= q the MD partitioner must not put two cross
        // blocks of distinct diagonals in one partition "by stride".
        let q = 12;
        let parts = 24;
        let md = MultiDiagonalPartitioner::new(q, parts);
        for pivot in 0..q {
            let distinct: std::collections::HashSet<usize> = (0..q)
                .map(|other| md.partition(&(other.min(pivot), other.max(pivot))))
                .collect();
            assert!(
                distinct.len() >= 2 * q / 3,
                "pivot {pivot}: cross spread over only {} of {q} partitions",
                distinct.len()
            );
        }
    }

    #[test]
    fn mod_partitioner_wraps() {
        let p = ModPartitioner::new(4);
        assert_eq!(Partitioner::<u64>::partition(&p, &7), 3);
        assert_eq!(Partitioner::<u64>::partition(&p, &8), 0);
    }

    #[test]
    fn identities_distinguish_partitioners() {
        let a = PortableHashPartitioner::<(usize, usize)>::new(8);
        let b = MultiDiagonalPartitioner::new(4, 8);
        let c = MultiDiagonalPartitioner::new(5, 8);
        assert_ne!(
            Partitioner::<(usize, usize)>::identity(&a),
            Partitioner::<(usize, usize)>::identity(&b)
        );
        assert_ne!(b.identity(), c.identity());
        assert_eq!(b.identity(), MultiDiagonalPartitioner::new(4, 8).identity());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn md_rejects_out_of_grid_keys() {
        let md = MultiDiagonalPartitioner::new(4, 2);
        md.partition(&(0, 7));
    }
}
