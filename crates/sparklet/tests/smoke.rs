//! Crate-isolation smoke tests for `cargo test -p sparklet`: the engine
//! basics and the pySpark `portable_hash` bit-compat vector the paper's
//! skew analysis depends on.

use sparklet::partitioner::{ModPartitioner, PortableHashable};
use sparklet::{SparkConfig, SparkContext};
use std::sync::Arc;

#[test]
fn rdd_map_collect_round_trip() {
    let sc = SparkContext::new(SparkConfig::with_cores(2));
    let rdd = sc.parallelize((0u64..100).collect(), 7);
    let out = rdd.map(|x| x * 3 + 1).collect().unwrap();
    assert_eq!(out, (0u64..100).map(|x| x * 3 + 1).collect::<Vec<_>>());
}

#[test]
fn shuffle_round_trip_sums() {
    let sc = SparkContext::new(SparkConfig::with_cores(2));
    let pairs: Vec<(u64, u64)> = (0..60).map(|i| (i % 3, 1)).collect();
    let mut out = sc
        .parallelize(pairs, 4)
        .reduce_by_key(Arc::new(ModPartitioner::new(2)), |a, b| a + b)
        .collect()
        .unwrap();
    out.sort();
    assert_eq!(out, vec![(0, 20), (1, 20), (2, 20)]);
}

/// Bit-compatibility vector against CPython 2.7's `hash` of tuples (the
/// function pySpark's default partitioner applies to block keys). These
/// constants were produced by `hash((i, j))` on CPython 2.7.18.
#[test]
fn portable_hash_bit_compat_vector() {
    assert_eq!((0usize, 0usize).portable_hash(), 3430028580078870074);
    assert_eq!((1usize, 2usize).portable_hash(), 3430029580082870073);
}
