//! DC-GbE: divide-and-conquer (Kleene) APSP baseline (§5.5).
//!
//! Models Solomonik et al.'s communication-avoiding solver [19] at the
//! algorithmic level: the Kleene recursion over the closure
//!
//! ```text
//! A11 ← FW(A11)            A12 ← A11 ⊗ A12       A21 ← A21 ⊗ A11
//! A22 ← min(A22, A21 ⊗ A12); A22 ← FW(A22)
//! A12 ← A12 ⊗ A22          A21 ← A22 ⊗ A21
//! A11 ← min(A11, A12 ⊗ A21)
//! ```
//!
//! distributed over `mpilite` ranks with replicated storage: every
//! min-plus product is row-split across ranks and re-assembled with
//! `all_gather`, so the simulated α–β clock captures the recursion's
//! communication volume while the computation itself runs genuinely in
//! parallel.

use crate::solver::ApspError;
use apsp_blockmat::{kernels, tropical_add, Matrix, INF};
use mpilite::{Comm, CommCost, World};

pub use crate::mpi_fw2d::MpiRunResult;

/// The divide-and-conquer APSP baseline.
#[derive(Debug, Clone)]
pub struct MpiDcApsp {
    /// Number of ranks.
    pub ranks: usize,
    /// Recursion cutoff: sub-problems of this side or smaller run
    /// sequential Floyd-Warshall (redundantly on every rank — no comm).
    pub base_size: usize,
    /// Communication cost model.
    pub cost: CommCost,
}

impl MpiDcApsp {
    /// DC-APSP on `ranks` ranks with GbE costs and a 64-vertex base case.
    pub fn new(ranks: usize) -> Self {
        MpiDcApsp {
            ranks,
            base_size: 64,
            cost: CommCost::gbe(),
        }
    }

    /// Like [`MpiDcApsp::solve_matrix`], additionally tracking the parent
    /// (via) matrix: every rank carries a replicated `u32` via buffer
    /// beside its distance copy, the row-split products gather via slices
    /// alongside distance slices (one extra `all_gather` per product on
    /// the simulated clock), and the base-case Floyd-Warshall records its
    /// pivots.
    pub fn solve_matrix_paths(
        &self,
        adjacency: &Matrix,
    ) -> Result<(MpiRunResult, apsp_graph::paths::ParentMatrix), ApspError> {
        use apsp_blockmat::NO_VIA;

        if self.ranks == 0 {
            return Err(ApspError::InvalidConfig("need at least one rank".into()));
        }
        if self.base_size == 0 {
            return Err(ApspError::InvalidConfig(
                "base size must be positive".into(),
            ));
        }
        let n = adjacency.order();
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }

        let world = World::new(self.ranks, self.cost);
        let base = self.base_size;
        let results = world.run(|comm| {
            let mut data: Vec<f64> = adjacency.data().to_vec();
            let mut via: Vec<u32> = vec![NO_VIA; n * n];
            kleene_tracked(&mut data, &mut via, n, View::full(n), base, comm);
            (data, via, comm.stats())
        });

        let mut stats = Vec::with_capacity(results.len());
        let mut sim = 0.0f64;
        let mut first: Option<(Vec<f64>, Vec<u32>)> = None;
        for (data, via, st) in results {
            if let Some((fd, fv)) = &first {
                debug_assert_eq!(fd, &data, "replica divergence (distances)");
                debug_assert_eq!(fv, &via, "replica divergence (vias)");
            } else {
                first = Some((data, via));
            }
            sim = sim.max(st.elapsed);
            stats.push(st);
        }
        let (data, via) = first.ok_or_else(|| {
            ApspError::Engine(sparklet::SparkError::User(
                "mpi world returned no rank results".into(),
            ))
        })?;
        Ok((
            MpiRunResult {
                distances: Matrix::from_vec(n, data),
                stats,
                simulated_comm_s: sim,
            },
            apsp_graph::paths::ParentMatrix::from_vias(n, via),
        ))
    }

    /// Solves APSP for a dense symmetric adjacency matrix.
    pub fn solve_matrix(&self, adjacency: &Matrix) -> Result<MpiRunResult, ApspError> {
        if self.ranks == 0 {
            return Err(ApspError::InvalidConfig("need at least one rank".into()));
        }
        if self.base_size == 0 {
            return Err(ApspError::InvalidConfig(
                "base size must be positive".into(),
            ));
        }
        let n = adjacency.order();
        if n == 0 {
            return Err(ApspError::InvalidInput("empty graph".into()));
        }

        let world = World::new(self.ranks, self.cost);
        let base = self.base_size;
        let results = world.run(|comm| {
            // Replicated storage: every rank owns a full working copy.
            let mut data: Vec<f64> = adjacency.data().to_vec();
            kleene(&mut data, n, View::full(n), base, comm);
            (data, comm.stats())
        });

        let mut stats = Vec::with_capacity(results.len());
        let mut sim = 0.0f64;
        let mut first: Option<Vec<f64>> = None;
        for (data, st) in results {
            // Replicas must agree bit-for-bit (determinism check).
            if let Some(f) = &first {
                debug_assert_eq!(f, &data, "replica divergence");
            } else {
                first = Some(data);
            }
            sim = sim.max(st.elapsed);
            stats.push(st);
        }
        let data = first.ok_or_else(|| {
            ApspError::Engine(sparklet::SparkError::User(
                "mpi world returned no rank results".into(),
            ))
        })?;
        Ok(MpiRunResult {
            distances: Matrix::from_vec(n, data),
            stats,
            simulated_comm_s: sim,
        })
    }
}

/// A rectangular view into the replicated `n × n` row-major buffer.
#[derive(Debug, Clone, Copy)]
struct View {
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
}

impl View {
    fn full(n: usize) -> View {
        View {
            r0: 0,
            c0: 0,
            rows: n,
            cols: n,
        }
    }
}

/// `C = min(C, A ⊗ B)` over views, with the rows of `C` split across
/// ranks and the result re-replicated via `all_gather`.
fn dist_minplus(data: &mut [f64], n: usize, a: View, bv: View, c: View, comm: &Comm) {
    debug_assert_eq!(a.cols, bv.rows);
    debug_assert_eq!(c.rows, a.rows);
    debug_assert_eq!(c.cols, bv.cols);
    let p = comm.size();
    let rank = comm.rank();
    let lo = c.rows * rank / p;
    let hi = c.rows * (rank + 1) / p;

    // Compute my row slice of the product (C may alias A or B in the
    // Kleene steps, so the fold cannot run in place). `mine` doubles as
    // the `all_gather` send buffer, whose ownership moves into the
    // collective — the one allocation this function cannot recycle.
    let mut mine = vec![INF; (hi - lo) * c.cols];
    for i in lo..hi {
        let arow = (a.r0 + i) * n + a.c0;
        let out = &mut mine[(i - lo) * c.cols..(i - lo + 1) * c.cols];
        // Seed with the current C row (the "min with old value" part).
        out.copy_from_slice(&data[(c.r0 + i) * n + c.c0..(c.r0 + i) * n + c.c0 + c.cols]);
        for k in 0..a.cols {
            let aik = data[arow + k];
            if aik == INF {
                continue;
            }
            let brow = (bv.r0 + k) * n + bv.c0;
            for (v, &bvj) in out.iter_mut().zip(&data[brow..brow + c.cols]) {
                *v = tropical_add(aik + bvj, *v);
            }
        }
    }

    // Re-replicate: every rank receives every slice, in rank order.
    let slices = comm.all_gather(mine, (hi - lo) * c.cols * 8);
    let mut row = 0usize;
    for slice in slices {
        debug_assert_eq!(slice.len() % c.cols.max(1), 0);
        for chunk in slice.chunks_exact(c.cols) {
            data[(c.r0 + row) * n + c.c0..(c.r0 + row) * n + c.c0 + c.cols].copy_from_slice(chunk);
            row += 1;
        }
    }
    debug_assert_eq!(row, c.rows);
}

/// Sequential Floyd-Warshall on a square view (base case; run redundantly
/// by every rank, no communication). The pivot row lives in the reused
/// thread-local scratch, so recursing into many base cases allocates
/// nothing.
fn fw_view(data: &mut [f64], n: usize, v: View) {
    debug_assert_eq!(v.rows, v.cols);
    let s = v.rows;
    kernels::with_scratch(s, |pivot| {
        for k in 0..s {
            let krow = (v.r0 + k) * n + v.c0;
            pivot.copy_from_slice(&data[krow..krow + s]);
            for i in 0..s {
                let dik = data[(v.r0 + i) * n + v.c0 + k];
                if dik == INF {
                    continue;
                }
                let irow = (v.r0 + i) * n + v.c0;
                let row = &mut data[irow..irow + s];
                for (rv, &kv) in row.iter_mut().zip(pivot.iter()) {
                    *rv = tropical_add(dik + kv, *rv);
                }
            }
        }
    });
}

/// Tracked [`dist_minplus`]: the row slice additionally carries via
/// entries, seeded from the current `C` cells (so degenerate terms — whose
/// operands are same-generation snapshots passing through an exact-zero
/// diagonal cell — can only tie, and strict `<` keeps the seeded via).
/// Distances and vias are re-replicated by two `all_gather`s.
fn dist_minplus_tracked(
    data: &mut [f64],
    via: &mut [u32],
    n: usize,
    a: View,
    bv: View,
    c: View,
    comm: &Comm,
) {
    debug_assert_eq!(a.cols, bv.rows);
    debug_assert_eq!(c.rows, a.rows);
    debug_assert_eq!(c.cols, bv.cols);
    let p = comm.size();
    let rank = comm.rank();
    let lo = c.rows * rank / p;
    let hi = c.rows * (rank + 1) / p;

    let mut mine = vec![0.0f64; (hi - lo) * c.cols];
    let mut mine_v = vec![0u32; (hi - lo) * c.cols];
    for i in lo..hi {
        let arow = (a.r0 + i) * n + a.c0;
        let crow0 = (c.r0 + i) * n + c.c0;
        let out = &mut mine[(i - lo) * c.cols..(i - lo + 1) * c.cols];
        let out_v = &mut mine_v[(i - lo) * c.cols..(i - lo + 1) * c.cols];
        // Seed with the current C row — distances *and* vias.
        out.copy_from_slice(&data[crow0..crow0 + c.cols]);
        out_v.copy_from_slice(&via[crow0..crow0 + c.cols]);
        for k in 0..a.cols {
            let aik = data[arow + k];
            if aik == INF {
                continue;
            }
            let kg = (bv.r0 + k) as u32;
            let brow = (bv.r0 + k) * n + bv.c0;
            for ((v, vv), &bvj) in out
                .iter_mut()
                .zip(out_v.iter_mut())
                .zip(&data[brow..brow + c.cols])
            {
                let cand = aik + bvj;
                if cand < *v {
                    *v = cand;
                    *vv = kg;
                }
            }
        }
    }

    let slices = comm.all_gather(mine, (hi - lo) * c.cols * 8);
    let mut row = 0usize;
    for slice in slices {
        for chunk in slice.chunks_exact(c.cols) {
            data[(c.r0 + row) * n + c.c0..(c.r0 + row) * n + c.c0 + c.cols].copy_from_slice(chunk);
            row += 1;
        }
    }
    debug_assert_eq!(row, c.rows);
    let slices_v = comm.all_gather(mine_v, (hi - lo) * c.cols * 4);
    let mut row = 0usize;
    for slice in slices_v {
        for chunk in slice.chunks_exact(c.cols) {
            via[(c.r0 + row) * n + c.c0..(c.r0 + row) * n + c.c0 + c.cols].copy_from_slice(chunk);
            row += 1;
        }
    }
    debug_assert_eq!(row, c.rows);
}

/// Tracked [`fw_view`]: the base-case Floyd-Warshall recording global
/// pivots as vias.
fn fw_view_tracked(data: &mut [f64], via: &mut [u32], n: usize, v: View) {
    debug_assert_eq!(v.rows, v.cols);
    let s = v.rows;
    kernels::with_scratch(s, |pivot| {
        for k in 0..s {
            let krow = (v.r0 + k) * n + v.c0;
            pivot.copy_from_slice(&data[krow..krow + s]);
            let kg = (v.r0 + k) as u32;
            for i in 0..s {
                if i == k {
                    continue;
                }
                let dik = data[(v.r0 + i) * n + v.c0 + k];
                if dik == INF {
                    continue;
                }
                let irow = (v.r0 + i) * n + v.c0;
                let row = &mut data[irow..irow + s];
                let vrow = &mut via[irow..irow + s];
                for ((rv, vv), &kv) in row.iter_mut().zip(vrow.iter_mut()).zip(pivot.iter()) {
                    let cand = dik + kv;
                    if cand < *rv {
                        *rv = cand;
                        *vv = kg;
                    }
                }
            }
        }
    });
}

/// The tracked Kleene recursion over a square view.
fn kleene_tracked(data: &mut [f64], via: &mut [u32], n: usize, v: View, base: usize, comm: &Comm) {
    let s = v.rows;
    if s <= base {
        fw_view_tracked(data, via, n, v);
        return;
    }
    let s1 = s / 2;
    let s2 = s - s1;
    let a11 = View {
        r0: v.r0,
        c0: v.c0,
        rows: s1,
        cols: s1,
    };
    let a12 = View {
        r0: v.r0,
        c0: v.c0 + s1,
        rows: s1,
        cols: s2,
    };
    let a21 = View {
        r0: v.r0 + s1,
        c0: v.c0,
        rows: s2,
        cols: s1,
    };
    let a22 = View {
        r0: v.r0 + s1,
        c0: v.c0 + s1,
        rows: s2,
        cols: s2,
    };

    kleene_tracked(data, via, n, a11, base, comm);
    dist_minplus_tracked(data, via, n, a11, a12, a12, comm);
    dist_minplus_tracked(data, via, n, a21, a11, a21, comm);
    dist_minplus_tracked(data, via, n, a21, a12, a22, comm);
    kleene_tracked(data, via, n, a22, base, comm);
    dist_minplus_tracked(data, via, n, a12, a22, a12, comm);
    dist_minplus_tracked(data, via, n, a22, a21, a21, comm);
    dist_minplus_tracked(data, via, n, a12, a21, a11, comm);
}

/// The Kleene recursion over a square view.
fn kleene(data: &mut [f64], n: usize, v: View, base: usize, comm: &Comm) {
    let s = v.rows;
    if s <= base {
        fw_view(data, n, v);
        return;
    }
    let s1 = s / 2;
    let s2 = s - s1;
    let a11 = View {
        r0: v.r0,
        c0: v.c0,
        rows: s1,
        cols: s1,
    };
    let a12 = View {
        r0: v.r0,
        c0: v.c0 + s1,
        rows: s1,
        cols: s2,
    };
    let a21 = View {
        r0: v.r0 + s1,
        c0: v.c0,
        rows: s2,
        cols: s1,
    };
    let a22 = View {
        r0: v.r0 + s1,
        c0: v.c0 + s1,
        rows: s2,
        cols: s2,
    };

    kleene(data, n, a11, base, comm);
    dist_minplus(data, n, a11, a12, a12, comm); // A12 ← min(A12, A11 ⊗ A12)
    dist_minplus(data, n, a21, a11, a21, comm); // A21 ← min(A21, A21 ⊗ A11)
    dist_minplus(data, n, a21, a12, a22, comm); // A22 ← min(A22, A21 ⊗ A12)
    kleene(data, n, a22, base, comm);
    dist_minplus(data, n, a12, a22, a12, comm); // A12 ← min(A12, A12 ⊗ A22)
    dist_minplus(data, n, a22, a21, a21, comm); // A21 ← min(A21, A22 ⊗ A21)
    dist_minplus(data, n, a12, a21, a11, comm); // A11 ← min(A11, A12 ⊗ A21)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};

    #[test]
    fn matches_oracle_single_rank() {
        let g = generators::erdos_renyi_paper(50, 0.1, 3);
        let dc = MpiDcApsp {
            ranks: 1,
            base_size: 8,
            cost: CommCost::zero(),
        };
        let res = dc.solve_matrix(&g.to_dense()).unwrap();
        assert!(res.distances.approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn matches_oracle_multi_rank_deep_recursion() {
        let g = generators::erdos_renyi_paper(70, 0.1, 13);
        let dc = MpiDcApsp {
            ranks: 4,
            base_size: 8,
            cost: CommCost::gbe(),
        };
        let res = dc.solve_matrix(&g.to_dense()).unwrap();
        assert!(res.distances.approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        assert!(res.simulated_comm_s > 0.0);
    }

    #[test]
    fn odd_sizes_and_uneven_split() {
        let g = generators::erdos_renyi_paper(37, 0.1, 29);
        let dc = MpiDcApsp {
            ranks: 3,
            base_size: 4,
            cost: CommCost::zero(),
        };
        let res = dc.solve_matrix(&g.to_dense()).unwrap();
        assert!(res.distances.approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn base_case_bigger_than_n() {
        let g = generators::cycle(10);
        let res = MpiDcApsp::new(2).solve_matrix(&g.to_dense()).unwrap();
        assert!(res.distances.approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn tracked_solve_round_trips_against_oracle() {
        for (n, ranks, base, seed) in [
            (50usize, 1usize, 8usize, 3u64),
            (37, 3, 4, 29),
            (70, 4, 8, 13),
        ] {
            let g = generators::erdos_renyi_paper(n, 0.1, seed);
            let adj = g.to_dense();
            let dc = MpiDcApsp {
                ranks,
                base_size: base,
                cost: CommCost::zero(),
            };
            let (run, parents) = dc.solve_matrix_paths(&adj).unwrap();
            let plain = dc.solve_matrix(&adj).unwrap();
            assert!(
                run.distances.approx_eq(&plain.distances, 0.0).is_ok(),
                "tracking changed distances (n={n}, ranks={ranks})"
            );
            let dap = apsp_graph::paths::DistancesAndParents::new(run.distances, parents);
            dap.validate_against(&adj, 1e-9)
                .unwrap_or_else(|e| panic!("n={n} ranks={ranks}: {e}"));
        }
    }

    #[test]
    fn path_graph_needs_cross_quadrant_paths() {
        // Paths crossing the recursion split stress steps 4–8.
        let g = generators::path(33);
        let dc = MpiDcApsp {
            ranks: 2,
            base_size: 4,
            cost: CommCost::zero(),
        };
        let res = dc.solve_matrix(&g.to_dense()).unwrap();
        for i in 0..33 {
            assert_eq!(res.distances.get(0, i), i as f64);
        }
    }
}
