//! Algorithm 4: Blocked Collect/Broadcast — the paper's best solver.

use crate::blocks::BlockedMatrix;
use crate::engine::{self, AlgRun};
use crate::solver::{validate_adjacency, ApspError, ApspResult, ApspSolver, SolverConfig};
use apsp_blockmat::{Matrix, TrackedTropical, Tropical};
use sparklet::{SparkContext, SparkError};
use std::time::Instant;

/// The paper's Algorithm 4: the blocked (Venkataraman) Floyd-Warshall
/// where Phase-1/2 results travel through the **driver and shared
/// persistent storage** instead of copy shuffles:
///
/// 1. the solved diagonal block is `collect`ed and staged (line 3),
/// 2. the updated pivot row/column is `collect`ed and staged per block
///    (lines 5–7),
/// 3. every remaining block applies `MinPlus` reading its two column
///    blocks from storage (line 9),
/// 4. `union` + `partitionBy` reassembles `A` (lines 11–12).
///
/// Impure: staged blocks live outside the lineage, so recomputed tasks
/// may find them gone (exercised by the fault-injection tests).
///
/// The algorithm itself lives in the crate-private `engine` module generically; this
/// front-end instantiates it with the [`Tropical`] algebra (plain APSP)
/// or [`TrackedTropical`] (`with_paths`), and [`crate::algebra`] exposes
/// the same loop for bottleneck and reachability workloads.
#[derive(Debug, Default, Clone)]
pub struct BlockedCollectBroadcast;

impl ApspSolver for BlockedCollectBroadcast {
    fn name(&self) -> &'static str {
        "Blocked-CB"
    }

    fn is_pure(&self) -> bool {
        false
    }

    fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return engine::solve_tracked(ctx, adjacency, cfg, engine::solve_cb::<TrackedTropical>);
        }
        let dd = self.solve_distributed(ctx, adjacency, cfg)?;
        let result = dd.blocked.collect_to_matrix()?;
        Ok(ApspResult::new(
            result,
            dd.metrics,
            dd.elapsed,
            dd.iterations,
        ))
    }
}

/// A solved distance matrix left *distributed*: the paper's driver needs
/// 180 GB just to coordinate at `n = 262144`; collecting the `n² × 8`-byte
/// result (550 GB) is not an option at scale. This handle keeps the
/// closed blocks in the engine and serves point/row queries by fetching
/// single blocks.
pub struct DistributedDistances {
    /// The closed blocked matrix (upper triangle).
    pub blocked: crate::blocks::BlockedMatrix,
    /// Engine-counter increments attributable to the solve.
    pub metrics: sparklet::MetricsSnapshot,
    /// Wall-clock duration of the solve.
    pub elapsed: std::time::Duration,
    /// Blocked iterations executed (`q`).
    pub iterations: u64,
}

impl DistributedDistances {
    /// Shortest distance between two vertices: fetches exactly one block.
    pub fn distance(&self, i: usize, j: usize) -> Result<f64, ApspError> {
        let n = self.blocked.n;
        assert!(i < n && j < n, "vertex out of range");
        let b = self.blocked.b;
        let key = crate::blocks::canonical(i / b, j / b);
        let records = self.blocked.rdd.filter(move |(k, _)| *k == key).collect()?;
        let (_, blk) = records
            .into_iter()
            .next()
            .ok_or_else(|| ApspError::Engine(SparkError::User(format!("missing block {key:?}"))))?;
        let (bi, bj) = (i / b, j / b);
        Ok(if (bi, bj) == key {
            blk.get(i % b, j % b)
        } else {
            blk.get(j % b, i % b) // transpose lookup
        })
    }

    /// All distances from one source vertex: fetches the source's block
    /// cross (`q` blocks), not the whole matrix.
    pub fn row(&self, i: usize) -> Result<Vec<f64>, ApspError> {
        let n = self.blocked.n;
        assert!(i < n, "vertex out of range");
        let b = self.blocked.b;
        let block_row = i / b;
        let local = i % b;
        let records = self
            .blocked
            .rdd
            .filter(move |(key, _)| crate::building_blocks::in_column(key, block_row))
            .collect()?;
        let mut out = vec![apsp_blockmat::INF; n];
        for ((x, y), blk) in records {
            if x == block_row {
                // Row `local` of A_(block_row)Y covers columns of block y.
                for (c, &v) in blk.extract_row(local).iter().enumerate() {
                    let gj = y * b + c;
                    if gj < n {
                        out[gj] = v;
                    }
                }
            }
            if y == block_row && x != block_row {
                // Column `local` of A_X(block_row), transposed.
                for (c, &v) in blk.extract_col(local).iter().enumerate() {
                    let gj = x * b + c;
                    if gj < n {
                        out[gj] = v;
                    }
                }
            }
        }
        Ok(out)
    }
}

impl BlockedCollectBroadcast {
    /// Like [`ApspSolver::solve`] but leaves the result distributed.
    ///
    /// Rejects [`SolverConfig::with_paths`]: the distributed handle has no
    /// parent-matrix surface — use [`ApspSolver::solve`], whose collected
    /// result carries one.
    pub fn solve_distributed(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<DistributedDistances, ApspError> {
        if cfg.track_paths {
            return Err(ApspError::InvalidConfig(
                "path tracking (with_paths) is not supported by solve_distributed; \
                 use solve(), whose collected result carries the parent matrix"
                    .into(),
            ));
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            validate_adjacency(adjacency)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let run: AlgRun<Tropical> = engine::solve_cb(ctx, n, &|i, j| adjacency.get(i, j), cfg)?;

        let metrics = ctx.metrics().delta(&metrics_before);
        let rdd = run.rdd.map(|(key, ab)| (key, ab.into_parts().0));
        Ok(DistributedDistances {
            blocked: BlockedMatrix {
                n: run.n,
                b: run.b,
                q: run.q,
                rdd,
            },
            metrics,
            elapsed: start.elapsed(),
            iterations: run.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::PartitionerChoice;
    use apsp_blockmat::INF;
    use apsp_graph::{floyd_warshall as fw_oracle, generators};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let g = generators::erdos_renyi_paper(96, 0.1, 77);
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(24))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        assert_eq!(res.iterations, 4);
    }

    #[test]
    fn matches_oracle_with_portable_hash() {
        let g = generators::erdos_renyi_paper(50, 0.1, 8);
        let cfg = SolverConfig::new(10).with_partitioner(PartitionerChoice::PortableHash);
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &g.to_dense(), &cfg)
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn single_block_degenerates_to_sequential_fw() {
        let g = generators::grid(3, 4);
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(64))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn uneven_tail_block() {
        let g = generators::erdos_renyi_paper(45, 0.1, 15);
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(16))
            .unwrap();
        assert!(res.distances().approx_eq(&fw_oracle(&g), 1e-9).is_ok());
    }

    #[test]
    fn uses_side_channel_not_shuffles_for_broadcast() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(64, 0.1, 4);
        let res = BlockedCollectBroadcast
            .solve(&sc, &g.to_dense(), &SolverConfig::new(16))
            .unwrap();
        assert!(res.metrics.side_channel_writes > 0, "CB must stage blocks");
        assert!(res.metrics.side_channel_reads > 0);
        // The only shuffles are the per-iteration partitionBy, far less
        // volume than IM's copy shuffles (asserted cross-solver in the
        // integration tests).
        assert!(res.metrics.shuffles as usize <= 4 /* q */);
    }

    #[test]
    fn side_channel_cleaned_up() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(40, 0.1, 2);
        let _ = BlockedCollectBroadcast
            .solve(&sc, &g.to_dense(), &SolverConfig::new(10))
            .unwrap();
        assert!(
            sc.side_channel().is_empty(),
            "staged blocks must be removed"
        );
    }

    #[test]
    fn disconnected_graph() {
        let mut g = apsp_graph::Graph::new(12);
        g.add_edge(0, 1, 3.0);
        g.add_edge(5, 7, 1.0);
        let res = BlockedCollectBroadcast
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4))
            .unwrap();
        assert_eq!(res.distances().get(0, 5), INF);
        assert_eq!(res.distances().get(5, 7), 1.0);
    }

    #[test]
    fn distributed_queries_match_collected_matrix() {
        let sc = ctx();
        let g = generators::erdos_renyi_paper(60, 0.1, 33);
        let adj = g.to_dense();
        let dd = BlockedCollectBroadcast
            .solve_distributed(&sc, &adj, &SolverConfig::new(16))
            .unwrap();
        let full = fw_oracle(&g);
        // Point queries across all block orientations.
        // Distributed and sequential solvers may differ in the last ulp
        // (different relaxation orders), so compare with tolerance.
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite());
        for (i, j) in [(0, 0), (3, 55), (55, 3), (17, 17), (59, 0), (20, 21)] {
            let v = dd.distance(i, j).unwrap();
            assert!(close(v, full.get(i, j)), "distance({i},{j}): {v}");
        }
        // Row queries.
        for i in [0usize, 16, 59] {
            let row = dd.row(i).unwrap();
            for (j, &v) in row.iter().enumerate() {
                assert!(close(v, full.get(i, j)), "row({i})[{j}]: {v}");
            }
        }
        // A point query collects one block record, not the whole matrix.
        let before = sc.metrics();
        let _ = dd.distance(1, 2).unwrap();
        let delta = sc.metrics().delta(&before);
        assert!(delta.collected_records <= 1);
    }

    #[test]
    fn solve_distributed_rejects_with_paths() {
        let g = generators::cycle(8);
        let err = BlockedCollectBroadcast
            .solve_distributed(&ctx(), &g.to_dense(), &SolverConfig::new(4).with_paths())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ApspError::InvalidConfig(_)));
    }

    #[test]
    fn rejects_invalid_input() {
        let mut m = Matrix::identity(4);
        m.set(1, 2, -1.0);
        m.set(2, 1, -1.0);
        let err = BlockedCollectBroadcast
            .solve(&ctx(), &m, &SolverConfig::new(2))
            .unwrap_err();
        assert!(matches!(err, ApspError::InvalidInput(_)));
    }
}
