//! Directed APSP — the paper's §4 extension ("by disregarding
//! symmetricity of A, our algorithms can be directly adopted for cases
//! where G is a directed graph").
//!
//! Dropping symmetry means the full `q × q` block grid is stored (no
//! upper-triangular halving, no transpose-on-demand) and the pivot *row*
//! and pivot *column* of each blocked iteration become distinct data: the
//! Collect/Broadcast dissemination stages both.

use crate::blocks::{BlockKey, BlockRecord};
use crate::building_blocks::floyd_warshall;
use crate::solver::{ApspError, ApspResult, SolverConfig};
use apsp_blockmat::{AlgBlock, Matrix, PathAlgebra, TrackedTropical, Tropical, TropicalF64, INF};
use sparklet::{Partitioner, Rdd, SparkContext, SparkError};
use std::sync::Arc;
use std::time::Instant;

/// The distributed *full* (non-symmetric) blocked matrix.
pub struct FullBlockedMatrix {
    /// Vertex count (pre-padding).
    pub n: usize,
    /// Block side.
    pub b: usize,
    /// Grid order.
    pub q: usize,
    /// All `q²` block records.
    pub rdd: Rdd<BlockRecord>,
}

impl FullBlockedMatrix {
    /// Decomposes a dense (possibly asymmetric) matrix into all `q²`
    /// blocks.
    pub fn from_matrix(
        ctx: &SparkContext,
        m: &Matrix,
        b: usize,
        partitioner: Arc<dyn Partitioner<BlockKey>>,
    ) -> Self {
        let n = m.order();
        let q = n.div_ceil(b);
        let blocks = m.to_blocks(b);
        let mut records = Vec::with_capacity(q * q);
        for bi in 0..q {
            for bj in 0..q {
                records.push(((bi, bj), blocks[bi * q + bj].clone()));
            }
        }
        let rdd = ctx.parallelize_by(records, partitioner);
        FullBlockedMatrix { n, b, q, rdd }
    }

    /// Rebuilds the dense matrix (trims padding).
    pub fn collect_to_matrix(&self) -> sparklet::SparkResult<Matrix> {
        let records = self.rdd.collect()?;
        Ok(Matrix::from_blocks(self.n, self.b, records))
    }
}

/// Directed Blocked Collect/Broadcast: Algorithm 4 without the symmetry
/// shortcut. Phase 2 updates both the pivot row-block and column-block;
/// Phase 3 reads the staged *column* piece `C_X = A_Xi` and *row* piece
/// `R_Y = A_iY` (distinct objects for directed inputs).
///
/// # Why `with_paths` is still rejected here
///
/// The tracked kernel tier records, per cell, the winning intermediate
/// vertex of a fold `A_XY ⊕ (A_Xi ⊗ A_iY)` under a **seeding contract**:
/// degenerate terms (global `k` equal to the target's row or column) are
/// skipped because the fold target already holds the estimate they would
/// restate. In this solver the Phase-2 cross blocks are staged *after*
/// their own update but *consumed by each other's orientation*: the
/// staged `C_X` and `R_Y` pieces are distinct objects whose element
/// values may already include relaxations through pivot block `i` that
/// the *stored* target has not seen, and — unlike the undirected solver —
/// there is no transpose-mirror argument tying the two orientations'
/// argmins together. Giving each orientation its own parent plane (so
/// `via(i,j)` and `via(j,i)` evolve independently) is the planned fix
/// (see ROADMAP); until those per-orientation parent blocks exist,
/// accepting `with_paths` here could emit vias whose expansion does not
/// terminate, so the config is rejected loudly instead. Use
/// [`DirectedFloydWarshall2D`], whose single-pivot rank-1 updates need no
/// seeding argument, for directed path tracking.
#[derive(Debug, Default, Clone)]
pub struct DirectedBlockedCB;

fn diag_key(i: usize) -> String {
    format!("dcb:{i}:diag")
}

fn row_key(i: usize, j: usize) -> String {
    format!("dcb:{i}:row:{j}")
}

fn col_key(i: usize, t: usize) -> String {
    format!("dcb:{i}:col:{t}")
}

impl DirectedBlockedCB {
    /// Solver label.
    pub fn name(&self) -> &'static str {
        "Directed Blocked-CB"
    }

    /// Solves directed APSP for a dense adjacency matrix (zero diagonal,
    /// non-negative weights; symmetry not required).
    pub fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        if cfg.track_paths {
            return Err(ApspError::InvalidConfig(
                "path tracking (with_paths) is not supported by DirectedBlockedCB: its staged \
                 cross pieces would need per-orientation parent blocks (see the type-level docs); \
                 use DirectedFloydWarshall2D::solve with with_paths, or \
                 apsp_graph::paths::floyd_warshall_vias for a sequential oracle"
                    .into(),
            ));
        }
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            apsp_graph::validate_directed_adjacency(adjacency).map_err(ApspError::InvalidInput)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();

        let b = cfg.block_size;
        let q = n.div_ceil(b);
        let partitioner = cfg.partitioner.build(q, cfg.partitions_for(ctx));
        let full = FullBlockedMatrix::from_matrix(ctx, adjacency, b, partitioner.clone());
        let mut a = full.rdd.clone().persist();
        let kern = cfg.kernel;

        for i in 0..q {
            // Phase 1: close and stage the diagonal block.
            let diag_rdd = a
                .filter(move |(key, _)| *key == (i, i))
                .map(|(key, blk)| (key, floyd_warshall(blk)))
                .persist();
            let diag = diag_rdd
                .collect()?
                .into_iter()
                .next()
                .ok_or_else(|| {
                    ApspError::Engine(SparkError::User(format!("missing diagonal block {i}")))
                })?
                .1;
            ctx.side_channel().put_block(diag_key(i), diag)?;

            // Phase 2: pivot column blocks A_Xi ← min(A_Xi, A_Xi ⊗ D*) and
            // pivot row blocks A_iY ← min(A_iY, D* ⊗ A_iY).
            let side = ctx.clone();
            let cross = a
                .filter(move |((x, y), _)| (*y == i) ^ (*x == i)) // cross minus diagonal
                .try_map(move |((x, y), mut blk)| {
                    let d = side.side_channel().get_block_arc(&diag_key(i))?;
                    if y == i {
                        blk.min_plus_assign_with(kern, &d);
                    } else {
                        blk.min_plus_left_assign_with(kern, &d);
                    }
                    Ok(((x, y), blk))
                })
                .persist();
            for ((x, y), blk) in cross.collect()? {
                if y == i {
                    ctx.side_channel().put_block(col_key(i, x), blk)?;
                } else {
                    ctx.side_channel().put_block(row_key(i, y), blk)?;
                }
            }

            // Phase 3: A_XY ← min(A_XY, C_X ⊗ R_Y) for X ≠ i, Y ≠ i.
            let side = ctx.clone();
            let off = a.filter(move |((x, y), _)| *x != i && *y != i).try_map(
                move |((x, y), mut blk)| {
                    let c_x = side.side_channel().get_block_arc(&col_key(i, x))?;
                    let r_y = side.side_channel().get_block_arc(&row_key(i, y))?;
                    blk.min_plus_into_self_with(kern, &c_x, &r_y);
                    Ok(((x, y), blk))
                },
            );

            let next = diag_rdd
                .union_all(&[cross.clone(), off])
                .partition_by(partitioner.clone())
                .persist();
            next.count()?;
            ctx.side_channel().remove(&diag_key(i));
            for t in 0..q {
                ctx.side_channel().remove(&col_key(i, t));
                ctx.side_channel().remove(&row_key(i, t));
            }
            diag_rdd.unpersist();
            cross.unpersist();
            a.unpersist();
            a = next;
        }

        let result = FullBlockedMatrix { n, b, q, rdd: a }.collect_to_matrix()?;
        // Padding sanity: padded rows must stay isolated.
        debug_assert!(result.data().iter().all(|v| *v >= 0.0 || *v == INF));
        let metrics = ctx.metrics().delta(&metrics_before);
        Ok(ApspResult::new(result, metrics, start.elapsed(), q as u64))
    }
}

/// Directed 2D Floyd-Warshall: Algorithm 2 without the symmetry shortcut.
/// Each iteration extracts *both* the pivot column (`d(x, k)`) and the
/// pivot row (`d(k, y)`) — distinct vectors for directed inputs — and
/// broadcasts them for the rank-1 update.
#[derive(Debug, Default, Clone)]
pub struct DirectedFloydWarshall2D;

impl DirectedFloydWarshall2D {
    /// Solver label.
    pub fn name(&self) -> &'static str {
        "Directed 2D Floyd-Warshall"
    }

    /// Solves directed APSP for a dense adjacency matrix.
    ///
    /// Honors [`SolverConfig::with_paths`]: each block carries a
    /// per-orientation parent plane (the full grid stores both `(X, Y)`
    /// and `(Y, X)`, so no transpose-mirror argument is needed) and every
    /// rank-1 update records the broadcast pivot as the via — a valid
    /// interior vertex of the *directed* `i → j` path by construction.
    /// Both modes run the same generic full-grid loop, instantiated with
    /// [`Tropical`] or [`TrackedTropical`].
    pub fn solve(
        &self,
        ctx: &SparkContext,
        adjacency: &Matrix,
        cfg: &SolverConfig,
    ) -> Result<ApspResult, ApspError> {
        let n = adjacency.order();
        cfg.check(n)?;
        if cfg.validate_input {
            apsp_graph::validate_directed_adjacency(adjacency).map_err(ApspError::InvalidInput)?;
        }
        let start = Instant::now();
        let metrics_before = ctx.metrics();
        if cfg.track_paths {
            let (vals, vias) = fw2d_full_grid::<TrackedTropical>(ctx, adjacency, cfg)?;
            let metrics = ctx.metrics().delta(&metrics_before);
            Ok(ApspResult::new(
                Matrix::from_vec(n, vals),
                metrics,
                start.elapsed(),
                n as u64,
            )
            .with_parents(apsp_graph::paths::ParentMatrix::from_vias(n, vias)))
        } else {
            let (vals, _) = fw2d_full_grid::<Tropical>(ctx, adjacency, cfg)?;
            let metrics = ctx.metrics().delta(&metrics_before);
            Ok(ApspResult::new(
                Matrix::from_vec(n, vals),
                metrics,
                start.elapsed(),
                n as u64,
            ))
        }
    }
}

/// The directed 2D Floyd-Warshall loop over the full `q × q` grid,
/// generic over the path algebra (the tropical `f64` element type is
/// fixed — directed inputs are adjacency matrices). Returns the dense
/// `n × n` values and payloads, collected without transpose-mirroring:
/// each orientation owns its elements *and* payloads.
fn fw2d_full_grid<A: PathAlgebra<Semi = TropicalF64>>(
    ctx: &SparkContext,
    adjacency: &Matrix,
    cfg: &SolverConfig,
) -> Result<(Vec<f64>, Vec<A::Payload>), ApspError> {
    let n = adjacency.order();
    let b = cfg.block_size;
    let q = n.div_ceil(b);
    let partitioner = cfg.partitioner.build(q, cfg.partitions_for(ctx));
    let blocks = adjacency.to_blocks(b);
    let mut records = Vec::with_capacity(q * q);
    for bi in 0..q {
        for bj in 0..q {
            records.push((
                (bi, bj),
                AlgBlock::<A>::from_dist(blocks[bi * q + bj].clone()),
            ));
        }
    }
    let mut a: Rdd<(BlockKey, AlgBlock<A>)> = ctx.parallelize_by(records, partitioner).persist();
    let mut prev: Option<Rdd<(BlockKey, AlgBlock<A>)>> = None;

    for k in 0..n {
        let pivot = k / b;
        let k_local = k % b;

        // Pivot column: d(x, k) from column-block records (Y == pivot).
        let col_segments = a
            .filter(move |((_, y), _)| *y == pivot)
            .map(move |((x, _), ab)| (x, ab.dist().extract_col(k_local)))
            .collect()?;
        // Pivot row: d(k, y) from row-block records (X == pivot).
        let row_segments = a
            .filter(move |((x, _), _)| *x == pivot)
            .map(move |((_, y), ab)| (y, ab.dist().extract_row(k_local)))
            .collect()?;

        let mut col = vec![INF; q * b];
        for (block_row, values) in col_segments {
            col[block_row * b..block_row * b + b].copy_from_slice(&values);
        }
        let mut row = vec![INF; q * b];
        for (block_col, values) in row_segments {
            row[block_col * b..block_col * b + b].copy_from_slice(&values);
        }
        let col_b = ctx.broadcast(col);
        let row_b = ctx.broadcast(row);

        let next = a
            .map(move |((x, y), mut ab)| {
                let col_i = &col_b.value()[x * b..x * b + b]; // d(·, k)
                let row_j = &row_b.value()[y * b..y * b + b]; // d(k, ·)
                ab.fw_update_outer(col_i, row_j, k);
                ((x, y), ab)
            })
            .persist();
        if let Some(old) = prev.take() {
            old.unpersist();
        }
        prev = Some(a);
        a = next;
    }

    // Collect the full grid, trimming padding.
    let mut vals = vec![INF; n * n];
    let mut pays = vec![A::empty_payload(); n * n];
    for ((bi, bj), ab) in a.collect()? {
        for i in 0..b {
            let gi = bi * b + i;
            if gi >= n {
                continue;
            }
            for j in 0..b {
                let gj = bj * b + j;
                if gj < n {
                    vals[gi * n + gj] = ab.dist().get(i, j);
                    pays[gi * n + gj] = ab.via().get(i, j);
                }
            }
        }
    }
    Ok((vals, pays))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ApspSolver;
    use apsp_graph::{apsp_dijkstra_directed, generators, DiGraph};
    use sparklet::SparkConfig;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::with_cores(4))
    }

    #[test]
    fn one_way_cycle_distances() {
        let mut g = DiGraph::new(12);
        for i in 0..12u32 {
            g.add_arc(i, (i + 1) % 12, 1.0);
        }
        let res = DirectedBlockedCB
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4))
            .unwrap();
        assert_eq!(res.distances().get(0, 1), 1.0);
        assert_eq!(res.distances().get(1, 0), 11.0);
    }

    #[test]
    fn matches_directed_dijkstra_on_random_digraphs() {
        for seed in [1u64, 2, 3] {
            let g = generators::erdos_renyi_directed(48, 0.12, seed);
            let res = DirectedBlockedCB
                .solve(&ctx(), &g.to_dense(), &SolverConfig::new(12))
                .unwrap();
            let oracle = apsp_dijkstra_directed(&g);
            assert!(
                res.distances().approx_eq(&oracle, 1e-9).is_ok(),
                "seed {seed} diverged"
            );
        }
    }

    #[test]
    fn symmetric_input_matches_undirected_solver() {
        let g = generators::erdos_renyi_paper(60, 0.1, 9);
        let adj = g.to_dense();
        let directed = DirectedBlockedCB
            .solve(&ctx(), &adj, &SolverConfig::new(16))
            .unwrap();
        let undirected = crate::BlockedCollectBroadcast
            .solve(&ctx(), &adj, &SolverConfig::new(16))
            .map_err(|e| panic!("{e}"))
            .unwrap();
        assert!(directed
            .distances()
            .approx_eq(undirected.distances(), 1e-9)
            .is_ok());
    }

    #[test]
    fn uneven_blocks_directed() {
        let g = generators::erdos_renyi_directed(29, 0.15, 4);
        let res = DirectedBlockedCB
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(8))
            .unwrap();
        let oracle = apsp_dijkstra_directed(&g);
        assert!(res.distances().approx_eq(&oracle, 1e-9).is_ok());
    }

    #[test]
    fn accepts_asymmetric_rejects_negative() {
        let mut m = Matrix::identity(4);
        m.set(0, 1, 1.0); // no reverse arc: asymmetric is fine
        assert!(DirectedBlockedCB
            .solve(&ctx(), &m, &SolverConfig::new(2))
            .is_ok());
        m.set(2, 3, -2.0);
        assert!(matches!(
            DirectedBlockedCB.solve(&ctx(), &m, &SolverConfig::new(2)),
            Err(ApspError::InvalidInput(_))
        ));
    }

    #[test]
    fn directed_fw2d_matches_directed_dijkstra() {
        for seed in [4u64, 8] {
            let g = generators::erdos_renyi_directed(40, 0.12, seed);
            let res = DirectedFloydWarshall2D
                .solve(&ctx(), &g.to_dense(), &SolverConfig::new(12))
                .unwrap();
            let oracle = apsp_dijkstra_directed(&g);
            assert!(
                res.distances().approx_eq(&oracle, 1e-9).is_ok(),
                "seed {seed} diverged"
            );
            assert_eq!(res.iterations, 40);
        }
    }

    #[test]
    fn directed_fw2d_agrees_with_directed_cb() {
        let g = generators::erdos_renyi_directed(33, 0.2, 6);
        let adj = g.to_dense();
        let fw = DirectedFloydWarshall2D
            .solve(&ctx(), &adj, &SolverConfig::new(10))
            .unwrap();
        let cb = DirectedBlockedCB
            .solve(&ctx(), &adj, &SolverConfig::new(10))
            .unwrap();
        assert!(fw.distances().approx_eq(cb.distances(), 1e-9).is_ok());
    }

    #[test]
    fn directed_fw2d_tracked_round_trips() {
        for seed in [11u64, 23] {
            let g = generators::erdos_renyi_directed(34, 0.15, seed);
            let adj = g.to_dense();
            let res = DirectedFloydWarshall2D
                .solve(&ctx(), &adj, &SolverConfig::new(8).with_paths())
                .unwrap();
            assert!(res.parents().is_some());
            let oracle = apsp_dijkstra_directed(&g);
            assert!(
                res.distances().approx_eq(&oracle, 1e-9).is_ok(),
                "seed {seed}: tracked distances diverge"
            );
            let dap = res.into_paths().unwrap();
            dap.validate_against(&adj, 1e-9)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn directed_fw2d_tracked_matches_untracked_distances() {
        let g = generators::erdos_renyi_directed(29, 0.2, 2);
        let adj = g.to_dense();
        let plain = DirectedFloydWarshall2D
            .solve(&ctx(), &adj, &SolverConfig::new(7))
            .unwrap();
        let tracked = DirectedFloydWarshall2D
            .solve(&ctx(), &adj, &SolverConfig::new(7).with_paths())
            .unwrap();
        assert!(tracked
            .distances()
            .approx_eq(plain.distances(), 0.0)
            .is_ok());
    }

    #[test]
    fn directed_fw2d_tracked_one_way_cycle_paths_walk_the_ring() {
        let mut g = DiGraph::new(9);
        for i in 0..9u32 {
            g.add_arc(i, (i + 1) % 9, 1.0);
        }
        let res = DirectedFloydWarshall2D
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4).with_paths())
            .unwrap();
        let dap = res.into_paths().unwrap();
        // 2 → 1 must walk forward around the ring (8 hops), never backward.
        let p = dap.reconstruct(2, 1).unwrap();
        assert_eq!(p.len(), 9);
        for w in p.windows(2) {
            assert_eq!((w[0] + 1) % 9, w[1], "path must follow arcs: {p:?}");
        }
    }

    #[test]
    fn directed_cb_still_rejects_with_paths() {
        let g = generators::erdos_renyi_directed(12, 0.2, 3);
        let err = DirectedBlockedCB
            .solve(&ctx(), &g.to_dense(), &SolverConfig::new(4).with_paths())
            .unwrap_err();
        assert!(matches!(err, ApspError::InvalidConfig(_)));
    }

    #[test]
    fn stores_full_grid() {
        let sc = ctx();
        let g = generators::erdos_renyi_directed(16, 0.2, 5);
        let full = FullBlockedMatrix::from_matrix(
            &sc,
            &g.to_dense(),
            4,
            crate::PartitionerChoice::MultiDiagonal.build(4, 8),
        );
        assert_eq!(full.rdd.count().unwrap(), 16); // q² = 16, not q(q+1)/2
        assert_eq!(full.collect_to_matrix().unwrap(), g.to_dense());
    }
}
